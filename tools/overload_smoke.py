#!/usr/bin/env python
"""Overload-protection smoke gate (the ``make overload-smoke`` target).

Executable claims from ``docs/overload.md``, against live sockets:

1. **Thundering herd stays bounded**: a 16-instance ``all_at_once``
   cold-client herd boots through one deliberately undersized cache
   server (``max_queue_depth`` far below the herd width).  Every
   instance must still byte-match the fault-free architected baseline,
   retry amplification across the fleet must stay at or below the 2x
   retry-budget target, and no client may count a single response
   accepted past its deadline.
2. **Shedding really sheds**: a barrier-released burst of concurrent
   pulls against a ``max_queue_depth=1`` server must observe at least
   one retryable ``overloaded`` answer server-side — and the shed
   clients, honoring the ``retry_after`` hint, must all still complete
   their request (success or clean degradation, never a hang).
3. **Hedged reads fire and win**: a seeded ``hedge-trigger`` drill
   through a live 1 shard x 2 replica cluster must abandon the primary
   probe, win on the sibling replica, and leave architected state
   byte-identical to the fault-free run.
4. **SLO verdicts pass**: the herd's collector snapshot must evaluate
   the overload objectives (retry-amplification, shed-rate,
   deadline-miss-rate) without a ``fail``.

Normalized scalars (pass flags and seeded-drill counts — never raw
scheduling-dependent tallies) are appended to
``results/bench_history.jsonl`` so the trajectory gate can see an
overload regression the PR it lands in.

Run directly (``python tools/overload_smoke.py``) or via
``make overload-smoke`` / ``make verify``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import threading

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.cacheserver.server import CacheServer         # noqa: E402
from repro.cluster import (ClusterRepository,            # noqa: E402
                           LocalCluster)
from repro.core.config import vm_soft                    # noqa: E402
from repro.core.vm import CoDesignedVM                   # noqa: E402
from repro.faults.injector import FaultInjector          # noqa: E402
from repro.faults.plane import injecting                 # noqa: E402
from repro.fleet import FleetEngine, FleetScenario       # noqa: E402
from repro.isa.x86lite.assembler import assemble         # noqa: E402
from repro.obs.slo import worst_status                   # noqa: E402
from repro.obs.trajectory import (append_row, bench_diff,  # noqa: E402
                                  format_diff, history_row,
                                  load_history)
from repro.persist import capture_translations           # noqa: E402
from repro.persist.remote import (RemoteRepository,      # noqa: E402
                                  RemoteUnavailable)
from repro.workloads.programs import PROGRAMS            # noqa: E402

HOT_THRESHOLD = 20
HERD_N = 16
HERD_QUEUE_DEPTH = 4        # herd width 8 workers >> depth bound
BURST_THREADS = 32
BURST_ROUNDS = 6
DRILL_SEED = 7

#: normalized scalars for the bench trajectory (flags + seeded counts)
METRICS: dict = {}


def fail(message: str) -> int:
    print(f"OVERLOAD SMOKE FAIL: {message}")
    return 1


def herd_through_undersized_server():
    """Claims 1 + 4: the cold thundering herd through one undersized
    server — bounded amplification, no late acceptance, architected
    identity, passing SLO verdicts."""
    scenario = FleetScenario(
        n=HERD_N, boot_policy="all_at_once", image_policy="one",
        config="soft", warm=True, workload="fibonacci", seed=0,
        workers=8, hot_threshold=HOT_THRESHOLD,
        max_queue_depth=HERD_QUEUE_DEPTH, collect=True)
    result = FleetEngine().run(scenario)

    failures = 0
    if not result.arch_ok:
        problems = [p for i in result.instances for p in i.problems]
        failures += fail(f"herd diverged from the fault-free "
                         f"baseline: {problems}")
    requests = retries = late = deadline_exceeded = 0
    for instance in result.instances:
        remote = instance.remote
        requests += remote.get("requests", 0)
        retries += remote.get("retries", 0)
        late += remote.get("late_responses", 0)
        deadline_exceeded += remote.get("deadline_exceeded", 0)
    amplification = (requests + retries) / requests if requests else 1.0
    sheds = result.server.get("requests_shed", 0)
    print(f"herd: n={HERD_N} queue_depth={HERD_QUEUE_DEPTH} "
          f"requests={requests} retries={retries} "
          f"amplification={amplification:.2f} sheds={sheds} "
          f"late={late} deadline_exceeded={deadline_exceeded}")
    if amplification > 2.0:
        failures += fail(f"retry amplification {amplification:.2f} "
                         f"breaks the 2x budget bound")
    if late:
        failures += fail(f"{late} response(s) accepted past their "
                         f"deadline")

    verdicts = (result.telemetry or {}).get("canonical", {}).get(
        "slo", [])
    overload_verdicts = [v for v in verdicts if v["name"] in
                         ("retry-amplification", "shed-rate",
                          "deadline-miss-rate")]
    if len(overload_verdicts) != 3:
        failures += fail(f"expected 3 overload SLO verdicts, got "
                         f"{[v['name'] for v in overload_verdicts]}")
    elif worst_status(overload_verdicts) == "fail":
        failures += fail(f"overload SLOs failing: {overload_verdicts}")
    else:
        for verdict in overload_verdicts:
            print(f"slo {verdict['name']}: {verdict['status']} "
                  f"(value={verdict['value']})")

    # trajectory scalars are violation-style — zero is healthy, any
    # increase regresses under the default lower-is-better direction
    METRICS["overload.herd_arch_divergences"] = int(not result.arch_ok)
    METRICS["overload.amplification_excess"] = round(
        max(0.0, amplification - 2.0), 4)
    METRICS["overload.late_responses"] = late
    METRICS["overload.slo_failures"] = int(
        not overload_verdicts
        or worst_status(overload_verdicts) == "fail")
    return failures, sheds


def shed_burst(workdir: str):
    """Claim 2: a barrier-released burst against a
    ``max_queue_depth=1`` server must shed, and every shed client —
    honoring ``retry_after`` — must still complete its request.

    Half the threads push real translation records (store writes and
    fsyncs release the GIL mid-dispatch, so dispatch windows genuinely
    overlap), half pull; any overlap past the depth bound of 1 is a
    shed.  A few rounds per thread make the overlap odds overwhelming
    without depending on any single scheduling accident.
    """
    gold = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
    gold.load(assemble(PROGRAMS["fibonacci"]))
    gold.run()
    records = [r for r in capture_translations(
        gold.runtime.directory, gold.state.memory) if r is not None]

    server = CacheServer(pathlib.Path(workdir) / "burst-repo",
                         host="127.0.0.1", port=0,
                         max_queue_depth=1)
    address = server.start()
    barrier = threading.Barrier(BURST_THREADS)
    outcomes = [None] * BURST_THREADS

    def one_client(rank: int) -> None:
        client = RemoteRepository(address, local=None, timeout=2.0,
                                  retries=4, breaker_threshold=1000)
        try:
            barrier.wait()
            for round_no in range(BURST_ROUNDS):
                if rank % 2:
                    client.request("pull", {"config_fp": "cfg-burst",
                                            "image_fp": "img0"})
                else:
                    # save() absorbs sheds/degradation; distinct image
                    # fingerprints keep the push leases uncontended
                    client.save(records, "cfg-burst",
                                f"img{rank}-{round_no}")
            outcomes[rank] = "ok"
        except RemoteUnavailable:
            outcomes[rank] = "degraded"
        except Exception as error:   # noqa: BLE001 - the gate reports
            outcomes[rank] = f"{type(error).__name__}: {error}"
        finally:
            client.close()

    threads = [threading.Thread(target=one_client, args=(rank,))
               for rank in range(BURST_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    stats = server.stats.to_dict()
    server.stop()

    failures = 0
    sheds = stats.get("requests_shed", 0)
    hung = sum(thread.is_alive() for thread in threads)
    bad = [outcome for outcome in outcomes
           if outcome not in ("ok", "degraded")]
    done = outcomes.count("ok")
    print(f"burst: {BURST_THREADS} clients x {BURST_ROUNDS} rounds, "
          f"depth bound 1: sheds={sheds} completed={done} "
          f"degraded={outcomes.count('degraded')}")
    if hung:
        failures += fail(f"{hung} burst client(s) hung")
    if bad:
        failures += fail(f"burst client errors: {bad}")
    if sheds < 1:
        failures += fail("no request was shed — the queue-depth bound "
                         "never fired")
    if done < 1:
        failures += fail("no shed client completed after honoring "
                         "retry_after")
    return failures, sheds


def hedge_drill(workdir: str) -> int:
    """Claim 3: forced hedges through a live 1x2 cluster — the sibling
    replica must win the race and architected state must not move."""
    source = PROGRAMS["fibonacci"]
    gold = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
    gold.load(assemble(source))
    gold.run()

    root = pathlib.Path(workdir) / "hedge-cluster"
    failures = 0
    with LocalCluster(root, shards=1, replicas=2) as grid:
        spec = grid.spec()
        primer = ClusterRepository(spec, local=None, retries=2,
                                   breaker_cooldown=0.0,
                                   sleep=lambda _s: None)
        gold.save_translations(primer)
        primer.close()

        client = ClusterRepository(spec, local=None, retries=2,
                                   breaker_cooldown=0.0,
                                   sleep=lambda _s: None)
        vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        vm.load(assemble(source))
        injector = FaultInjector(DRILL_SEED, ["hedge-trigger"],
                                 rate=1.0)
        with injecting(injector):
            load = vm.warm_start(client)
            vm.run()
        stats = client.cluster_stats
        client.close()

    hedges, wins = stats.hedges, stats.hedge_wins
    print(f"hedge drill: seed={DRILL_SEED} loaded={load.loaded} "
          f"hedges={hedges} hedge_wins={wins}")
    if hedges < 1:
        failures += fail("forced hedge drill triggered no hedge")
    if wins < 1:
        failures += fail("no hedge won on the sibling replica")
    if not load.loaded:
        failures += fail("hedged warm start loaded nothing")
    if vm.state.exit_code != gold.state.exit_code or \
            list(vm.state.output) != list(gold.state.output) or \
            list(vm.state.regs) != list(gold.state.regs):
        failures += fail("hedged boot diverged from the fault-free "
                         "architected state")
    # "hit" marks these higher-is-better for the trajectory gate
    METRICS["overload.drill_hedge_hits"] = hedges
    METRICS["overload.drill_hedge_win_hits"] = wins
    METRICS["overload.drill_arch_divergences"] = int(bool(failures))
    return failures


def check_trajectory() -> int:
    """Append the normalized overload scalars to the bench history and
    gate on drift against the previous same-fingerprint row."""
    append_row(history_row("overload_smoke", METRICS, {
        "herd_n": HERD_N,
        "herd_queue_depth": HERD_QUEUE_DEPTH,
        "burst_threads": BURST_THREADS,
        "drill_seed": DRILL_SEED,
    }))
    regressions, comparisons = bench_diff(load_history())
    print("\nbench trajectory (results/bench_history.jsonl):")
    print(format_diff(regressions, comparisons))
    return 1 if regressions else 0


def main() -> int:
    print("overload-smoke: shedding, deadlines, budgets, hedges")
    print("=" * 60)
    failures = 0
    herd_failures, herd_sheds = herd_through_undersized_server()
    failures += herd_failures
    with tempfile.TemporaryDirectory(
            prefix="repro-overload-") as workdir:
        burst_failures, burst_sheds = shed_burst(workdir)
        failures += burst_failures
        failures += hedge_drill(workdir)
    if herd_sheds + burst_sheds < 1:
        failures += fail("no shed observed anywhere in the gate")
    METRICS["overload.sheds_missing"] = \
        int(herd_sheds + burst_sheds < 1)
    failures += check_trajectory()
    print("=" * 60)
    if failures:
        print(f"overload-smoke: {failures} failure(s)")
        return 1
    print("overload-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
