#!/usr/bin/env python
"""Seeded chaos gate (the ``make chaos`` target).

Sweeps the full fault matrix over the seed workloads:

* every registered fault class alone at a forced rate, in every mode
  it has surface in (warm boot from a mangled repository, cold run
  with runtime faults armed, or — for the network classes — a warm
  boot through a live cache server and the fault-tolerant client);
* all classes together at several seeds, both modes;
* all classes together through the remote client/server path (the
  client/server chaos cocktail of ``docs/cache_server.md``);
* an fsck round-trip per disk fault class: mangle, ``fsck --repair``,
  re-check clean, then warm-start from the repaired store.

The gate fails (exit 1) if any faulted run diverges from its fault-free
baseline, any exception escapes the runtime, or fsck leaves damage
behind.  Every line of output carries the seed, so a failure replays
bit-for-bit with the same command.

Run directly (``python tools/chaos.py``) or via ``make chaos`` /
``make verify``.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.core.config import vm_soft                    # noqa: E402
from repro.core.vm import CoDesignedVM                   # noqa: E402
from repro.faults import (                               # noqa: E402
    FaultInjector,
    all_fault_names,
    make_fault,
    modes_for,
    needs_remote,
    prepare_baseline,
    run_faulted,
)
from repro.isa.x86lite.assembler import assemble         # noqa: E402
from repro.persist import TranslationRepository          # noqa: E402
from repro.workloads.programs import PROGRAMS            # noqa: E402

HOT_THRESHOLD = 20
WORKLOADS = ("fibonacci", "checksum", "bubble_sort", "sieve")
COCKTAIL_SEEDS = (0, 1, 2, 3)
# the remote client/server path is slower (real sockets), so the
# remote cocktail sweeps a subset of workloads and seeds
REMOTE_WORKLOADS = ("fibonacci", "checksum")
REMOTE_SEEDS = (0, 1, 2)


def chaos_matrix(workdir: str) -> int:
    """Per-class forced-rate runs plus all-classes cocktails."""
    failures = 0
    for name in WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        runs = []
        for fault in all_fault_names():
            remote = needs_remote([fault])
            for warm in modes_for([fault]):
                runs.append(([fault], 11, warm, remote, {"rate": 1.0}))
        for seed in COCKTAIL_SEEDS:
            for warm in (True, False):
                runs.append((all_fault_names(), seed, warm, False, {}))
        for faults, seed, warm, remote, overrides in runs:
            outcome = run_faulted(baseline, faults, seed,
                                  workdir=workdir, warm=warm,
                                  remote=remote, **overrides)
            print(outcome.format())
            if not outcome.ok:
                failures += 1
    return failures


def remote_cocktail(workdir: str) -> int:
    """All fault classes at once through a live server + client.

    Disk faults mangle the served repository, network faults strike the
    client's socket path, runtime faults hit whatever translation work
    is left — and the architected outcome must still match the
    fault-free baseline exactly.
    """
    failures = 0
    for name in REMOTE_WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        for seed in REMOTE_SEEDS:
            outcome = run_faulted(baseline, all_fault_names(), seed,
                                  workdir=workdir, remote=True)
            print(outcome.format())
            if not outcome.ok:
                failures += 1
    return failures


def fsck_roundtrip(workdir: str) -> int:
    """Every disk fault class must be fully repairable by fsck."""
    failures = 0
    source = PROGRAMS["fibonacci"]
    disk_faults = [name for name in all_fault_names()
                   if make_fault(name).disk]
    for seed, fault_name in enumerate(disk_faults):
        repo_dir = pathlib.Path(workdir) / f"fsck-{fault_name}"
        vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        vm.load(assemble(source))
        vm.run()
        repo = TranslationRepository(repo_dir)
        vm.save_translations(repo)

        injector = FaultInjector(100 + seed, [fault_name], rate=1.0)
        corruptions = injector.mangle_repository(repo_dir)
        repo.fsck(repair=True)
        clean = repo.fsck(repair=False)

        warm_vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        warm_vm.load(assemble(source))
        load = warm_vm.warm_start(repo)
        warm_vm.run()

        problems = []
        if not clean.ok:
            problems.append(f"fsck left {clean.issues} issue(s) behind")
        if load.corrupt:
            problems.append(f"{load.corrupt} corrupt record(s) survived "
                            f"the repair")
        if warm_vm.state.exit_code != vm.state.exit_code or \
                list(warm_vm.state.output) != list(vm.state.output):
            problems.append("warm run after repair diverged")
        status = "ok" if not problems else "FAIL"
        print(f"{status}  fsck roundtrip [{fault_name}] "
              f"({corruptions} corruption(s), "
              f"{load.loaded}/{load.attempted} reloaded)")
        for problem in problems:
            print(f"      {problem}")
        failures += bool(problems)
    return failures


def preflight_fault_sites() -> int:
    """Fail fast when the fault-site registry has drifted.

    A fault class whose site string no production code visits makes
    every chaos run of that class silently test nothing — the sweep
    would pass while injecting zero faults.  reprolint's FLT001 rule
    checks the same invariant at lint time; this preflight stops the
    (much slower) chaos sweep before it burns minutes on a vacuous
    matrix.
    """
    from repro.lint.index import fault_site_drift
    drift = fault_site_drift()
    if not drift:
        return 0
    print("chaos gate: fault-site registry drift — the following "
          "registered sites have no fault_point(...) call site:")
    for name, missing in sorted(drift.items()):
        print(f"  {name}: {', '.join(missing)}")
    print("fix the registry or the call sites (reprolint rule FLT001; "
          "see docs/static_analysis.md), then re-run")
    return 1


def main() -> int:
    if preflight_fault_sites():
        return 1
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        print("== chaos matrix (fault class x workload x mode) ==")
        failures += chaos_matrix(workdir)
        print("\n== client/server chaos cocktail (remote mode) ==")
        failures += remote_cocktail(workdir)
        print("\n== fsck repair round-trip (disk fault classes) ==")
        failures += fsck_roundtrip(workdir)
    if failures:
        print(f"\nchaos gate: {failures} FAILURE(S)")
        return 1
    print("\nchaos gate: all faulted runs matched their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
