#!/usr/bin/env python
"""Seeded chaos gate (the ``make chaos`` target).

Sweeps the full fault matrix over the seed workloads:

* every registered fault class alone at a forced rate, in every mode
  it has surface in (warm boot from a mangled repository, cold run
  with runtime faults armed, a warm boot through a live cache server
  and the fault-tolerant client for the network classes, or a warm
  boot through a live sharded cluster for the cluster classes);
* all classes together at several seeds, both modes;
* all classes together through the remote client/server path (the
  client/server chaos cocktail of ``docs/cache_server.md``);
* all classes together through a live 3x2 cluster (the cluster
  cocktail of ``docs/cluster.md``);
* a live cluster drill: kill one replica, then a whole shard group,
  mid-fleet — every boot must still byte-match the fault-free
  baseline — then restart + anti-entropy must restore replication;
* an fsck round-trip per disk fault class: mangle, ``fsck --repair``,
  re-check clean, then warm-start from the repaired store.

The gate fails (exit 1) if any faulted run diverges from its fault-free
baseline, any exception escapes the runtime, or fsck leaves damage
behind.  Every line of output carries the seed, so a failure replays
bit-for-bit with the same command.

Run directly (``python tools/chaos.py``) or via ``make chaos`` /
``make verify``.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import pathlib
import shutil
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.core.config import vm_soft                    # noqa: E402
from repro.core.vm import CoDesignedVM                   # noqa: E402
from repro.faults import (                               # noqa: E402
    ArchOutcome,
    FaultInjector,
    all_fault_names,
    make_fault,
    modes_for,
    needs_cluster,
    needs_remote,
    prepare_baseline,
    run_faulted,
)
from repro.isa.x86lite.assembler import assemble         # noqa: E402
from repro.persist import TranslationRepository          # noqa: E402
from repro.workloads.programs import PROGRAMS            # noqa: E402

HOT_THRESHOLD = 20
WORKLOADS = ("fibonacci", "checksum", "bubble_sort", "sieve")
COCKTAIL_SEEDS = (0, 1, 2, 3)
# the remote client/server path is slower (real sockets), so the
# remote cocktail sweeps a subset of workloads and seeds
REMOTE_WORKLOADS = ("fibonacci", "checksum")
REMOTE_SEEDS = (0, 1, 2)
# the cluster path spins 6 live servers per run, so its cocktail and
# the kill/repair drill sweep an even tighter subset
CLUSTER_WORKLOADS = ("fibonacci", "checksum")
CLUSTER_SEEDS = (0, 1)


def chaos_matrix(workdir: str) -> int:
    """Per-class forced-rate runs plus all-classes cocktails."""
    failures = 0
    for name in WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        runs = []
        for fault in all_fault_names():
            remote = needs_remote([fault])
            cluster = needs_cluster([fault])
            for warm in modes_for([fault]):
                runs.append(([fault], 11, warm, remote, cluster,
                             {"rate": 1.0}))
        for seed in COCKTAIL_SEEDS:
            for warm in (True, False):
                runs.append((all_fault_names(), seed, warm, False,
                             False, {}))
        for faults, seed, warm, remote, cluster, overrides in runs:
            outcome = run_faulted(baseline, faults, seed,
                                  workdir=workdir, warm=warm,
                                  remote=remote, cluster=cluster,
                                  **overrides)
            print(outcome.format())
            if not outcome.ok:
                failures += 1
    return failures


def remote_cocktail(workdir: str) -> int:
    """All fault classes at once through a live server + client.

    Disk faults mangle the served repository, network faults strike the
    client's socket path, runtime faults hit whatever translation work
    is left — and the architected outcome must still match the
    fault-free baseline exactly.
    """
    failures = 0
    for name in REMOTE_WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        for seed in REMOTE_SEEDS:
            outcome = run_faulted(baseline, all_fault_names(), seed,
                                  workdir=workdir, remote=True)
            print(outcome.format())
            if not outcome.ok:
                failures += 1
    return failures


def cluster_cocktail(workdir: str) -> int:
    """All fault classes at once through a live 3x2 cluster.

    Shard outages, replica partitions and stale replicas strike the
    routing/failover ladder, disk faults rot the replica stores and
    the local fallback alike, runtime faults hit the leftover
    translation work — and every boot must still byte-match the
    fault-free baseline.
    """
    failures = 0
    for name in CLUSTER_WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        for seed in CLUSTER_SEEDS:
            outcome = run_faulted(baseline, all_fault_names(), seed,
                                  workdir=workdir, cluster=True)
            print(outcome.format())
            if not outcome.ok:
                failures += 1
    return failures


#: The overload-protection cocktail (docs/overload.md): injected
#: sheds, pre-expired deadlines and forced hedges stacked on a slow
#: server — the shed/deadline/hedge decision points must degrade
#: without moving architected results.
OVERLOAD_REMOTE_FAULTS = ("server-overloaded", "expired-deadline",
                          "slow-server")
OVERLOAD_CLUSTER_FAULTS = ("server-overloaded", "expired-deadline",
                           "hedge-trigger", "slow-server",
                           "shard-down")


def overload_cocktail(workdir: str) -> int:
    """The overload classes stacked on a slow server, both transports.

    Remote mode drives injected sheds (``overload.shed``) and
    pre-spent deadlines (``overload.deadline``) through the single
    client/server path; cluster mode adds forced hedges
    (``overload.hedge``) and a downed shard so the hedge race, the
    retry budget and the degradation ladder all fire together.  As
    everywhere: architected results must byte-match the fault-free
    baseline.
    """
    failures = 0
    for name in REMOTE_WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        for seed in REMOTE_SEEDS:
            outcome = run_faulted(baseline,
                                  list(OVERLOAD_REMOTE_FAULTS), seed,
                                  workdir=workdir, remote=True)
            print(outcome.format())
            failures += not outcome.ok
    for name in CLUSTER_WORKLOADS:
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        for seed in CLUSTER_SEEDS:
            outcome = run_faulted(baseline,
                                  list(OVERLOAD_CLUSTER_FAULTS), seed,
                                  workdir=workdir, cluster=True)
            print(outcome.format())
            failures += not outcome.ok
    return failures


def cluster_drill(workdir: str) -> int:
    """Kill live shard processes mid-fleet; architected results must
    not move, and restart + anti-entropy must restore replication.

    A seeded sequence of boots against one primed cluster:

    1. fault-free warm boot (the reference: everything loads);
    2. kill -9-equivalent one replica (seeded choice) — boot fails
       over to the sibling;
    3. kill the victim's *whole* shard group — boot degrades that
       group's records to cold translation (no local fallback here,
       so degradation is real, not masked);
    4. restart the dead replicas, run :func:`anti_entropy`, and boot
       once more — back to a full warm start.

    Every boot must produce the baseline's architected outcome.
    """
    import random

    from repro.cluster import ClusterRepository, LocalCluster, \
        anti_entropy
    from repro.faults.harness import _manifest_pairs

    failures = 0
    for seed in CLUSTER_SEEDS:
        name = CLUSTER_WORKLOADS[seed % len(CLUSTER_WORKLOADS)]
        baseline = prepare_baseline(name, PROGRAMS[name], workdir,
                                    hot_threshold=HOT_THRESHOLD)
        root = pathlib.Path(workdir) / f"drill-{name}-{seed}"
        problems = []
        with LocalCluster(root) as grid:
            spec = grid.spec()
            client = ClusterRepository(spec, retries=2,
                                       breaker_cooldown=0.0,
                                       sleep=lambda _s: None)
            source = TranslationRepository(baseline.repo_dir)
            total_records = 0
            keys = []
            for pair in _manifest_pairs(baseline.repo_dir):
                records = source.load(*pair)
                total_records += len(records)
                keys.extend(record["key"] for record in records)
                client.save(records, *pair)

            def boot(stage):
                vm = CoDesignedVM(vm_soft(),
                                  hot_threshold=HOT_THRESHOLD)
                vm.load(assemble(baseline.source))
                load = vm.warm_start(client)
                vm.run()
                for diff in baseline.outcome.diff(ArchOutcome.of(vm)):
                    problems.append(f"{stage}: {diff}")
                return load

            rng = random.Random(seed)
            group = grid.group_name(rng.randrange(grid.shards))
            replica = rng.randrange(grid.replicas)

            full = boot("fault-free boot")
            if full.loaded != total_records:
                problems.append(
                    f"fault-free boot loaded {full.loaded}/"
                    f"{total_records}")

            grid.stop_replica(group, replica)
            replica_down = boot(f"boot with {group}/{replica} down")
            if replica_down.loaded != full.loaded:
                problems.append(
                    f"replica kill changed warm loads: "
                    f"{replica_down.loaded} != {full.loaded}")

            for index in range(grid.replicas):
                if index != replica:
                    grid.stop_replica(group, index)
            boot(f"boot with all of {group} down")

            # the dead replica comes back with its disk wiped, so
            # anti-entropy has real work: its whole shard share must
            # be re-replicated from the surviving sibling
            shutil.rmtree(grid.repo_dir(group, replica),
                          ignore_errors=True)
            for index in range(grid.replicas):
                grid.restart_replica(group, index)
            report = anti_entropy(spec, retries=1,
                                  sleep=lambda _s: None)
            if not report.ok:
                problems.append("anti-entropy did not converge:\n"
                                + report.format())
            share = len(spec.ring().partition(keys).get(group, ()))
            if report.total_re_replicated != share:
                problems.append(
                    f"expected {share} record(s) re-replicated onto "
                    f"the wiped replica, got "
                    f"{report.total_re_replicated}")
            healed = boot("boot after repair")
            if healed.loaded != full.loaded:
                problems.append(
                    f"repair did not restore warm loads: "
                    f"{healed.loaded} != {full.loaded}")
            stats = client.remote_stats.to_dict()
            client.close()
        status = "ok" if not problems else "FAIL"
        print(f"{status}  cluster drill {name} seed={seed} "
              f"victim={group}/{replica} "
              f"(failovers={stats.get('failovers', 0)}, "
              f"degradations={stats.get('group_degradations', 0)}, "
              f"repaired={report.total_re_replicated})")
        for problem in problems:
            print(f"      {problem}")
        failures += bool(problems)
    return failures


def fsck_roundtrip(workdir: str) -> int:
    """Every disk fault class must be fully repairable by fsck."""
    failures = 0
    source = PROGRAMS["fibonacci"]
    disk_faults = [name for name in all_fault_names()
                   if make_fault(name).disk]
    for seed, fault_name in enumerate(disk_faults):
        repo_dir = pathlib.Path(workdir) / f"fsck-{fault_name}"
        vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        vm.load(assemble(source))
        vm.run()
        repo = TranslationRepository(repo_dir)
        vm.save_translations(repo)

        injector = FaultInjector(100 + seed, [fault_name], rate=1.0)
        corruptions = injector.mangle_repository(repo_dir)
        repo.fsck(repair=True)
        clean = repo.fsck(repair=False)

        warm_vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        warm_vm.load(assemble(source))
        load = warm_vm.warm_start(repo)
        warm_vm.run()

        problems = []
        if not clean.ok:
            problems.append(f"fsck left {clean.issues} issue(s) behind")
        if load.corrupt:
            problems.append(f"{load.corrupt} corrupt record(s) survived "
                            f"the repair")
        if warm_vm.state.exit_code != vm.state.exit_code or \
                list(warm_vm.state.output) != list(vm.state.output):
            problems.append("warm run after repair diverged")
        status = "ok" if not problems else "FAIL"
        print(f"{status}  fsck roundtrip [{fault_name}] "
              f"({corruptions} corruption(s), "
              f"{load.loaded}/{load.attempted} reloaded)")
        for problem in problems:
            print(f"      {problem}")
        failures += bool(problems)
    return failures


def preflight_fault_sites() -> int:
    """Fail fast when the fault-site registry has drifted.

    A fault class whose site string no production code visits makes
    every chaos run of that class silently test nothing — the sweep
    would pass while injecting zero faults.  reprolint's FLT001 rule
    checks the same invariant at lint time; this preflight stops the
    (much slower) chaos sweep before it burns minutes on a vacuous
    matrix.
    """
    from repro.lint.index import fault_site_drift
    drift = fault_site_drift()
    if not drift:
        return 0
    print("chaos gate: fault-site registry drift — the following "
          "registered sites have no fault_point(...) call site:")
    for name, missing in sorted(drift.items()):
        print(f"  {name}: {', '.join(missing)}")
    print("fix the registry or the call sites (reprolint rule FLT001; "
          "see docs/static_analysis.md), then re-run")
    return 1


def main() -> int:
    if preflight_fault_sites():
        return 1
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        print("== chaos matrix (fault class x workload x mode) ==")
        failures += chaos_matrix(workdir)
        print("\n== client/server chaos cocktail (remote mode) ==")
        failures += remote_cocktail(workdir)
        print("\n== cluster chaos cocktail (sharded cluster mode) ==")
        failures += cluster_cocktail(workdir)
        print("\n== overload cocktail (shed/deadline/hedge classes) ==")
        failures += overload_cocktail(workdir)
        print("\n== cluster kill/repair drill (live shard outages) ==")
        failures += cluster_drill(workdir)
        print("\n== fsck repair round-trip (disk fault classes) ==")
        failures += fsck_roundtrip(workdir)
    if failures:
        print(f"\nchaos gate: {failures} FAILURE(S)")
        return 1
    print("\nchaos gate: all faulted runs matched their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
