#!/usr/bin/env python
"""Fleet-boot smoke gate (the ``make fleet-smoke`` target).

Executable claims from ``docs/fleet.md``, on a grid small enough for
CI but wide enough to cross every policy axis:

1. **The herd boots and stays architecturally honest**: every
   instance of every scenario matches the fault-free local baseline
   (the paper's "no server behaviour may change architected results"
   invariant, herd-sized).
2. **Reports validate**: the sweep's report passes
   :func:`repro.fleet.validate_report` — schema, monotone
   percentiles, complete rank 0..n-1 amortization curves.
3. **The shared cache amortizes**: in the staged shared-image
   scenario (``one_then_others`` x ``one``), later boot ranks reach
   steady state strictly cheaper than rank 0, and their pushes dedup
   to zero new objects.
4. **Runs replay byte-for-byte**: serializing the report of the same
   scenario twice yields identical bytes (the determinism contract
   the whole results/ directory hangs off).

Run directly (``python tools/fleet_smoke.py``) or via
``make fleet-smoke`` / ``make verify``.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.fleet import (                                # noqa: E402
    FleetEngine,
    FleetScenario,
    amortization_gain,
    build_report,
    expand_grid,
    run_sweep,
    serialize_report,
    validate_report,
)

GRID = {
    "n": (4,),
    "boot_policy": ("all_at_once", "one_then_others"),
    "image_policy": ("one", "one_per_vm"),
}


def fail(message: str) -> int:
    print(f"FLEET SMOKE FAIL: {message}")
    return 1


def main() -> int:
    scenarios = expand_grid(GRID, workers=4)
    results = run_sweep(scenarios)
    report = build_report(results)

    for result in results:
        label = result.scenario.label()
        if not result.arch_ok:
            problems = [p for i in result.instances for p in i.problems]
            return fail(f"architected divergence in {label}: {problems}")
        print(f"booted {label}: arch_ok")

    problems = validate_report(report)
    if problems:
        return fail(f"report invalid: {problems}")

    for entry in report["fleets"]:
        scenario = entry["scenario"]
        gain = amortization_gain(entry)
        staged_shared = (scenario["boot_policy"] == "one_then_others"
                         and scenario["image_policy"] == "one")
        if staged_shared:
            if not gain or gain <= 1.0:
                return fail(f"no amortization in {entry['label']}: "
                            f"gain={gain}")
            curve = entry["amortization"]
            if any(point["push_written"] for point in curve[1:]):
                return fail(f"later ranks wrote new objects in "
                            f"{entry['label']}")
            print(f"amortization gain {gain:.2f}x in {entry['label']}")

    scenario = FleetScenario(n=3, boot_policy="one_then_others",
                             workers=3, seed=5)
    first = serialize_report(build_report([FleetEngine().run(scenario)]))
    second = serialize_report(build_report([FleetEngine().run(scenario)]))
    if first != second:
        return fail("same-seed reports are not byte-identical")
    print("same-seed fleet reports byte-identical")

    print(f"fleet smoke OK: {len(results)} scenario(s), "
          f"{sum(len(r.instances) for r in results)} instance boot(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
