#!/usr/bin/env python
"""Cluster smoke gate (the ``make cluster-smoke`` target).

Exercises the sharded/replicated translation-cache cluster the way an
operator would — real ``repro serve`` subprocesses, real kill -9:

1. spawn a 3-shard x 2-replica cluster as six ``repro serve``
   subprocesses (``--shard-id``/``--role``), readiness probed through
   the wire ``health`` op (never a stdout scrape);
2. run a workload cold, push its translations through a
   :class:`~repro.cluster.ClusterRepository`, and boot a warm herd
   through the cluster — every instance must load every record;
3. ``kill -9`` one replica mid-herd (the victim is chosen
   deterministically: a replica of a shard group that owns records),
   push a *second* workload while it is down (so its group genuinely
   diverges), and keep booting — every boot, both workloads, must
   reproduce its cold baseline's architected results exactly;
4. restart the dead replica on the same address over its old store,
   run :func:`~repro.cluster.anti_entropy`, and verify it converges —
   the restarted replica's missed pushes are re-replicated — after
   which a second pass must find nothing left to do.

Any divergence, missed failover, or unconverged repair fails the gate
(exit 1).  Run directly (``python tools/cluster_smoke.py``) or via
``make cluster-smoke`` / ``make verify``.  See ``docs/cluster.md``.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cluster import ClusterRepository, anti_entropy   # noqa: E402
from repro.cluster.topology import ClusterSpec, ShardGroup  # noqa: E402
from repro.core.config import vm_soft                       # noqa: E402
from repro.core.vm import CoDesignedVM                      # noqa: E402
from repro.isa.x86lite.assembler import assemble            # noqa: E402
from repro.persist import (RemoteRepository,                # noqa: E402
                           TranslationRepository)
from repro.workloads.programs import PROGRAMS               # noqa: E402

HOT_THRESHOLD = 20
WORKLOADS = ("fibonacci", "checksum")
SHARDS = 3
REPLICAS = 2
SERVER_STARTUP_DEADLINE = 15.0
HERD_BEFORE_KILL = 3
HERD_AFTER_KILL = 3


def spawn_server(cache_dir: str, shard_id: str, role: str,
                 port: int = 0) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--cache-dir", cache_dir,
         "--shard-id", shard_id, "--role", role],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO))


def read_address(proc: subprocess.Popen) -> str:
    """The kernel-assigned address from the serve banner (the one
    thing only the subprocess knows; liveness is still health-op)."""
    deadline = time.monotonic() + SERVER_STARTUP_DEADLINE
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if " on " in line:
            return line.rsplit(" on ", 1)[1].strip()
        if proc.poll() is not None:
            break
        if not line:
            time.sleep(0.05)
    raise RuntimeError("serve subprocess never printed its address")


def await_health(address: str, shard_id: str, role: str) -> None:
    """Block until the server answers the wire ``health`` op with the
    expected cluster membership."""
    probe = RemoteRepository(address, timeout=0.5, retries=0,
                             sleep=lambda _s: None)
    try:
        deadline = time.monotonic() + SERVER_STARTUP_DEADLINE
        while time.monotonic() < deadline:
            health = probe.health()
            if health is not None:
                if health.get("shard_id") != shard_id or \
                        health.get("role") != role:
                    raise RuntimeError(
                        f"{address} answered health as "
                        f"{health.get('shard_id')}/{health.get('role')},"
                        f" expected {shard_id}/{role}")
                return
            time.sleep(0.05)
    finally:
        probe.close()
    raise RuntimeError(f"{address} never answered the health op")


def fresh_vm(workload: str) -> CoDesignedVM:
    vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
    vm.load(assemble(PROGRAMS[workload]))
    return vm


def main() -> int:
    problems = []
    procs = {}
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as workdir:
        work = pathlib.Path(workdir)

        # 1. the cluster: six serve subprocesses, health-op readiness
        groups = []
        for shard in range(SHARDS):
            group = f"shard{shard}"
            addresses = []
            for index in range(REPLICAS):
                role = "primary" if index == 0 else "replica"
                store = str(work / group / f"replica{index}")
                proc = spawn_server(store, group, role)
                address = read_address(proc)
                await_health(address, group, role)
                procs[(group, index)] = proc
                addresses.append(address)
            groups.append(ShardGroup(name=group,
                                     replicas=tuple(addresses)))
        spec = ClusterSpec(groups=tuple(groups))
        print(f"cluster up: {spec.to_string()}")

        try:
            # 2. cold baselines + push workload 0 through the cluster
            baselines = {}
            records = {}
            for workload in WORKLOADS:
                vm = fresh_vm(workload)
                baselines[workload] = vm.run()
                local = work / f"baseline-{workload}"
                vm.save_translations(str(local))
                repo = TranslationRepository(local)
                manifest = next((local / "manifests").glob("*.json"))
                pair = tuple(manifest.stem.split("__", 1))
                records[workload] = (pair, repo.load(*pair))

            client = ClusterRepository(spec, retries=2,
                                       breaker_cooldown=0.0,
                                       sleep=lambda _s: None)
            (pair0, recs0) = records[WORKLOADS[0]]
            written = client.save(recs0, *pair0)
            print(f"pushed {written}/{len(recs0)} record(s) of "
                  f"{WORKLOADS[0]} across {SHARDS} shard(s)")
            if written != len(recs0):
                problems.append("initial cluster push lost records")

            def boot(workload, stage):
                vm = fresh_vm(workload)
                load = vm.warm_start(client)
                run = vm.run()
                base = baselines[workload]
                if (run.exit_code, run.output) != (base.exit_code,
                                                   base.output):
                    problems.append(f"{stage}: architected divergence")
                return load

            for rank in range(HERD_BEFORE_KILL):
                load = boot(WORKLOADS[0], f"pre-kill rank {rank}")
                if load.loaded != len(recs0):
                    problems.append(
                        f"pre-kill rank {rank} loaded {load.loaded}/"
                        f"{len(recs0)}")

            # 3. kill -9 one replica of a group that owns records,
            # then push workload 1 while it is down
            # the victim is the *primary* (first in failover order) of
            # a group that owns records, so reads genuinely fail over
            ring = spec.ring()
            owners = ring.partition([r["key"] for r in recs0])
            victim_group = sorted(group for group, keys
                                  in owners.items() if keys)[0]
            victim = (victim_group, 0)
            victim_proc = procs[victim]
            victim_proc.send_signal(signal.SIGKILL)
            victim_proc.wait(timeout=10)
            victim_address = spec.group(victim_group).replicas[0]
            print(f"killed {victim_group}/replica0 (primary) at "
                  f"{victim_address}")

            (pair1, recs1) = records[WORKLOADS[1]]
            client.save(recs1, *pair1)
            divergent = len(ring.partition(
                [r["key"] for r in recs1]).get(victim_group, ()))

            for rank in range(HERD_AFTER_KILL):
                load = boot(WORKLOADS[0], f"post-kill rank {rank}")
                if load.loaded != len(recs0):
                    problems.append(
                        f"post-kill rank {rank} loaded {load.loaded}/"
                        f"{len(recs0)} (failover should hide the kill)")
            boot(WORKLOADS[1], "post-kill second workload")

            stats = client.remote_stats.to_dict()
            print(f"degradation counters: "
                  f"failovers={stats['failovers']} "
                  f"conn_errors={stats['conn_errors']} "
                  f"group_degradations={stats['group_degradations']} "
                  f"quorum_misses={stats['quorum_misses']}")
            if stats["failovers"] == 0:
                problems.append("killed replica produced no failovers")
            if stats["group_degradations"] != 0:
                problems.append("a whole group degraded with one "
                                "replica still alive")

            # 4. restart the dead replica on the same address + store,
            # then anti-entropy must re-replicate what it missed
            host, _, port = victim_address.rpartition(":")
            proc = spawn_server(str(work / victim_group / "replica0"),
                                victim_group, "primary",
                                port=int(port))
            procs[victim] = proc
            await_health(victim_address, victim_group, "primary")
            print(f"restarted {victim_group}/replica0")

            report = anti_entropy(spec, retries=1,
                                  sleep=lambda _s: None)
            print(report.format())
            if not report.ok:
                problems.append("anti-entropy did not converge")
            if report.total_re_replicated != divergent:
                problems.append(
                    f"expected {divergent} record(s) re-replicated to "
                    f"the restarted primary, got "
                    f"{report.total_re_replicated}")
            second = anti_entropy(spec, retries=1,
                                  sleep=lambda _s: None)
            if not second.ok or second.total_re_replicated != 0:
                problems.append("repair is not idempotent: second "
                                "pass still moved records")

            healed = boot(WORKLOADS[1], "post-repair boot")
            if healed.loaded != len(recs1):
                problems.append(
                    f"post-repair boot loaded {healed.loaded}/"
                    f"{len(recs1)}")
            client.close()
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=10)

    if problems:
        for problem in problems:
            print(f"FAIL  {problem}")
        print(f"\ncluster smoke: {len(problems)} FAILURE(S)")
        return 1
    print("\ncluster smoke: replicated push, mid-herd kill -9 "
          "failover, and anti-entropy repair ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
