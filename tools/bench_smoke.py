#!/usr/bin/env python
"""Warm-start smoke benchmark (the ``make bench-smoke`` gate).

For every seed workload: cold-run the software VM, snapshot its
translations into a temporary repository, then boot a fresh VM from that
repository and run again.  The gate fails unless

* the warm run performs *strictly fewer* BBT translations than the cold
  run — and in fact zero, since the seed programs are deterministic and
  every block seen cold is re-materialized at boot;
* every persisted translation re-loads (nothing dropped as stale,
  corrupt, or verifier-rejected);
* both runs produce identical architected output;
* the timing model agrees: the PERSISTENT_WARM startup scenario costs
  measurably fewer cycles than MEMORY_STARTUP for the software VM;
* the bench trajectory holds: this run's scalar metrics are appended
  to ``results/bench_history.jsonl`` and compared against the previous
  same-fingerprint row (:mod:`repro.obs.trajectory`) — the gate fails
  on any regression beyond the tolerance, so a PR that silently slows
  warm starts trips here, not three PRs later.

Run directly (``python tools/bench_smoke.py``) or via ``make verify``.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.core.config import vm_soft                    # noqa: E402
from repro.core.vm import CoDesignedVM                   # noqa: E402
from repro.isa.x86lite.assembler import assemble         # noqa: E402
from repro.obs.trajectory import (append_row, bench_diff,  # noqa: E402
                                  format_diff, history_row,
                                  load_history)
from repro.persist import TranslationRepository          # noqa: E402
from repro.timing.scenarios import Scenario              # noqa: E402
from repro.timing.startup_sim import simulate_startup    # noqa: E402
from repro.workloads.programs import PROGRAMS            # noqa: E402
from repro.workloads.trace import generate_workload      # noqa: E402
from repro.workloads.winstone import winstone_suite      # noqa: E402

HOT_THRESHOLD = 50
TIMING_INSTRS = 20_000_000

#: scalar metrics of this run, appended to the bench history
METRICS: dict = {}


def check_functional(cache_dir: str) -> int:
    repo = TranslationRepository(cache_dir)
    failures = 0
    for name, source in sorted(PROGRAMS.items()):
        image = assemble(source)

        cold_vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        cold_vm.load(image)
        cold = cold_vm.run()
        cold_vm.save_translations(repo)

        warm_vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
        warm_vm.load(image)
        load = warm_vm.warm_start(repo)
        warm = warm_vm.run()

        problems = []
        if not (warm.blocks_translated < cold.blocks_translated):
            problems.append(
                f"warm BBT translations not lower "
                f"({warm.blocks_translated} vs {cold.blocks_translated})")
        if warm.blocks_translated != 0:
            problems.append(f"warm run still translated "
                            f"{warm.blocks_translated} block(s)")
        if load.dropped:
            problems.append(f"{load.dropped} persisted record(s) dropped "
                            f"at load")
        if warm.output != cold.output or warm.exit_code != cold.exit_code:
            problems.append("warm output differs from cold output")

        status = "FAIL: " + "; ".join(problems) if problems else "ok"
        print(f"{name:14s} cold bbt={cold.blocks_translated:3d} "
              f"sbt={cold.superblocks_translated:2d} | "
              f"loaded={load.loaded:3d} dropped={load.dropped} | "
              f"warm bbt={warm.blocks_translated} ... {status}")
        METRICS[f"{name}.cold_bbt"] = cold.blocks_translated
        METRICS[f"{name}.cold_sbt"] = cold.superblocks_translated
        METRICS[f"{name}.warm_loaded"] = load.loaded
        METRICS[f"{name}.warm_bbt"] = warm.blocks_translated
        failures += bool(problems)
    return failures


def check_timing() -> int:
    app = winstone_suite()[0]
    workload = generate_workload(app, dyn_instrs=TIMING_INSTRS, seed=0)
    cold = simulate_startup(vm_soft(), workload,
                            Scenario.MEMORY_STARTUP)
    warm = simulate_startup(vm_soft(), workload,
                            Scenario.PERSISTENT_WARM)
    ok = warm.total_cycles < cold.total_cycles
    print(f"\ntiming ({app.name}, 20M instrs): "
          f"cold {cold.total_cycles / 1e6:.1f}M cycles, "
          f"warm {warm.total_cycles / 1e6:.1f}M cycles "
          f"... {'ok' if ok else 'FAIL: warm not faster'}")
    METRICS["timing.cold_cycles"] = cold.total_cycles
    METRICS["timing.warm_cycles"] = warm.total_cycles
    return 0 if ok else 1


def check_trajectory() -> int:
    """Append this run's metrics to the bench history and gate on
    drift against the previous same-fingerprint row."""
    append_row(history_row("bench_smoke", METRICS, {
        "hot_threshold": HOT_THRESHOLD,
        "timing_instrs": TIMING_INSTRS,
        "seed": 0,
    }))
    regressions, comparisons = bench_diff(load_history())
    print("\nbench trajectory (results/bench_history.jsonl):")
    print(format_diff(regressions, comparisons))
    return 1 if regressions else 0


def main() -> int:
    print("bench-smoke: warm start must beat cold start")
    print("=" * 60)
    with tempfile.TemporaryDirectory(prefix="repro-bench-smoke-") as tmp:
        failures = check_functional(tmp)
    failures += check_timing()
    failures += check_trajectory()
    print("=" * 60)
    if failures:
        print(f"bench-smoke: {failures} failure(s)")
        return 1
    print("bench-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
