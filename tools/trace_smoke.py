#!/usr/bin/env python
"""Observability smoke gate (the ``make trace-smoke`` target).

Three executable claims from ``docs/observability.md``:

1. **Exports are well-formed**: a traced run of every seed workload
   produces a Perfetto-loadable document that passes the checked-in
   ``trace_schema.json`` and whose per-phase cycle totals sum exactly
   to the run total (conservation).
2. **Traced runs are deterministic**: running the same workload twice
   yields byte-identical serialized traces.
3. **Disabled tracing is near-zero cost**: the default (untraced) hot
   path pays one pointer test per hook site, so an untraced run of the
   throughput hot loop must not be measurably slower than a traced run
   of the same loop — the gate allows a few percent of timer noise.

Run directly (``python tools/trace_smoke.py``) or via ``make verify``.
"""

from __future__ import annotations

import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.core.config import vm_soft                    # noqa: E402
from repro.core.vm import CoDesignedVM                   # noqa: E402
from repro.isa.x86lite.assembler import assemble         # noqa: E402
from repro.obs.export import (                           # noqa: E402
    serialize_trace,
    validate_trace,
)
from repro.workloads.programs import PROGRAMS            # noqa: E402

HOT_THRESHOLD = 10

#: Same hot loop as benchmarks/bench_functional_throughput.py.
HOT_LOOP = """
start:
    mov ecx, 20000
loop:
    add eax, ecx
    xor eax, 0x5A5A
    lea ebx, [eax+ecx*2]
    dec ecx
    jnz loop
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

#: Disabled-tracing overhead allowance (timer noise included).
OVERHEAD_ALLOWANCE = 1.05
TIMING_ROUNDS = 5


def _traced_export(source: str):
    vm = CoDesignedVM(vm_soft().with_(trace=True),
                      hot_threshold=HOT_THRESHOLD)
    vm.load(assemble(source))
    vm.run()
    return vm.export_trace()


def check_exports() -> int:
    failures = 0
    for name, source in sorted(PROGRAMS.items()):
        doc = _traced_export(source)
        problems = list(validate_trace(doc))
        if not doc["traceEvents"]:
            problems.append("no events emitted")
        if not doc.get("conserved"):
            problems.append("ledger not conserved")
        attributed = sum(doc["phase_cycles"].values())
        if abs(attributed - doc["total_cycles"]) > \
                1e-6 * max(doc["total_cycles"], 1.0):
            problems.append(f"phase sum {attributed} != "
                            f"total {doc['total_cycles']}")
        status = "ok" if not problems else "FAIL"
        print(f"{status}  {name:14s} {len(doc['traceEvents']):4d} "
              f"event(s), {doc['total_cycles']:12.0f} cycles")
        for problem in problems:
            print(f"      {problem}")
        failures += bool(problems)
    return failures


def check_determinism() -> int:
    name = "quicksort"
    first = serialize_trace(_traced_export(PROGRAMS[name]))
    second = serialize_trace(_traced_export(PROGRAMS[name]))
    if first != second:
        print(f"FAIL  {name}: traced runs are not byte-identical")
        return 1
    print(f"ok    {name}: {len(first)} byte(s), byte-identical "
          f"across runs")
    return 0


def _one_hot_loop(image, trace: bool) -> float:
    vm = CoDesignedVM(vm_soft().with_(trace=trace), hot_threshold=50)
    vm.load(image)
    started = time.perf_counter()
    vm.run(max_uops=80_000_000)
    return time.perf_counter() - started


def check_overhead() -> int:
    # warmed-up, interleaved medians; the untraced path must not be
    # slower than the traced one beyond timer noise, since tracing only
    # adds work on top of the shared `if tracer is not None` hook sites
    image = assemble(HOT_LOOP)
    _one_hot_loop(image, trace=False)    # warm caches / allocator
    _one_hot_loop(image, trace=True)
    untraced_samples, traced_samples = [], []
    for _ in range(TIMING_ROUNDS):
        untraced_samples.append(_one_hot_loop(image, trace=False))
        traced_samples.append(_one_hot_loop(image, trace=True))
    untraced = statistics.median(untraced_samples)
    traced = statistics.median(traced_samples)
    ratio = untraced / traced if traced else 1.0
    status = "ok" if ratio <= OVERHEAD_ALLOWANCE else "FAIL"
    print(f"{status}    hot loop: untraced {untraced * 1e3:.1f} ms, "
          f"traced {traced * 1e3:.1f} ms "
          f"(untraced/traced = {ratio:.3f}, "
          f"allowed <= {OVERHEAD_ALLOWANCE})")
    return int(ratio > OVERHEAD_ALLOWANCE)


def main() -> int:
    failures = 0
    print("== trace exports (schema + conservation)")
    failures += check_exports()
    print("\n== determinism")
    failures += check_determinism()
    print("\n== disabled-tracing overhead")
    failures += check_overhead()
    print(f"\n{'TRACE SMOKE FAILED' if failures else 'trace smoke ok'}"
          f" ({failures} failure(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
