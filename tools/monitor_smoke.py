#!/usr/bin/env python
"""Telemetry smoke gate (the ``make monitor-smoke`` target).

Executable claims from ``docs/observability.md``, on one ``--collect``
fleet over a live 3x2 sharded cluster:

1. **Trace context propagates across the wire**: in the merged
   Perfetto trace, every client ``remote.pull``/``remote.push`` slice
   carries a flow link (``ph: "s"``/``"f"`` pair) to the server span
   that served it, and every scraped server span names a client span
   as its parent.  The trace passes the checked-in schema validator.
2. **The collector snapshot is canonical**: running the same collect
   scenario twice yields byte-identical canonical telemetry — with
   SLO verdicts embedded in the fleet report — and the canonical
   bytes carry no wall-clock material at all.
3. **The CLI surfaces work end to end**: ``repro fleet run --collect``
   embeds verdicts in its report and flows in its trace;
   ``repro monitor --once`` scrapes a live cluster, prints verdicts
   and exits 0 while SLOs hold, 1 when a custom rule file fails.

Run directly (``python tools/monitor_smoke.py``) or via
``make monitor-smoke`` / ``make verify``.
"""

from __future__ import annotations

import contextlib
import io
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.cli import main as repro_main                 # noqa: E402
from repro.cluster.manager import LocalCluster           # noqa: E402
from repro.fleet import (                                # noqa: E402
    FleetEngine,
    FleetScenario,
    build_report,
    export_fleet_trace,
    serialize_report,
    validate_report,
)
from repro.obs.export import validate_trace              # noqa: E402

SCENARIO = dict(n=6, boot_policy="one_then_others", shards=3,
                replicas=2, collect=True, workers=3, seed=0)


def fail(message: str) -> int:
    print(f"MONITOR SMOKE FAIL: {message}")
    return 1


def check_flow_links(trace: dict) -> str:
    """Every client pull/push slice must flow-link to the server span
    that served it; every server span must name a client parent."""
    events = trace["traceEvents"]
    client = [e for e in events
              if e["name"] in ("remote.pull", "remote.push")
              and e["ph"] == "X"]
    if not client:
        return "no client pull/push spans in the merged trace"
    server = {e["args"]["span"]: e["args"] for e in events
              if e["name"] == "server.op" and e["ph"] == "X"}
    if not server:
        return "no server span lanes in the merged trace"
    starts = {}
    for event in events:
        if event.get("ph") == "s":
            starts.setdefault(
                (event["ts"], event["pid"], event["tid"]),
                []).append(event["id"])
    finishes = {e["id"] for e in events if e.get("ph") == "f"}
    served = {args["parent"] for args in server.values()}
    for slice_ in client:
        span_id = slice_["args"].get("span")
        if span_id not in served:
            return (f"client span {span_id} ({slice_['name']}) has no "
                    f"server span naming it as parent")
        flow_ids = starts.get(
            (slice_["ts"], slice_["pid"], slice_["tid"]), [])
        linked = [fid for fid in flow_ids
                  if fid in finishes and fid in server
                  and server[fid]["parent"] == span_id]
        if not linked:
            return (f"client span {span_id} ({slice_['name']}) carries "
                    f"no s/f flow pair to its server span")
    # other ops (manifest, lease, ...) emit remote.op slices — any
    # client-side slice with a span id is a legal parent
    client_ids = {e["args"]["span"] for e in events
                  if e["ph"] == "X" and e.get("args", {}).get("span")
                  and e["name"] != "server.op"}
    orphans = sorted(parent for parent in served
                     if parent not in client_ids)
    if orphans:
        return f"server spans with unknown parents: {orphans[:3]}"
    return ""


def check_fleet_collect() -> int:
    scenario = FleetScenario(**SCENARIO)
    first = FleetEngine().run(scenario)
    if not first.arch_ok:
        return fail("collect fleet lost architected equality")

    report = build_report([first])
    problems = validate_report(report)
    if problems:
        return fail(f"collect report invalid: {problems}")
    entry = report["fleets"][0]
    telemetry = entry.get("telemetry")
    if not telemetry:
        return fail("no telemetry section in the collect report")
    verdicts = telemetry.get("slo") or []
    if not verdicts:
        return fail("no SLO verdicts embedded in the report")
    bad = [v["name"] for v in verdicts if v["status"] != "pass"]
    if bad:
        return fail(f"SLO verdicts not passing on a healthy fleet: "
                    f"{bad}")
    text = serialize_report(report)
    for word in ("latency", "wall_ms"):
        if word in text:
            return fail(f"canonical collect report leaks wall-clock "
                        f"material ({word!r})")
    print(f"SLO verdicts embedded and passing: "
          f"{[v['name'] for v in verdicts]}")

    trace = export_fleet_trace(first)
    problems = validate_trace(trace)
    if problems:
        return fail(f"merged trace invalid: {problems[:3]}")
    problem = check_flow_links(trace)
    if problem:
        return fail(problem)
    flows = sum(1 for e in trace["traceEvents"] if e.get("ph") == "f")
    print(f"every client pull/push span flow-links to its server span "
          f"({flows} flow arrow(s))")

    second = FleetEngine().run(scenario)
    if serialize_report(build_report([second])) != text:
        return fail("same-seed collect reports are not byte-identical")
    a = json.dumps(first.telemetry["canonical"], sort_keys=True)
    b = json.dumps(second.telemetry["canonical"], sort_keys=True)
    if a != b:
        return fail("canonical collector snapshots differ across runs")
    print("same-seed collect reports and snapshots byte-identical")
    return 0


def check_cli(tmp: pathlib.Path) -> int:
    report_path = tmp / "fleet_collect.json"
    trace_path = tmp / "fleet_collect_trace.json"
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = repro_main([
            "fleet", "run", "--n", "2", "--collect", "--workers", "2",
            "--out", str(report_path), "--trace-out", str(trace_path)])
    if code != 0:
        return fail(f"repro fleet run --collect exited {code}:\n"
                    f"{buffer.getvalue()}")
    report = json.loads(report_path.read_text())
    if "telemetry" not in report["fleets"][0]:
        return fail("CLI --collect report has no telemetry section")
    trace = json.loads(trace_path.read_text())
    if validate_trace(trace):
        return fail("CLI --collect trace invalid")
    problem = check_flow_links(trace)
    if problem:
        return fail(f"CLI --collect trace: {problem}")
    print("repro fleet run --collect embeds verdicts and flow arrows")

    grid = LocalCluster(tmp / "cluster", shards=3, replicas=2)
    spec = grid.start()
    try:
        with contextlib.redirect_stdout(buffer):
            code = repro_main(["monitor", "--cluster", spec.to_string(),
                               "--once"])
        if code != 0:
            return fail(f"repro monitor --once exited {code}")
        with contextlib.redirect_stdout(io.StringIO()) as out:
            code = repro_main(["monitor", "--cluster", spec.to_string(),
                               "--once", "--json"])
        snapshot = json.loads(out.getvalue())
        if code != 0 or snapshot["scrapes"] != 1:
            return fail("repro monitor --json did not round-trip")

        # a rule that cannot hold (fail bound below the observed 0.0)
        slo_path = tmp / "slo.json"
        slo_path.write_text(json.dumps([{
            "name": "always-red", "indicator": "breaker_flaps",
            "warn": -1.0, "fail": -0.5}]))
        with contextlib.redirect_stdout(io.StringIO()):
            code = repro_main(["monitor", "--cluster", spec.to_string(),
                               "--once", "--slo", str(slo_path)])
        if code != 1:
            return fail(f"failing SLO exited {code}, wanted 1")
    finally:
        grid.stop()
    print("repro monitor: verdicts printed, exit codes track SLO "
          "status")
    return 0


def main() -> int:
    failures = check_fleet_collect()
    if failures:
        return failures
    with tempfile.TemporaryDirectory(prefix="repro-monitor-") as tmp:
        failures = check_cli(pathlib.Path(tmp))
    if failures:
        return failures
    print("monitor smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
