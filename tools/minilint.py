#!/usr/bin/env python
"""Fallback linter for environments without ruff/mypy.

Approximates the ruff surface configured in pyproject.toml with zero
dependencies: syntax errors, unused imports (F401), overlong lines
(E501, 99 columns), trailing whitespace (W291/W293) and tab
indentation (W191).  ``make lint`` runs this when ruff is missing.

Usage: python tools/minilint.py [PATH ...]   (defaults to src tests tools)
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

MAX_LINE = 99

Problem = Tuple[Path, int, str]


def iter_python_files(paths: List[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def _import_bindings(tree: ast.AST) -> List[Tuple[int, str]]:
    """(line, bound name) for every import binding in the module."""
    bindings: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings.append((node.lineno, name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                bindings.append((node.lineno, name))
    return bindings


def check_unused_imports(path: Path, source: str,
                         tree: ast.AST) -> Iterator[Problem]:
    # __init__ modules import things to re-export them
    if path.name == "__init__.py":
        return
    for lineno, name in _import_bindings(tree):
        if name.startswith("_"):
            continue
        # textual use count is deliberately forgiving: occurrences in
        # string annotations, docstrings or comments all count as uses,
        # so anything reported here really is dead
        uses = len(re.findall(rf"\b{re.escape(name)}\b", source))
        imports = len(re.findall(
            rf"^\s*(?:from\s+\S+\s+)?import\b.*\b{re.escape(name)}\b",
            source, re.MULTILINE))
        if uses <= imports:
            yield (path, lineno, f"F401 '{name}' imported but unused")


def check_lines(path: Path, source: str) -> Iterator[Problem]:
    for lineno, line in enumerate(source.splitlines(), start=1):
        if len(line) > MAX_LINE:
            yield (path, lineno,
                   f"E501 line too long ({len(line)} > {MAX_LINE})")
        if line != line.rstrip():
            yield (path, lineno, "W291 trailing whitespace")
        stripped = line.lstrip(" ")
        if stripped.startswith("\t"):
            yield (path, lineno, "W191 tab indentation")


def lint_file(path: Path) -> List[Problem]:
    source = path.read_text()
    problems: List[Problem] = []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [(path, error.lineno or 0, f"E999 {error.msg}")]
    problems.extend(check_unused_imports(path, source, tree))
    problems.extend(check_lines(path, source))
    return problems


def main(argv: List[str]) -> int:
    paths = argv or ["src", "tests", "tools"]
    problems: List[Problem] = []
    files = 0
    for path in iter_python_files(paths):
        files += 1
        problems.extend(lint_file(path))
    for path, lineno, message in problems:
        print(f"{path}:{lineno}: {message}")
    summary = f"minilint: {files} file(s), {len(problems)} problem(s)"
    print(summary, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
