#!/usr/bin/env python
"""Back-compat shim: the style pack now lives in :mod:`repro.lint`.

Historically this file was a standalone zero-dependency fallback
linter (F401/E501/W291/W191 plus syntax errors) for environments
without ruff.  PR 6 folded that logic into reprolint as the style
pack; this entry point survives so ``python tools/minilint.py`` and
older CI wiring keep working.  It is exactly
``python -m repro lint --style-only``.

Prefer ``python -m repro lint`` (or ``make lint``), which also runs
the project-invariant rules — determinism, lock discipline,
fault-point coverage, taxonomy conformance — documented in
``docs/static_analysis.md``.

Usage: python tools/minilint.py [PATH ...]   (defaults to src tests tools)
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def main(argv: List[str]) -> int:
    from repro.cli import main as repro_main
    return repro_main(["lint", "--style-only"] + list(argv))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
