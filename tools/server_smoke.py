#!/usr/bin/env python
"""Shared-cache server smoke gate (the ``make serve-smoke`` target).

Exercises the full client/server path the way an operator would:

1. spawn ``repro serve`` as a real subprocess on a unix socket;
2. run a workload cold and ``push`` its translations through a
   :class:`~repro.persist.RemoteRepository`;
3. warm-start a fresh VM through the server — it must load every
   record and translate **zero** blocks at boot;
4. ``kill -9`` the server mid-run, then warm-start two more clients:
   one with a local fallback repository (must still boot warm from
   it) and one with nothing (must degrade to cold translation) —
   both must reproduce the cold run's architected results exactly.

Any divergence, missed fallback, or surviving server process fails
the gate (exit 1).  Run directly (``python tools/server_smoke.py``)
or via ``make serve-smoke`` / ``make verify``.  See
``docs/cache_server.md``.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.config import vm_soft                    # noqa: E402
from repro.core.vm import CoDesignedVM                   # noqa: E402
from repro.isa.x86lite.assembler import assemble         # noqa: E402
from repro.persist import RemoteRepository               # noqa: E402
from repro.workloads.programs import PROGRAMS            # noqa: E402

HOT_THRESHOLD = 20
WORKLOAD = "fibonacci"
SERVER_STARTUP_DEADLINE = 15.0


def start_server(socket_path: str, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path, "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO))
    # readiness via the wire ``health`` op — the same structured probe
    # operators and the cluster tooling use, not a stdout scrape
    probe = RemoteRepository(f"unix:{socket_path}", timeout=0.5,
                             retries=0, sleep=lambda _s: None)
    try:
        deadline = time.monotonic() + SERVER_STARTUP_DEADLINE
        while time.monotonic() < deadline:
            health = probe.health()
            if health is not None:
                print(f"server ready: role={health.get('role')} "
                      f"objects={health.get('objects')} "
                      f"at {health.get('address')}")
                return proc
            if proc.poll() is not None:
                break
            time.sleep(0.05)
    finally:
        probe.close()
    raise RuntimeError("server subprocess never answered the health op")


def fresh_vm() -> CoDesignedVM:
    vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
    vm.load(assemble(PROGRAMS[WORKLOAD]))
    return vm


def main() -> int:
    problems = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as workdir:
        work = pathlib.Path(workdir)
        socket_path = str(work / "cache.sock")
        server = start_server(socket_path, str(work / "server-repo"))
        try:
            # cold baseline + push through the live server
            cold_vm = fresh_vm()
            cold = cold_vm.run()
            client = RemoteRepository(f"unix:{socket_path}")
            pushed = cold_vm.save_translations(client)
            print(f"pushed {pushed} record(s) through {client.address}")
            if pushed <= 0:
                problems.append("push wrote no records")
            # seed the local fallback store for the degraded client
            cold_vm.save_translations(str(work / "local-repo"))

            # warm start through the live server: zero BBT at boot
            warm_vm = fresh_vm()
            load = warm_vm.warm_start(RemoteRepository(f"unix:{socket_path}"))
            warm = warm_vm.run()
            print(f"warm boot via server: {load.loaded}/{load.attempted} "
                  f"loaded, {warm.blocks_translated} block(s) translated")
            if load.loaded <= 0:
                problems.append("warm start through the server loaded "
                                "no records")
            if warm.blocks_translated != 0:
                problems.append(f"warm boot still translated "
                                f"{warm.blocks_translated} block(s)")
            if (warm.exit_code, warm.output) != (cold.exit_code,
                                                cold.output):
                problems.append("warm run diverged from the cold run")
        finally:
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=10)
        print("server killed; clients must now degrade")

        # degraded client with a local fallback: still boots warm
        fallback = RemoteRepository(
            f"unix:{socket_path}", local=str(work / "local-repo"),
            timeout=0.5, retries=1, sleep=lambda _s: None)
        deg_vm = fresh_vm()
        deg_load = deg_vm.warm_start(fallback)
        degraded = deg_vm.run()
        stats = fallback.remote_stats
        print(f"fallback-to-local: {deg_load.loaded} loaded, "
              f"{stats.fallbacks} fallback(s), "
              f"{stats.conn_errors} conn error(s)")
        if stats.fallbacks == 0:
            problems.append("dead server produced no fallback")
        if deg_load.loaded <= 0 or degraded.blocks_translated != 0:
            problems.append("local fallback did not boot warm")
        if (degraded.exit_code, degraded.output) != (cold.exit_code,
                                                     cold.output):
            problems.append("fallback-to-local run diverged")

        # degraded client with no fallback: completes cold
        bare = RemoteRepository(f"unix:{socket_path}", timeout=0.5,
                                retries=1, sleep=lambda _s: None)
        bare_vm = fresh_vm()
        bare_load = bare_vm.warm_start(bare)
        cold_again = bare_vm.run()
        print(f"fallback-to-cold: {bare_load.loaded} loaded, "
              f"{cold_again.blocks_translated} block(s) translated")
        if bare_load.loaded != 0:
            problems.append("dead server somehow served records")
        if cold_again.blocks_translated == 0:
            problems.append("cold fallback translated nothing")
        if (cold_again.exit_code, cold_again.output) != (cold.exit_code,
                                                         cold.output):
            problems.append("fallback-to-cold run diverged")

    if problems:
        for problem in problems:
            print(f"FAIL  {problem}")
        print(f"\nserve smoke: {len(problems)} FAILURE(S)")
        return 1
    print("\nserve smoke: push, warm boot, and both degradations ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
