#!/usr/bin/env python
"""Startup comparison: regenerate the paper's Fig. 8 for one application.

Simulates the memory-startup scenario (Section 3.1, scenario 2) for the
reference superscalar and the three VM configurations on a Winstone-like
application model at full 500M-instruction scale, then prints the
normalized aggregate-IPC curves and breakeven points.

Run:  python examples/startup_comparison.py [app-name]
"""

import sys

from repro import (
    generate_workload,
    interp_sbt,
    ref_superscalar,
    simulate_startup,
    vm_be,
    vm_fe,
    vm_soft,
    winstone_app,
)
from repro.analysis import normalized_curve
from repro.analysis.breakeven import format_breakeven
from repro.analysis.reporting import format_table
from repro.analysis.startup_curves import log_grid
from repro.timing.sampler import crossover_cycles


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "Word"
    app = winstone_app(app_name)
    print(f"app model: {app.name} (static working set "
          f"{app.static_instrs // 1000}K instrs, ref IPC {app.ipc_ref}, "
          f"VM steady speedup +{100 * (app.vm_speedup - 1):.0f}%)")
    workload = generate_workload(app, dyn_instrs=500_000_000, seed=0)
    print(f"workload: {len(workload.regions)} regions, "
          f"{len(workload.episodes)} episodes, "
          f"{workload.total_dynamic_instrs / 1e6:.0f}M dynamic instrs\n")

    configs = [ref_superscalar(), vm_soft(), vm_be(), vm_fe(),
               interp_sbt()]
    results = {config.name: simulate_startup(config, workload)
               for config in configs}

    grid = log_grid(1e4, 1e9, per_decade=2)
    names = [config.name for config in configs]
    curves = {name: normalized_curve(results[name], app.ipc_ref, grid)
              for name in names}
    rows = [[f"{cycles:.0e}"] + [curves[name][index] for name in names]
            for index, cycles in enumerate(grid)]
    print(format_table(["cycles"] + names, rows,
                       title="normalized aggregate IPC over time "
                             "(memory-startup scenario)"))

    reference = results["Ref: superscalar"]
    print("\nbreakeven vs the reference superscalar:")
    for name in names[1:]:
        point = crossover_cycles(results[name].series, reference.series,
                                 start=1e4)
        print(f"  {name:18s} {format_breakeven(point)} cycles")
    print("\nhotspot coverage (VM.soft): "
          f"{results['VM.soft'].hotspot_coverage:.0%}"
          "   (paper: 75+% at 500M instructions)")


if __name__ == "__main__":
    main()
