#!/usr/bin/env python
"""Quickstart: run one program under every machine configuration.

Assembles a small x86lite program, runs it under the reference
superscalar (pure interpretation) and all four VM strategies, and shows
that every configuration produces identical architected results while
doing very different amounts of translation work.

Run:  python examples/quickstart.py
"""

from repro import (
    CoDesignedVM,
    assemble,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)

PROGRAM = """
; sum of squares 1..50, printed via the INT 0x80 service
start:
    mov ecx, 50
    mov esi, 0
loop:
    mov eax, ecx
    imul eax, eax
    add esi, eax
    dec ecx
    jnz loop
    mov eax, 1          ; SYS_PRINT_INT
    mov ebx, esi
    int 0x80
    mov eax, 0          ; SYS_EXIT
    mov ebx, 0
    int 0x80
"""


def main() -> None:
    image = assemble(PROGRAM)
    print(f"program: {len(image.text.data)} bytes of x86lite at "
          f"{image.entry:#x}\n")

    for factory in (ref_superscalar, vm_soft, vm_be, vm_fe, interp_sbt):
        config = factory()
        vm = CoDesignedVM(config, hot_threshold=10)
        vm.load(image)
        report = vm.run()
        print(report.summary())
        print()

    print("all configurations printed sum(i^2, i=1..50) ="
          f" {sum(i * i for i in range(1, 51))}")


if __name__ == "__main__":
    main()
