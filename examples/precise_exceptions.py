#!/usr/bin/env python
"""Precise architected exceptions through the translation stack.

The co-designed VM must deliver exceptions with *exact* architected
state even though execution happens in reordered, fused, translated
code (Fig. 1b's exception edge).  This example makes a loop hot (so it
runs as an optimized superblock), then triggers a divide fault and shows
that every configuration reports the same faulting instruction address
and register state as the reference machine.

Run:  python examples/precise_exceptions.py
"""

from repro import (
    CoDesignedVM,
    assemble,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.isa.x86lite import ArchException, Reg

PROGRAM = """
start:
    mov ecx, 50
warm:                       ; becomes a hot superblock
    mov eax, 1000
    mov edx, 0
    mov ebx, ecx
    div ebx                 ; fine while ecx >= 1
    add esi, eax
    dec ecx
    jnz warm
    mov ebx, 0
    mov eax, 1234
    mov edx, 0
    div ebx                 ; #DE: divide by zero
    hlt
"""


def main() -> None:
    image = assemble(PROGRAM)
    print("running a program that gets hot, then divides by zero...\n")
    outcomes = []
    for factory in (ref_superscalar, vm_soft, vm_be, vm_fe, interp_sbt):
        vm = CoDesignedVM(factory(), hot_threshold=5)
        vm.load(image)
        try:
            vm.run()
            raise SystemExit("expected a divide fault!")
        except ArchException as exc:
            state = vm.state
            outcomes.append((factory().name, exc.kind, exc.addr,
                             state.regs[Reg.EAX], state.regs[Reg.ESI]))
            print(f"{factory().name:18s} {exc.kind} at {exc.addr:#x}  "
                  f"eax={state.regs[Reg.EAX]}  "
                  f"esi={state.regs[Reg.ESI]} (50 iterations summed)")

    kinds = {outcome[1] for outcome in outcomes}
    addrs = {outcome[2] for outcome in outcomes}
    states = {outcome[3:] for outcome in outcomes}
    assert kinds == {"divide-error"} and len(addrs) == 1 \
        and len(states) == 1
    print("\nall configurations delivered the same precise exception: "
          "same faulting EIP, same architected registers.")


if __name__ == "__main__":
    main()
