#!/usr/bin/env python
"""Hardware assists in action: XLTx86, the HAloop, dual-mode decoders.

Demonstrates Section 4's two proposals at the functional level:

* the **XLTx86** backend unit (Table 1) decoding single instructions
  into Fdst with CSR flags;
* the **HAloop** (Fig. 6a) — the VMM's hardware-accelerated BBT inner
  loop — running as *native fusible code* on the micro-op machine and
  depositing a translation into the code cache;
* the **dual-mode decoder** (Figs. 4/5) running raw x86lite code in
  x86-mode while counting its activity.

Run:  python examples/hardware_assist_demo.py
"""

from repro.hwassist import DualModeDecoder, XLTx86Unit
from repro.hwassist.haloop import run_haloop
from repro.isa.fusible import FusibleMachine, decode_stream
from repro.isa.x86lite import assemble
from repro.memory import AddressSpace, load_image

PROGRAM = """
start:
    mov eax, [esi]
    lea ebx, [eax+eax*4]
    add ebx, 7
    shl ebx, 2
    ret
"""

HALOOP_ADDR = 0x1000_0000
CODE_CACHE = 0x2000_0000


def show_xltx86() -> None:
    print("=== XLTx86 Fdst, Fsrc (Table 1) ===")
    unit = XLTx86Unit()
    for text, raw in [
            ("add eax, ebx", b"\x01\xd8"),
            ("mov eax, [ebx+ecx*4+16]", b"\x8b\x44\x8b\x10"),
            ("ret", b"\xc3"),
            ("rep movsd (complex!)", b"\xf3\xa5"),
            ("div ebx   (complex!)", b"\xf7\xf3")]:
        result = unit.translate(raw)
        flags = []
        if result.flag_cmplx:
            flags.append("CMPLX")
        if result.flag_cti:
            flags.append("CTI")
        print(f"  {text:26s} ilen={result.x86_ilen:2d} "
              f"uop_bytes={result.uop_byte_count:2d} "
              f"CSR flags=[{','.join(flags) or '-'}]")
        for uop in result.uops:
            print(f"      {uop}")
    print()


def show_haloop() -> None:
    print("=== HAloop (Fig. 6a) translating a block natively ===")
    image = assemble(PROGRAM)
    memory = AddressSpace()
    entry = load_image(image, memory)
    machine = FusibleMachine(memory)
    run = run_haloop(machine, HALOOP_ADDR, entry, CODE_CACHE)
    print(f"  translated {run.instructions_translated} instructions, "
          f"emitted {run.uop_bytes_emitted} micro-op bytes, stopped on "
          f"{run.stopped_on}")
    print(f"  VMM work: {run.uops_executed} micro-ops "
          f"({run.uops_executed / run.instructions_translated:.1f} per "
          f"instruction; software Delta_BBT is ~105)")
    print("  code cache contents:")
    for uop in decode_stream(run.code_bytes):
        print(f"      {uop}")
    print()


def show_dual_mode() -> None:
    print("=== dual-mode decoder (Figs. 4/5) in x86-mode ===")
    image = assemble(PROGRAM)
    memory = AddressSpace()
    entry = load_image(image, memory)
    decoder = DualModeDecoder()
    pc = entry
    for _ in range(4):
        group = decoder.decode_x86(memory, pc)
        uops = ", ".join(str(u).strip() for u in group.uops)
        print(f"  {group.instr!s:28s} -> {uops}")
        pc = group.instr.next_addr
    print(f"  level-1 decoder handled {decoder.x86_mode_instructions} "
          f"instructions (bypassed & powered off in native mode)")


def main() -> None:
    show_xltx86()
    show_haloop()
    show_dual_mode()


if __name__ == "__main__":
    main()
