#!/usr/bin/env python
"""Warm start: boot the VM from the persistent translation repository.

Runs one seed workload twice under the software VM:

* **cold** — every basic block is BBT-translated on first touch and hot
  code is re-optimized by the SBT, exactly as in a first-ever launch;
  the resulting code caches are then snapshotted to an on-disk
  repository;
* **warm** — a fresh VM (new process, cold caches) re-materializes the
  snapshot at boot: each record is re-fingerprinted against the program
  bytes, re-encoded at its new code-cache address, screened by the
  verifier rule-pack and installed.  The run itself then translates
  nothing.

Then the timing layer shows what that buys at full application scale:
the PERSISTENT_WARM startup curve against the paper's memory-startup
scenario.

Run:  python examples/warm_start.py [workload-name]
"""

import sys
import tempfile

from repro import (
    CoDesignedVM,
    assemble,
    generate_workload,
    simulate_startup,
    vm_soft,
    winstone_app,
)
from repro.persist import TranslationRepository
from repro.timing.scenarios import Scenario
from repro.workloads.programs import PROGRAMS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "quicksort"
    source = PROGRAMS[name]
    image = assemble(source)

    with tempfile.TemporaryDirectory(prefix="repro-warm-") as root:
        repo = TranslationRepository(root)

        print(f"== cold run: {name} under VM.soft")
        cold_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        cold_vm.load(image)
        cold = cold_vm.run()
        print(f"   BBT blocks translated:  {cold.blocks_translated}")
        print(f"   SBT superblocks:        {cold.superblocks_translated}")
        written = cold_vm.save_translations(repo)
        print(f"   records persisted:      {written}")
        print()
        print(repo.stats().format())
        print()

        print(f"== warm run: fresh VM, translations from the repository")
        warm_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        warm_vm.load(image)
        load = warm_vm.warm_start(repo)
        print("   " + load.format().replace("\n", "\n   "))
        warm = warm_vm.run()
        print(f"   BBT blocks translated:  {warm.blocks_translated}"
              f"   (cold run: {cold.blocks_translated})")
        print(f"   SBT superblocks:        "
              f"{warm.superblocks_translated}")
        assert warm.output == cold.output
        assert warm.blocks_translated == 0
        print("   outputs identical, zero warm translations")
        print()

    print("== timing model at application scale (Word, 500M instrs)")
    workload = generate_workload(winstone_app("Word"),
                                 dyn_instrs=500_000_000, seed=0)
    for scenario in (Scenario.MEMORY_STARTUP, Scenario.PERSISTENT_WARM,
                     Scenario.CODE_CACHE_WARM):
        result = simulate_startup(vm_soft(), workload, scenario)
        extra = ""
        if scenario is Scenario.PERSISTENT_WARM:
            extra = (f"  (loaded {result.persist_loaded_instrs} static "
                     f"instrs at boot)")
        print(f"   {scenario.value:16s} "
              f"{result.total_cycles / 1e6:9.1f}M cycles{extra}")


if __name__ == "__main__":
    main()
