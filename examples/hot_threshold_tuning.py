#!/usr/bin/env python
"""Hot-threshold tuning with Eq. 2 and simulation.

Walks through the paper's Section 3.2 reasoning: derive the break-even
execution count N = Δ_SBT / (p − 1) from the measured SBT overhead and
speedup, then validate by sweeping the threshold in the startup
simulator and showing that both extremes lose — too eager wastes cycles
optimizing lukewarm code, too lazy forfeits hotspot gains.

Run:  python examples/hot_threshold_tuning.py
"""

from repro import generate_workload, simulate_startup, vm_soft, \
    winstone_app
from repro.analysis import sbt_breakeven_executions
from repro.analysis.reporting import format_table


def main() -> None:
    print("Eq. 2: N = delta_SBT / (p - 1)\n")
    rows = []
    for delta, p, note in [
            (1200, 1.15, "paper's measured values  -> threshold 8000"),
            (1200, 1.20, "optimistic speedup"),
            (1152, 45.0, "interpreter as stage 1   -> threshold ~25"),
            (2400, 1.15, "2x costlier optimizer"),
    ]:
        rows.append([delta, p, sbt_breakeven_executions(delta, p), note])
    print(format_table(["delta_SBT", "p", "break-even N", "note"], rows))

    print("\nvalidating with the startup simulator "
          "(VM.soft, Word, 500M instrs)...")
    app = winstone_app("Word")
    workload = generate_workload(app, dyn_instrs=500_000_000, seed=0)
    sweep_rows = []
    for threshold in (25, 250, 2000, 8000, 32_000, 128_000):
        config = vm_soft().with_(hot_threshold=threshold)
        result = simulate_startup(config, workload)
        sweep_rows.append([
            threshold,
            result.total_cycles / 1e6,
            result.m_sbt_instrs,
            f"{result.hotspot_coverage:.0%}",
            result.breakdown.get("sbt_translation", 0.0) / 1e6,
        ])
    print(format_table(
        ["threshold", "total Mcycles", "M_SBT", "coverage",
         "SBT overhead (Mcyc)"], sweep_rows))
    best = min(sweep_rows, key=lambda row: row[1])
    print(f"\nbest threshold in sweep: {best[0]} — Eq. 2's derivation "
          f"(8000) balances optimization cost against coverage.")


if __name__ == "__main__":
    main()
