#!/usr/bin/env python
"""Multitasking code-cache pressure — the paper's server scenario.

Section 1.1: "Multitasking server-like systems: for large working-set
workloads, the slow startup process can be further exacerbated by
frequent context switches among resource-competing tasks.  A limited
code cache size can cause hotspot re-translations when a switched-out
task resumes."

This example runs several "tasks" (distinct program phases) round-robin
on the functional VM under progressively smaller code caches, and shows
flushes forcing re-translation; then it quantifies the same effect at
scale with the timing layer's startup scenarios (memory startup vs warm
code cache).

Run:  python examples/multitasking_pressure.py
"""

from repro import generate_workload, simulate_startup, vm_soft, \
    winstone_app
from repro.analysis.reporting import format_table
from repro.isa.x86lite import Reg, X86State, assemble
from repro.memory import AddressSpace, load_image
from repro.memory.loader import DEFAULT_STACK_TOP
from repro.timing import Scenario
from repro.translator import TranslationDirectory
from repro.vmm import VMRuntime

TASKS = 6
SWITCHES = 4

PROGRAM = """
start:
    mov esi, {switches}
switching:
""" + "\n".join(f"""
    mov ecx, 30
task{i}:
    add eax, {i + 1}
    imul ebx, eax, {i + 3}
    xor ebx, eax
    and ebx, 0xFFFF
    dec ecx
    jnz task{i}
""" for i in range(TASKS)) + """
    dec esi
    jnz switching
    mov eax, 0
    mov ebx, 0
    int 0x80
"""


def run_functional(bbt_capacity):
    image = assemble(PROGRAM.format(switches=SWITCHES))
    state = X86State(memory=AddressSpace())
    state.regs[Reg.ESP] = DEFAULT_STACK_TOP
    state.eip = load_image(image, state.memory)
    directory = TranslationDirectory(
        state.memory, bbt_capacity=bbt_capacity,
        sbt_base=0x2000_0000 + max(bbt_capacity, 4096),
        sbt_capacity=1 << 20)
    runtime = VMRuntime(state, hot_threshold=50, directory=directory)
    runtime.run()
    return runtime, directory


def main() -> None:
    print(f"functional VM: {TASKS} tasks x {SWITCHES} context switches, "
          "shrinking BBT code cache\n")
    rows = []
    for capacity in (1 << 20, 4096, 1024, 640):
        runtime, directory = run_functional(capacity)
        rows.append([
            "unlimited" if capacity >= (1 << 20) else f"{capacity}B",
            directory.bbt_cache.flushes,
            runtime.bbt.blocks_translated,
            runtime.bbt.instrs_translated,
        ])
    print(format_table(
        ["code cache", "flushes", "blocks translated",
         "instrs translated"], rows))
    print("\nsmaller cache -> flushes on task switch -> the same blocks "
          "translated over and over\n")

    print("timing layer: resuming a switched-out task (Word, 100M "
          "instrs)\n")
    app = winstone_app("Word")
    workload = generate_workload(app, dyn_instrs=100_000_000, seed=0)
    rows = []
    for scenario, label in [
            (Scenario.MEMORY_STARTUP,
             "translations evicted (re-translate everything)"),
            (Scenario.CODE_CACHE_WARM,
             "translations survived (caches cold only)"),
            (Scenario.STEADY_STATE, "nothing lost")]:
        result = simulate_startup(vm_soft(), workload, scenario)
        rows.append([label, result.total_cycles / 1e6,
                     result.breakdown.get("bbt_translation", 0.0) / 1e6])
    print(format_table(
        ["resume scenario", "total Mcycles", "translation Mcycles"],
        rows))
    print("\nkeeping translations across switches removes the "
          "re-translation tax — and the hardware assists shrink the "
          "tax itself (see examples/startup_comparison.py).")


if __name__ == "__main__":
    main()
