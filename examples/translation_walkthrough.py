#!/usr/bin/env python
"""Translation walkthrough: from x86lite bytes to fused macro-ops.

Shows the full staged-translation pipeline on a hot loop, as the paper's
Fig. 1 describes it:

1. decode the architected basic block;
2. BBT: crack it into micro-ops with profiling prologue and exit stubs;
3. once hot, SBT: superblock formation, dead-flag elimination,
   dependence-aware reordering and macro-op fusion;
4. the installed code-cache bytes, disassembled.

Run:  python examples/translation_walkthrough.py
"""

from repro.isa.fusible import decode_stream
from repro.isa.x86lite import assemble, decode_at
from repro.memory import AddressSpace, load_image
from repro.translator import (
    BasicBlockTranslator,
    SuperblockTranslator,
    TranslationDirectory,
)
from repro.translator.emit import scan_block
from repro.vmm.profiling import EdgeProfile

PROGRAM = """
start:
    mov ecx, 1000
loop:
    mov eax, [esi]          ; load
    lea edi, [eax+eax*2]    ; address arithmetic
    add ebx, edi            ; accumulate
    add esi, 4
    dec ecx
    jnz loop
    ret
"""


def main() -> None:
    image = assemble(PROGRAM)
    memory = AddressSpace()
    load_image(image, memory)
    loop = image.labels["loop"]

    print("=== architected basic block (x86lite) ===")
    for instr in scan_block(memory, loop):
        raw = memory.read(instr.addr, instr.length).hex()
        print(f"  {instr.addr:#x}: {raw:<14s} {instr}")

    directory = TranslationDirectory(memory)
    bbt = BasicBlockTranslator(directory, memory, embed_profiling=True,
                               hot_threshold=8000)
    translation = bbt.translate(loop)
    print(f"\n=== BBT translation ({translation.uop_count} micro-ops, "
          f"{translation.native_len} bytes at "
          f"{translation.native_addr:#x}) ===")
    for uop in translation.uops:
        print(f"  {uop}")

    edges = EdgeProfile()
    exit_addr = scan_block(memory, loop)[-1].next_addr
    edges.record(loop, loop, 990)
    edges.record(loop, exit_addr, 10)
    sbt = SuperblockTranslator(directory, memory)
    optimized = sbt.translate(loop, edges)
    print(f"\n=== SBT superblock ({optimized.uop_count} micro-ops, "
          f"{optimized.fused_pairs} fused pairs, "
          f"{sbt.flags_eliminated} dead flag-writes removed) ===")
    print("('+' marks the head of a fused macro-op pair)")
    for uop in optimized.uops:
        print(f"  {uop}")

    print("\n=== installed code-cache bytes, re-disassembled ===")
    raw = memory.read(optimized.native_addr, optimized.native_len)
    for uop in decode_stream(raw):
        print(f"  {uop}")

    print(f"\nfused micro-op fraction: {optimized.fused_fraction:.1%} "
          f"(paper reports 49% dynamic for Winstone, 57% for SPECint)")


if __name__ == "__main__":
    main()
