"""Setup shim.

The offline environment has no ``wheel`` package, so ``pip install -e .``
falls back to this legacy path (``--no-use-pep517`` works too).  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
