"""Native machine tests: micro-op semantics, control flow, VM exits."""

import pytest

from repro.isa.fusible import (
    ExitEvent,
    FusibleMachine,
    MicroOp,
    NativeMachineError,
    UOp,
    encode_stream,
)
from repro.isa.fusible.registers import R_ZERO
from repro.isa.x86lite.registers import Cond
from repro.memory import AddressSpace

CODE = 0x1000_0000


def run_code(uops, setup=None, max_uops=10_000):
    memory = AddressSpace()
    memory.write(CODE, encode_stream(uops))
    machine = FusibleMachine(memory)
    if setup:
        setup(machine)
    event = machine.run(CODE, max_uops=max_uops)
    return machine, event


class TestAlu:
    def test_addi_and_halt(self):
        machine, event = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=41),
            MicroOp(UOp.ADDI2, rd=1, imm=1),
            MicroOp(UOp.HALT),
        ])
        assert event.kind == "halt"
        assert machine.regs[1] == 42

    def test_lui_ori_builds_constant(self):
        value = 0xDEADBEEF
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=5, imm=value >> 13),
            MicroOp(UOp.ORI, rd=5, rs1=5, imm=value & 0x1FFF),
            MicroOp(UOp.HALT),
        ])
        assert machine.regs[5] == value

    def test_zero_register_is_immutable(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=R_ZERO, rs1=R_ZERO, imm=99),
            MicroOp(UOp.HALT),
        ])
        assert machine.get_reg(R_ZERO) == 0

    def test_flags_only_with_setflags(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=0),
            MicroOp(UOp.HALT),
        ])
        assert not machine.zf  # no .f, no flag update

    def test_setflags_zero(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=0, setflags=True),
            MicroOp(UOp.HALT),
        ])
        assert machine.zf

    def test_sel_conditional_move(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=7),
            MicroOp(UOp.ADDI, rd=2, rs1=R_ZERO, imm=0, setflags=True),
            MicroOp(UOp.SEL, rd=3, rs1=1, cond=Cond.E),
            MicroOp(UOp.SEL, rd=4, rs1=1, cond=Cond.NE),
            MicroOp(UOp.HALT),
        ])
        assert machine.regs[3] == 7   # ZF set -> taken
        assert machine.regs[4] == 0   # not taken

    def test_incf_preserves_carry(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=-1),
            MicroOp(UOp.ADDI2, rd=1, imm=1, setflags=True),  # sets CF
            MicroOp(UOp.INCF, rd=2, rs1=2, setflags=True),
            MicroOp(UOp.HALT),
        ])
        assert machine.cf

    def test_mulh_signed(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=-2),
            MicroOp(UOp.ADDI, rd=2, rs1=R_ZERO, imm=3),
            MicroOp(UOp.MULH, rd=3, rs1=1, rs2=2),
            MicroOp(UOp.MULL, rd=4, rs1=1, rs2=2),
            MicroOp(UOp.HALT),
        ])
        assert machine.regs[4] == 0xFFFFFFFA  # -6 low
        assert machine.regs[3] == 0xFFFFFFFF  # -6 high


class TestMemory:
    def test_store_load_roundtrip(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=0x123),
            MicroOp(UOp.LUI, rd=2, imm=0x500000 >> 13),
            MicroOp(UOp.STW, rd=1, rs1=2, imm=8),
            MicroOp(UOp.LDW, rd=3, rs1=2, imm=8),
            MicroOp(UOp.HALT),
        ])
        assert machine.regs[3] == 0x123

    def test_byte_sign_extension(self):
        def setup(machine):
            machine.memory.write_u8(0x500000, 0x80)
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=2, imm=0x500000 >> 13),
            MicroOp(UOp.LDBS, rd=1, rs1=2, imm=0),
            MicroOp(UOp.LDBU, rd=3, rs1=2, imm=0),
            MicroOp(UOp.HALT),
        ], setup=setup)
        assert machine.regs[1] == 0xFFFFFF80
        assert machine.regs[3] == 0x80

    def test_freg_load_store(self):
        def setup(machine):
            machine.memory.write(0x500000, bytes(range(16)))
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=2, imm=0x500000 >> 13),
            MicroOp(UOp.LDF, rd=1, rs1=2, imm=0),
            MicroOp(UOp.STF, rd=1, rs1=2, imm=16),
            MicroOp(UOp.HALT),
        ], setup=setup)
        assert machine.memory.read(0x500010, 16) == bytes(range(16))


class TestControlFlow:
    def test_bc_loop(self):
        # r1 = 5; loop: r2 += r1; r1 -= 1 (.f); bne loop
        loop_body = [
            MicroOp(UOp.ADD2, rd=2, rs1=1),
            MicroOp(UOp.ADDI2, rd=1, imm=-1, setflags=True),
            MicroOp(UOp.BC, cond=Cond.NE, imm=0),  # patched below
            MicroOp(UOp.HALT),
        ]
        # offset: branch target is start of loop body relative to next uop
        body_len = loop_body[0].length + loop_body[1].length \
            + loop_body[2].length
        loop_body[2] = MicroOp(UOp.BC, cond=Cond.NE, imm=-body_len)
        machine, event = run_code(
            [MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=5)] + loop_body)
        assert event.kind == "halt"
        assert machine.regs[2] == 15  # 5+4+3+2+1

    def test_jmp_skips(self):
        machine, _ = run_code([
            MicroOp(UOp.JMP, imm=4),                        # skip next
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=99),    # skipped
            MicroOp(UOp.HALT),
        ])
        assert machine.regs[1] == 0

    def test_jr_indirect(self):
        # jump over one 4-byte uop via register
        target = CODE + 16  # lui + ori + jr + skipped addi
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=1, imm=target >> 13),
            MicroOp(UOp.ORI, rd=1, rs1=1, imm=target & 0x1FFF),
            MicroOp(UOp.JR, rs1=1),
            MicroOp(UOp.ADDI, rd=2, rs1=R_ZERO, imm=1),  # skipped
            MicroOp(UOp.HALT),
        ])
        assert machine.regs[2] == 0

    def test_vmexit_reports_target(self):
        machine, event = run_code([
            MicroOp(UOp.ADDI, rd=29, rs1=R_ZERO, imm=0x77),
            MicroOp(UOp.VMEXIT, rs1=29),
        ])
        assert event.kind == "vmexit"
        assert event.value == 0x77

    def test_vmcall_reports_service(self):
        machine, event = run_code([MicroOp(UOp.VMCALL, imm=3)])
        assert event.kind == "vmcall"
        assert event.value == 3
        assert event.resume_pc == CODE + 4

    def test_runaway_guard(self):
        memory = AddressSpace()
        memory.write(CODE, encode_stream([MicroOp(UOp.JMP, imm=-4)]))
        machine = FusibleMachine(memory)
        with pytest.raises(NativeMachineError):
            machine.run(CODE, max_uops=50)

    def test_bad_code_raises(self):
        memory = AddressSpace()
        machine = FusibleMachine(memory)
        memory.write(CODE, b"\xff\x7f\xff\xff")  # invalid long opcode
        with pytest.raises(NativeMachineError):
            machine.run(CODE)


class TestSpecial:
    def test_rdflg_wrflg_roundtrip(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=0, setflags=True),
            MicroOp(UOp.RDFLG, rd=5),
            MicroOp(UOp.ADDI, rd=2, rs1=R_ZERO, imm=1, setflags=True),
            MicroOp(UOp.WRFLG, rs1=5),
            MicroOp(UOp.HALT),
        ])
        assert machine.zf  # restored from the packed snapshot

    def test_xltx86_simple_instruction(self):
        from repro.isa.fusible.encoding import decode_stream

        def setup(machine):
            machine.memory.write(0x500000,
                                 b"\x01\xd8" + bytes(14))  # add eax, ebx
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=2, imm=0x500000 >> 13),
            MicroOp(UOp.LDF, rd=1, rs1=2, imm=0),
            MicroOp(UOp.XLTX86, rd=3, rs1=1),
            MicroOp(UOp.LDCSR, rd=4),
            MicroOp(UOp.HALT),
        ], setup=setup)
        assert machine.csr_ilen == 2
        assert not machine.csr_cmplx and not machine.csr_cti
        uops = decode_stream(bytes(machine.fregs[3][:machine.csr_uop_bytes]))
        assert [uop.op for uop in uops] == [UOp.ADD2]
        # CSR packing: ilen in bits 0-4, byte count in bits 5-9
        assert machine.regs[4] & 0x1F == 2
        assert (machine.regs[4] >> 5) & 0x1F == 2

    def test_xltx86_complex_sets_flag(self):
        def setup(machine):
            machine.memory.write(0x500000, b"\xf7\xf3" + bytes(14))  # div
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=2, imm=0x500000 >> 13),
            MicroOp(UOp.LDF, rd=1, rs1=2, imm=0),
            MicroOp(UOp.XLTX86, rd=3, rs1=1),
            MicroOp(UOp.HALT),
        ], setup=setup)
        assert machine.csr_cmplx

    def test_jcsrc_branches_on_complex(self):
        def setup(machine):
            machine.memory.write(0x500000, b"\xcd\x80" + bytes(14))  # int
        machine, _ = run_code([
            MicroOp(UOp.LUI, rd=2, imm=0x500000 >> 13),
            MicroOp(UOp.LDF, rd=1, rs1=2, imm=0),
            MicroOp(UOp.XLTX86, rd=3, rs1=1),
            MicroOp(UOp.JCSRC, imm=4),
            MicroOp(UOp.ADDI, rd=5, rs1=R_ZERO, imm=1),  # skipped
            MicroOp(UOp.HALT),
        ], setup=setup)
        assert machine.regs[5] == 0

    def test_execute_uops_rejects_branches(self):
        machine = FusibleMachine(AddressSpace())
        with pytest.raises(NativeMachineError):
            machine.execute_uops([MicroOp(UOp.JMP, imm=0)])

    def test_stats_counting(self):
        machine, _ = run_code([
            MicroOp(UOp.ADDI, rd=1, rs1=R_ZERO, imm=1, fused=True),
            MicroOp(UOp.ADD2, rd=2, rs1=1),
            MicroOp(UOp.HALT),
        ])
        assert machine.uops_executed == 3
        assert machine.fused_pairs_seen == 1
        assert machine.uop_bytes_fetched == 4 + 2 + 4
