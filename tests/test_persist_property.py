"""Property test: persisted translations round-trip losslessly.

For random hot-loop programs (shared ``loop_programs`` strategy): run
cold, serialize every translation through real JSON, warm-start a fresh
VM from the deserialized records, and check

* the re-materialized streams are semantically identical to the
  originals (equal micro-op by micro-op, modulo the re-bound profiling
  counter address in the BBT prologue);
* every record passes the verifier at install (the autouse sanitizer
  fixture raises on any violation);
* the warm run translates nothing and produces identical output.
"""

import json

from hypothesis import given, settings

from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import R_SCRATCH0
from repro.isa.x86lite import assemble
from repro.persist import WarmStartLoader, capture_translations
from tests.strategies import loop_programs

HOT_THRESHOLD = 4  # low: random loops are short but must still promote


def _boot(source: str) -> CoDesignedVM:
    vm = CoDesignedVM(vm_soft(), hot_threshold=HOT_THRESHOLD)
    vm.load(assemble(source))
    return vm


def _canonical(uops, counter_addr):
    """The stream with the counter-address imms masked out.

    The BBT profiling prologue materializes the countdown counter's
    address via LUI/ORI into R_SCRATCH0; the loader re-binds it to a
    fresh allocation, so those two imms are the only legitimate
    difference between a persisted stream and its re-materialization.
    """
    masked = []
    for index, uop in enumerate(uops):
        if (counter_addr is not None and index in (1, 2)
                and uop.rd == R_SCRATCH0
                and uop.op in (UOp.LUI, UOp.ORI)):
            masked.append((uop.op, uop.rd, uop.rs1, uop.rs2, "counter",
                           uop.cond, uop.fused, uop.setflags,
                           uop.x86_addr))
        else:
            masked.append((uop.op, uop.rd, uop.rs1, uop.rs2, uop.imm,
                           uop.cond, uop.fused, uop.setflags,
                           uop.x86_addr))
    return masked


@settings(max_examples=25, deadline=None)
@given(source=loop_programs())
def test_serialize_roundtrip_is_semantically_identical(source):
    cold_vm = _boot(source)
    cold = cold_vm.run()
    records = capture_translations(cold_vm.runtime.directory,
                                   cold_vm.state.memory)
    assert records  # every loop program translates something
    originals = {
        (t.kind, t.entry): t
        for cache in (cold_vm.runtime.directory.bbt_cache,
                      cold_vm.runtime.directory.sbt_cache)
        for t in cache.translations}

    # through real JSON: what goes to disk is what comes back
    records = json.loads(json.dumps(records))

    warm_vm = _boot(source)
    load = WarmStartLoader(warm_vm.runtime).load_records(records)
    assert load.loaded == load.attempted == len(records)
    assert load.dropped == 0

    for cache in (warm_vm.runtime.directory.bbt_cache,
                  warm_vm.runtime.directory.sbt_cache):
        for translation in cache.translations:
            original = originals[(translation.kind, translation.entry)]
            assert _canonical(translation.uops,
                              translation.counter_addr) == \
                _canonical(original.uops, original.counter_addr)
            assert translation.instr_count == original.instr_count
            assert translation.fused_pairs == original.fused_pairs
            assert len(translation.exits) == len(original.exits)

    warm = warm_vm.run()
    assert warm.blocks_translated == 0
    assert warm.superblocks_translated == 0
    assert warm.output == cold.output
    assert warm.exit_code == cold.exit_code
