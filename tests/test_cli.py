"""CLI tests (python -m repro)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text("""
start:
    mov ecx, 20
loop:
    add esi, ecx
    dec ecx
    jnz loop
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
""")
    return str(path)


class TestRunCommand:
    def test_runs_program(self, program_file, capsys):
        code = main(["run", program_file, "--hot-threshold", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "210" in out          # sum 1..20
        assert "VM.soft" in out

    def test_config_alias(self, program_file, capsys):
        main(["run", program_file, "--config", "fe"])
        assert "VM.fe" in capsys.readouterr().out

    def test_full_config_name(self, program_file, capsys):
        main(["run", program_file, "--config", "Ref: superscalar"])
        assert "Ref" in capsys.readouterr().out

    def test_unknown_config_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", program_file, "--config", "bogus"])


class TestAnalysisCommands:
    def test_startup(self, capsys):
        code = main(["startup", "--app", "Winzip",
                     "--instrs", "20000000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "breakeven vs reference" in out
        assert "VM.be" in out

    def test_profile(self, capsys):
        code = main(["profile", "--instrs", "10000000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frequency profile" in out
        assert "10,000+" in out

    def test_configs(self, capsys):
        code = main(["configs"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("VM.soft", "VM.be", "VM.fe"):
            assert name in out

    def test_breakeven_small(self, capsys):
        code = main(["breakeven", "--instrs", "5000000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Project" in out and "Winzip" in out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestObservabilityCommands:
    def test_trace_writes_valid_perfetto_json(self, tmp_path, capsys):
        out_file = str(tmp_path / "run.json")
        code = main(["trace", "checksum", "--out", out_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "perfetto" in out
        with open(out_file) as handle:
            doc = json.load(handle)
        from repro.obs.export import validate_trace
        assert validate_trace(doc) == []
        assert doc["metadata"]["workload"] == "checksum"

    def test_trace_stdout_is_json(self, capsys):
        code = main(["trace", "checksum"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["conserved"] is True

    def test_profile_workload_prints_attribution(self, capsys):
        code = main(["profile", "checksum", "--top", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycle attribution" in out
        assert "bbt_translation" in out
        assert "BBT translation" in out

    def test_trace_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "no-such-workload"])

    def test_log_level_flag(self, capsys):
        code = main(["--log-level", "debug", "configs"])
        assert code == 0
        with pytest.raises(SystemExit):
            main(["--log-level", "shouting", "configs"])


class TestVerifyCommand:
    def test_single_workload_verifies_clean(self, capsys):
        code = main(["verify", "--workload", "fibonacci"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fibonacci" in out
        assert "0 violation(s)" in out

    def test_program_file_verifies_clean(self, program_file, capsys):
        code = main(["verify", "--program", program_file,
                     "--hot-threshold", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation(s)" in out

    def test_json_report_shape(self, capsys):
        code = main(["verify", "--workload", "sieve", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["translations_checked"] > 0
        assert "sieve" in payload["workloads"]
        assert payload["rules_run"]  # the rule-pack actually ran

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--workload", "bogus"])


class TestCacheCommand:
    def test_save_then_load_skips_translation(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code = main(["cache", "save", "fibonacci",
                     "--cache-dir", cache_dir, "--hot-threshold", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "saved" in out and "translation record(s)" in out

        code = main(["cache", "load", "fibonacci",
                     "--cache-dir", cache_dir, "--hot-threshold", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warm start:" in out
        assert "BBT blocks:           0" in out
        assert "warm-start loads" in out

    def test_save_accepts_program_file(self, program_file, tmp_path,
                                       capsys):
        cache_dir = str(tmp_path / "cache")
        code = main(["cache", "save", program_file,
                     "--cache-dir", cache_dir, "--hot-threshold", "5"])
        assert code == 0
        code = main(["cache", "load", program_file,
                     "--cache-dir", cache_dir, "--hot-threshold", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "210" in out  # program output survives the warm start

    def test_stats_and_gc(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["cache", "save", "checksum", "--cache-dir", cache_dir,
              "--hot-threshold", "50"])
        capsys.readouterr()
        code = main(["cache", "stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "objects:" in out and "manifest" in out

        code = main(["cache", "gc", "--cache-dir", cache_dir,
                     "--budget", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "evicted" in out
        code = main(["cache", "stats", "--cache-dir", cache_dir])
        assert "objects:    0" in capsys.readouterr().out

    def test_load_without_program_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "load",
                  "--cache-dir", str(tmp_path / "cache")])

    def test_unknown_program_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "save", "no-such-program",
                  "--cache-dir", str(tmp_path / "cache")])


class TestServeAndSharedCache:
    def test_serve_runs_and_reports(self, tmp_path, capsys):
        code = main(["serve", "--cache-dir", str(tmp_path / "repo"),
                     "--max-seconds", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving translation cache" in out
        assert "served 0 request(s)" in out

    def test_serve_rejects_socket_plus_port(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--socket", str(tmp_path / "s.sock"),
                  "--port", "1234"])

    def test_push_pull_through_live_server(self, tmp_path, capsys):
        from repro.cacheserver import CacheServer
        with CacheServer(tmp_path / "served") as server:
            code = main(["cache", "push", "fibonacci",
                         "--server", server.address,
                         "--cache-dir", str(tmp_path / "local"),
                         "--hot-threshold", "50"])
            out = capsys.readouterr().out
            assert code == 0
            assert f"to {server.address}" in out
            assert server.repository.stats().objects > 0

            code = main(["cache", "pull", "fibonacci",
                         "--server", server.address,
                         "--cache-dir", str(tmp_path / "local2"),
                         "--hot-threshold", "50"])
            out = capsys.readouterr().out
        assert code == 0
        assert "warm start:" in out
        assert "BBT blocks:           0" in out

    def test_push_pull_require_server(self, tmp_path):
        for action in ("push", "pull"):
            with pytest.raises(SystemExit, match="--server"):
                main(["cache", action, "fibonacci",
                      "--cache-dir", str(tmp_path / "cache")])

    def test_pull_degrades_to_local_with_dead_server(self, tmp_path,
                                                     capsys):
        cache_dir = str(tmp_path / "cache")
        main(["cache", "save", "fibonacci", "--cache-dir", cache_dir,
              "--hot-threshold", "50"])
        capsys.readouterr()
        code = main(["cache", "pull", "fibonacci",
                     "--server", f"unix:{tmp_path / 'no.sock'}",
                     "--cache-dir", cache_dir,
                     "--timeout", "0.5", "--retries", "1",
                     "--hot-threshold", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shared cache:" in out          # degradation reported
        assert "fallback(s)" in out
        assert "BBT blocks:           0" in out   # local store warm
