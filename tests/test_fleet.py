"""Fleet harness: grids, engine determinism, reports, export, CLI.

The fleet engine's acceptance bar is stricter than "the herd boots":
reports must be byte-identical across runs at the same seed (under
real thread concurrency), every instance must match the fault-free
architected baseline, and the shared-image amortization curve must
show later boot ranks starting cheaper than rank 0.
"""

import json

import pytest

from repro.fleet import (
    AXIS_ORDER,
    BOOT_POLICIES,
    IMAGE_POLICIES,
    SCHEMA,
    FleetEngine,
    FleetReport,
    FleetScenario,
    amortization_gain,
    build_report,
    expand_grid,
    export_fleet_trace,
    perturb_source,
    run_sweep,
    serialize_report,
    steady_state_cycle,
    validate_report,
)
from repro.fleet.engine import resolve_config
from repro.isa.x86lite import assemble
from repro.obs.export import validate_trace
from repro.persist import image_fingerprint
from repro.workloads.programs import PROGRAMS


def boot(n=3, **overrides):
    """Boot one small fleet and return its FleetResult."""
    params = dict(n=n, workload="fibonacci", workers=n)
    params.update(overrides)
    return FleetEngine().run(FleetScenario(**params))


@pytest.fixture(scope="module")
def shared_fleets():
    """One cold and one staged fleet, reused by the report tests."""
    return {
        "all_at_once": boot(boot_policy="all_at_once"),
        "one_then_others": boot(boot_policy="one_then_others"),
    }


class TestGrid:
    def test_expansion_covers_the_product(self):
        scenarios = expand_grid({"n": [2, 3],
                                 "boot_policy": BOOT_POLICIES,
                                 "image_policy": IMAGE_POLICIES})
        assert len(scenarios) == 2 * 2 * 2
        assert len(set(s.label() for s in scenarios)) == len(scenarios)

    def test_expansion_order_is_axis_order_not_mapping_order(self):
        # mapping lists image_policy first; n must still vary outermost
        scenarios = expand_grid({"image_policy": IMAGE_POLICIES,
                                 "n": [2, 3]})
        assert [(s.n, s.image_policy) for s in scenarios] == [
            (2, "one"), (2, "one_per_vm"),
            (3, "one"), (3, "one_per_vm")]
        assert AXIS_ORDER.index("n") < AXIS_ORDER.index("image_policy")

    def test_fixed_values_apply_to_every_scenario(self):
        scenarios = expand_grid({"n": [2, 3]}, workers=2,
                                hot_threshold=5)
        assert all(s.workers == 2 and s.hot_threshold == 5
                   for s in scenarios)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown grid axis"):
            expand_grid({"boot_polcy": BOOT_POLICIES})

    def test_unknown_fixed_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            expand_grid({"n": [2]}, wrokers=4)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid({"n": []})

    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError, match="boot policy"):
            FleetScenario(boot_policy="sometimes")
        with pytest.raises(ValueError, match="image policy"):
            FleetScenario(image_policy="several")
        with pytest.raises(ValueError, match="fleet size"):
            FleetScenario(n=0)
        with pytest.raises(ValueError, match="pool"):
            FleetScenario(pool="fork")

    def test_faults_serialize_the_pool(self):
        assert FleetScenario(n=8, workers=8).effective_workers == 8
        assert FleetScenario(n=4, workers=8).effective_workers == 4
        assert FleetScenario(n=8, workers=8,
                             faults=("torn-frame",)) \
            .effective_workers == 1

    def test_canonical_dict_is_axes_only(self):
        doc = FleetScenario(workers=3, timeout=1.0).to_dict()
        # non-cluster (1x1) scenarios keep their exact pre-cluster
        # keys so existing reports stay byte-identical
        assert sorted(doc) == sorted(
            axis for axis in AXIS_ORDER
            if axis not in ("shards", "replicas"))
        assert "workers" not in doc and "timeout" not in doc
        clustered = FleetScenario(shards=2, replicas=2).to_dict()
        assert sorted(clustered) == sorted(AXIS_ORDER)


class TestPerturbSource:
    def test_ranks_get_distinct_fingerprints(self):
        gold = PROGRAMS["fibonacci"]
        fps = {image_fingerprint(assemble(
            perturb_source(gold, rank, seed=0))) for rank in range(8)}
        assert len(fps) == 8
        assert image_fingerprint(assemble(gold)) not in fps

    def test_seed_changes_the_fingerprints(self):
        gold = PROGRAMS["fibonacci"]
        one = image_fingerprint(assemble(perturb_source(gold, 1, 0)))
        two = image_fingerprint(assemble(perturb_source(gold, 1, 9)))
        assert one != two

    def test_padding_is_architecturally_invisible(self):
        from repro.core.vm import CoDesignedVM
        gold = PROGRAMS["fibonacci"]
        config = resolve_config("soft")
        outcomes = []
        for source in (gold, perturb_source(gold, 3, seed=7)):
            vm = CoDesignedVM(config, hot_threshold=20)
            vm.load(assemble(source))
            vm.run()
            state = vm.state
            outcomes.append((state.exit_code, list(state.output),
                             list(state.regs),
                             (state.cf, state.zf, state.sf, state.of)))
        assert outcomes[0] == outcomes[1]


class TestSteadyState:
    def test_translation_slices_extend_steady_state(self):
        events = [
            {"name": "translate.bbt", "ts": 10.0, "dur": 5.0},
            {"name": "run.interp", "ts": 100.0, "dur": 900.0},
            {"name": "chain.link", "ts": 40.0},
        ]
        assert steady_state_cycle(events) == 40.0

    def test_no_transient_means_steady_from_zero(self):
        assert steady_state_cycle(
            [{"name": "run.interp", "ts": 0.0, "dur": 100.0}]) == 0.0


class TestFleetEngine:
    def test_all_at_once_shared_image(self, shared_fleets):
        result = shared_fleets["all_at_once"]
        assert result.arch_ok
        assert len(result.instances) == 3
        # the whole herd boots against an empty store: every rank
        # translates cold and pays the identical simulated transient
        assert all(i.records_loaded == 0 for i in result.instances)
        assert len({i.tts_cycles for i in result.instances}) == 1
        assert result.instances[0].tts_cycles > 0
        # engine publishes in rank order: rank 0 writes every object,
        # the rest dedup completely
        assert result.instances[0].push_written > 0
        for later in result.instances[1:]:
            assert later.push_written == 0
            assert later.push_deduped > 0

    def test_one_then_others_amortizes(self, shared_fleets):
        result = shared_fleets["one_then_others"]
        assert result.arch_ok
        rank0 = result.instances[0]
        assert rank0.records_loaded == 0
        assert rank0.push_written > 0
        for later in result.instances[1:]:
            # the herd pulls rank 0's translations: no cold work
            assert later.records_loaded > 0
            assert later.blocks_translated == 0
            assert later.tts_cycles < rank0.tts_cycles

    def test_one_per_vm_defeats_sharing(self):
        result = boot(boot_policy="one_then_others",
                      image_policy="one_per_vm")
        assert result.arch_ok
        fps = {i.image_fp for i in result.instances}
        assert len(fps) == len(result.instances)
        # distinct images: nobody warm-starts from rank 0's manifest
        assert all(i.records_loaded == 0 for i in result.instances)
        assert all(i.tts_cycles == result.instances[0].tts_cycles
                   for i in result.instances)

    def test_warm_repository_short_circuits_the_transient(
            self, shared_fleets):
        result = boot(warm=True)
        assert result.arch_ok
        cold = shared_fleets["all_at_once"]
        for instance in result.instances:
            assert instance.records_loaded > 0
            assert instance.blocks_translated == 0
            assert instance.tts_cycles < cold.instances[0].tts_cycles

    def test_reports_are_byte_identical_across_runs(self):
        scenario = FleetScenario(n=3, workers=3, seed=11)
        first = serialize_report(
            build_report([FleetEngine().run(scenario)]))
        second = serialize_report(
            build_report([FleetEngine().run(scenario)]))
        assert first == second

    def test_network_fault_cocktail_keeps_architected_state(self):
        result = boot(n=2, faults=("conn-refused", "torn-frame"),
                      seed=3)
        assert result.arch_ok
        assert result.scenario.effective_workers == 1
        report = build_report([result])
        assert validate_report(report) == []

    def test_disk_fault_on_warm_store_degrades_to_cold(self):
        result = boot(n=2, warm=True, faults=("corrupt-manifest",),
                      seed=1)
        assert result.arch_ok

    def test_process_pool_matches_thread_pool(self, shared_fleets):
        threaded = shared_fleets["all_at_once"]
        spawned = boot(pool="process")
        assert serialize_report(build_report([spawned])) == \
            serialize_report(build_report([threaded]))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            boot(workload="doom")

    def test_server_load_is_deterministic(self, shared_fleets):
        server = shared_fleets["all_at_once"].server
        n = len(shared_fleets["all_at_once"].instances)
        # n instance clients + the engine's push client
        assert server["connections"] == n + 1
        assert server["requests"]["pull"] == n
        assert server["requests"]["push"] == n
        assert server["errors"] == 0


class TestFleetReport:
    def test_report_validates(self, shared_fleets):
        report = build_report(list(shared_fleets.values()))
        assert validate_report(report) == []
        assert report["schema"] == SCHEMA
        assert len(report["fleets"]) == 2

    def test_percentiles_are_monotone(self, shared_fleets):
        entry = build_report(
            [shared_fleets["one_then_others"]])["fleets"][0]
        tts = entry["tts"]
        assert tts["count"] == 3
        assert tts["p50"] <= tts["p95"] <= tts["p99"]
        assert tts["min"] <= tts["mean"] <= tts["max"]

    def test_amortization_gain_exceeds_one_when_shared(
            self, shared_fleets):
        staged = build_report(
            [shared_fleets["one_then_others"]])["fleets"][0]
        flat = build_report(
            [shared_fleets["all_at_once"]])["fleets"][0]
        assert amortization_gain(staged) > 1.0
        assert amortization_gain(flat) == pytest.approx(1.0)

    def test_degradation_summary_all_zero_when_healthy(
            self, shared_fleets):
        entry = build_report(
            [shared_fleets["all_at_once"]])["fleets"][0]
        assert all(count == 0 for count in entry["degraded"].values())

    def test_canonical_report_has_no_wall_clock(self, shared_fleets):
        text = serialize_report(
            build_report(list(shared_fleets.values())))
        assert "latency" not in text
        assert "wall_ms" not in text
        # non-canonical keeps both, for humans
        loose = build_report(list(shared_fleets.values()),
                             canonical=False)
        assert "latency" in loose["fleets"][0]["server"]

    def test_format_mentions_the_headline_numbers(self, shared_fleets):
        report = FleetReport.from_results(
            [shared_fleets["one_then_others"]])
        text = report.format()
        assert "steady-state cycles" in text
        assert "amortization gain" in text
        assert "arch_ok: True" in text

    def test_write_and_rehydrate(self, shared_fleets, tmp_path):
        report = FleetReport.from_results(
            [shared_fleets["all_at_once"]])
        path = tmp_path / "fleet.json"
        report.write(path)
        doc = json.loads(path.read_text())
        assert validate_report(doc) == []
        assert FleetReport(doc).format() == report.format()

    def test_validation_catches_damage(self, shared_fleets):
        report = build_report([shared_fleets["all_at_once"]])
        report = json.loads(json.dumps(report))   # deep copy
        report["schema"] = "repro.fleet/v0"
        report["fleets"][0]["amortization"].pop()
        report["fleets"][0]["arch_ok"] = False
        problems = validate_report(report)
        assert any("schema" in p for p in problems)
        assert any("amortization" in p for p in problems)
        assert any("architected divergence" in p for p in problems)


class TestFleetExport:
    def test_export_passes_trace_validation(self, shared_fleets):
        doc = export_fleet_trace(shared_fleets["one_then_others"])
        assert validate_trace(doc) == []
        assert doc["metadata"]["clock"] == "simulated-cycles"

    def test_fleet_lane_summarizes_every_rank(self, shared_fleets):
        result = shared_fleets["one_then_others"]
        doc = export_fleet_trace(result)
        lane = [e for e in doc["traceEvents"] if e["pid"] == 0]
        boots = [e for e in lane if e["name"] == "fleet.boot"]
        steadies = [e for e in lane if e["name"] == "fleet.steady"]
        assert len(boots) == len(steadies) == len(result.instances)
        by_rank = {e["args"]["rank"]: e["dur"] for e in boots}
        assert by_rank[1] < by_rank[0]
        # every instance got its own process lane
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == set(range(len(result.instances) + 1))


class TestFleetCLI:
    def test_run_then_report_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fleet.json"
        code = main(["fleet", "run", "--n", "2", "--workers", "2",
                     "--out", str(out)])
        assert code == 0
        assert validate_report(json.loads(out.read_text())) == []
        text = capsys.readouterr().out
        assert "steady-state cycles" in text
        assert str(out) in text

        assert main(["fleet", "report", str(out)]) == 0
        assert "arch_ok: True" in capsys.readouterr().out

    def test_sweep_writes_trace_and_report(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "sweep.json"
        trace = tmp_path / "fleet.trace.json"
        code = main(["fleet", "sweep", "--n", "2", "--workers", "2",
                     "--boot-policy", "one_then_others",
                     "--image-policy", "one",
                     "--out", str(out), "--trace-out", str(trace)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_report(doc) == []
        assert len(doc["fleets"]) == 1
        assert validate_trace(json.loads(trace.read_text())) == []

    def test_bad_axis_value_is_a_clean_exit(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="boot policy"):
            main(["fleet", "run", "--boot-policy", "sometimes"])

    def test_report_requires_a_file(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="report"):
            main(["fleet", "report"])
