"""Property: assembled programs disassemble back to themselves.

Random instruction sequences are encoded via the Instruction API,
disassembled to text, re-assembled through the text assembler, and the
resulting bytes compared — closing the loop between all three front
ends (builder API, assembler, disassembler/decoder).
"""

from hypothesis import given, settings

from repro.isa.x86lite import decode, encode
from repro.isa.x86lite.disasm import disassemble_range
from repro.isa.x86lite.assembler import assemble
from repro.memory.loader import DEFAULT_TEXT_BASE
from tests.strategies import instructions


def _as_text(instr) -> str:
    """Render an instruction the assembler can re-read."""
    text = str(instr)
    # the assembler writes sized memory operands with keywords
    return text


@given(instr=instructions)
@settings(max_examples=250, deadline=None)
def test_encode_disassemble_reassemble(instr):
    encoded = encode(instr, addr=DEFAULT_TEXT_BASE)
    lines = disassemble_range(encoded, base=DEFAULT_TEXT_BASE)
    assert len(lines) == 1
    text = _as_text(lines[0].instr)
    # MOVZX/MOVSX need their size keyword to re-assemble
    decoded = lines[0].instr
    if decoded.op.value in ("movzx", "movsx"):
        size = {8: "byte", 16: "word"}[decoded.operands[1].size]
        dst, mem = decoded.operands
        text = f"{decoded.op.value} {dst}, {size} {mem}"
    try:
        reassembled = assemble(text).text.data
    except Exception as exc:  # pragma: no cover - should never trigger
        raise AssertionError(f"assembler rejected its own "
                             f"disassembly {text!r}: {exc}")
    redecoded = decode(reassembled, addr=DEFAULT_TEXT_BASE)
    original = decode(encoded, addr=DEFAULT_TEXT_BASE)
    assert str(redecoded) == str(original)
