"""Zero-violation regression: every seed program verifies clean.

Runs each workload with the verifier armed three ways — the config-level
debug hook (``verify_translations=True``), an explicit collecting
sanitizer sweep, and a post-run :func:`verify_directory` pass over the
steady-state caches — and pins that the emitters produce no invariant
violations anywhere.
"""

from dataclasses import replace

import pytest

from repro.core import CoDesignedVM, interp_sbt, vm_be, vm_soft
from repro.isa.x86lite import assemble
from repro.verify import sanitizer, verify_directory
from repro.workloads.programs import EXPECTED_OUTPUT, PROGRAMS


def run_verified(factory, name, hot_threshold=12):
    config = replace(factory(), verify_translations=True)
    vm = CoDesignedVM(config, hot_threshold=hot_threshold)
    vm.load(assemble(PROGRAMS[name]))
    report = vm.run()
    return vm, report


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_workload_installs_verified_translations(program_name):
    # the debug hook raises TranslationVerifyError on the first bad
    # install, so simply finishing means every translation was clean
    vm, report = run_verified(vm_soft, program_name)
    assert report.exit_code == 0
    if program_name in EXPECTED_OUTPUT:
        assert report.output == EXPECTED_OUTPUT[program_name]
    assert vm.runtime.directory.verify_on_install


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_steady_state_caches_verify_clean(program_name):
    vm, _report = run_verified(vm_soft, program_name, hot_threshold=6)
    swept = verify_directory(vm.runtime.directory)
    assert swept.ok, swept.format()
    assert swept.translations_checked > 0
    assert swept.uops_checked > 0


def test_sbt_superblocks_verify_clean():
    vm, report = run_verified(vm_soft, "sieve", hot_threshold=6)
    assert report.superblocks_translated >= 1
    swept = verify_directory(vm.runtime.directory)
    assert swept.ok, swept.format()
    assert any(t.fused_pairs for t in
               vm.runtime.directory.sbt_cache.translations)


@pytest.mark.parametrize("factory", [vm_be, interp_sbt],
                         ids=lambda f: f.__name__)
def test_other_translation_paths_verify_clean(factory):
    # vm_be runs the XLTx86 hardware-assist crack path; interp_sbt skips
    # BBT entirely and feeds the SBT from interpreter profiles
    vm, report = run_verified(factory, "fibonacci", hot_threshold=6)
    assert report.exit_code == 0
    swept = verify_directory(vm.runtime.directory)
    assert swept.ok, swept.format()


def test_collecting_sanitizer_observes_installs():
    config = vm_soft()
    vm = CoDesignedVM(config, hot_threshold=6)
    vm.load(assemble(PROGRAMS["fibonacci"]))
    with sanitizer.collecting() as collected:
        vm.run()
    assert collected.ok, collected.format()
    assert collected.translations_checked > 0
    assert sanitizer.mode() == "raise"  # the autouse fixture's mode
