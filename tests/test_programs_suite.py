"""The real-program library runs correctly under every configuration."""

import pytest

from repro.core import (
    CoDesignedVM,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.isa.x86lite import assemble
from repro.workloads.programs import EXPECTED_OUTPUT, PROGRAMS

CONFIGS = [ref_superscalar, vm_soft, vm_be, vm_fe, interp_sbt]


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("factory", CONFIGS, ids=lambda f: f.__name__)
def test_program_under_config(program_name, factory):
    vm = CoDesignedVM(factory(), hot_threshold=12)
    vm.load(assemble(PROGRAMS[program_name]))
    report = vm.run()
    assert report.exit_code == 0
    if program_name in EXPECTED_OUTPUT:
        assert report.output == EXPECTED_OUTPUT[program_name]


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
def test_program_outputs_identical_across_configs(program_name):
    outputs = []
    for factory in CONFIGS:
        vm = CoDesignedVM(factory(), hot_threshold=6)
        vm.load(assemble(PROGRAMS[program_name]))
        report = vm.run()
        outputs.append((tuple(report.output), report.exit_code,
                        tuple(vm.state.regs)))
    assert all(output == outputs[0] for output in outputs[1:])


def test_hot_programs_reach_sbt():
    for name in ("fibonacci", "sieve", "matmul"):
        vm = CoDesignedVM(vm_soft(), hot_threshold=6)
        vm.load(assemble(PROGRAMS[name]))
        report = vm.run()
        assert report.superblocks_translated >= 1, name
        assert report.fused_pairs_executed > 0, name


def test_recursive_program_exercises_indirect_exits():
    vm = CoDesignedVM(vm_soft(), hot_threshold=6)
    vm.load(assemble(PROGRAMS["fib_recursive"]))
    vm.run()
    stats = vm.runtime.stats()
    assert stats["vm_exits"] > 10  # RET-driven indirect dispatch


def test_checksum_uses_interp_for_rep_strings():
    vm = CoDesignedVM(vm_soft(), hot_threshold=100)
    vm.load(assemble(PROGRAMS["checksum"]))
    report = vm.run()
    # REP MOVSD / REP STOSD are complex -> precise software emulation
    assert report.interp_one_calls >= 2
