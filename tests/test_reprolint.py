"""reprolint: one violating and one clean snippet per rule, plus the
suppression/baseline machinery and the live-tree gate.

Corpus snippets are linted in-memory through
:meth:`repro.lint.LintEngine.lint_sources` with *injected* registries
(event taxonomy, fault sites), so these tests stay hermetic while the
real CLI resolves the same registries from the live modules.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintEngine, all_rule_ids
from repro.lint.core import ERROR, WARNING, RULES, Rule, load_baseline, \
    register_rule, write_baseline
from repro.lint.index import ModuleInfo, fault_site_drift

REPO = Path(__file__).resolve().parents[1]


def lint_one(path, source, rule, **registries):
    """Run a single rule over one in-memory module."""
    engine = LintEngine(rules=[rule], **registries)
    return engine.lint_sources({path: source})


def hits(report, rule_id):
    return [v for v in report.violations if v.rule_id == rule_id]


# -- framework ----------------------------------------------------------------


def test_rule_catalog_is_complete():
    expected = {"DET001", "DET002", "DET003", "CONC001", "CONC002",
                "FLT001", "OBS001", "OBS002", "OBS003", "EXC001",
                "F401", "E501", "W291", "W191"}
    assert expected <= set(all_rule_ids())


def test_register_rule_rejects_duplicates():
    with pytest.raises(ValueError):
        @register_rule
        class Duplicate(Rule):            # noqa: F811 - intentional
            rule_id = "DET001"
    assert RULES["DET001"].__name__ != "Duplicate"


def test_engine_rejects_unknown_rules():
    with pytest.raises(ValueError):
        LintEngine(rules=["NOPE999"])


def test_syntax_error_reports_e999():
    report = LintEngine().lint_sources(
        {"src/repro/vmm/broken.py": "def broken(:\n"})
    assert [v.rule_id for v in report.violations] == ["E999"]
    assert not report.ok


def test_severity_split():
    assert RULES["DET001"].severity == ERROR
    assert RULES["E501"].severity == WARNING


# -- DET001-003: determinism --------------------------------------------------


def test_det001_flags_wall_clock_in_simulated_code():
    source = "import time\n\n\ndef step():\n    return time.time()\n"
    report = lint_one("src/repro/vmm/sim.py", source, "DET001")
    assert len(hits(report, "DET001")) == 1


def test_det001_sees_through_from_import_aliases():
    source = ("from time import monotonic as mono\n\n\n"
              "def step():\n    return mono()\n")
    report = lint_one("src/repro/timing/model.py", source, "DET001")
    assert len(hits(report, "DET001")) == 1


def test_det001_allows_the_lease_protocol_module():
    source = "import time\n\n\ndef expiry(ttl):\n    return time.time() + ttl\n"
    report = lint_one("src/repro/persist/lease.py", source, "DET001")
    assert report.ok


def test_det001_clean_with_injected_clock():
    source = "def step(clock):\n    return clock()\n"
    report = lint_one("src/repro/vmm/sim.py", source, "DET001")
    assert report.ok


def test_det002_flags_datetime_now():
    source = ("from datetime import datetime\n\n\n"
              "def stamp():\n    return datetime.now()\n")
    report = lint_one("src/repro/obs/export2.py", source, "DET002")
    assert len(hits(report, "DET002")) == 1


def test_det002_ignores_unrelated_now_methods():
    source = "def stamp(clock):\n    return clock.now()\n"
    report = lint_one("src/repro/obs/export2.py", source, "DET002")
    assert report.ok


def test_det003_flags_module_level_rng():
    source = "import random\n\n\ndef jitter():\n    return random.random()\n"
    report = lint_one("src/repro/faults/jitter.py", source, "DET003")
    assert len(hits(report, "DET003")) == 1


def test_det003_flags_unseeded_random_instance():
    source = "import random\n\n\ndef rng():\n    return random.Random()\n"
    report = lint_one("src/repro/faults/jitter.py", source, "DET003")
    assert len(hits(report, "DET003")) == 1


def test_det003_banned_even_in_wall_clock_modules():
    source = "import random\n\n\ndef jitter():\n    return random.random()\n"
    report = lint_one("src/repro/persist/lease.py", source, "DET003")
    assert len(hits(report, "DET003")) == 1


def test_det003_clean_with_seeded_instance():
    source = ("import random\n\n\n"
              "def rng(seed):\n    return random.Random(seed)\n")
    report = lint_one("src/repro/faults/jitter.py", source, "DET003")
    assert report.ok


# -- CONC001-002: lock discipline ----------------------------------------------


_UNGUARDED = """\
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def bump(self):
        self.hits += 1
"""

_GUARDED = """\
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def bump(self):
        with self._lock:
            self.hits += 1
"""


def test_conc001_flags_unguarded_rmw():
    report = lint_one("src/repro/cacheserver/stats2.py", _UNGUARDED,
                      "CONC001")
    assert len(hits(report, "CONC001")) == 1


def test_conc001_clean_under_the_lock():
    report = lint_one("src/repro/cacheserver/stats2.py", _GUARDED,
                      "CONC001")
    assert report.ok


def test_conc001_plain_rebind_is_exempt():
    source = _UNGUARDED.replace("self.hits += 1\n", "self.hits = None\n")
    report = lint_one("src/repro/cacheserver/stats2.py", source,
                      "CONC001")
    assert report.ok


def test_conc001_out_of_scope_packages_are_skipped():
    report = lint_one("src/repro/vmm/stats2.py", _UNGUARDED, "CONC001")
    assert report.ok


_LOCK_CONFLICT = """\
import threading

push_lock = threading.Lock()
trace_lock = threading.Lock()


def forward():
    with push_lock:
        with trace_lock:
            pass


def backward():
    with trace_lock:
        with push_lock:
            pass
"""


def test_conc002_flags_conflicting_lock_order():
    report = lint_one("src/repro/cacheserver/locks2.py", _LOCK_CONFLICT,
                      "CONC002")
    found = hits(report, "CONC002")
    assert len(found) == 1
    assert "push_lock" in found[0].message
    assert "trace_lock" in found[0].message


def test_conc002_consistent_order_is_clean():
    source = _LOCK_CONFLICT.replace(
        "def backward():\n    with trace_lock:\n        with push_lock:",
        "def backward():\n    with push_lock:\n        with trace_lock:")
    report = lint_one("src/repro/cacheserver/locks2.py", source,
                      "CONC002")
    assert report.ok


def test_conc002_resolves_one_call_level():
    source = """\
import threading

push_lock = threading.Lock()


def save():
    with lease():
        pass


def handler():
    with push_lock:
        save()


def other():
    with lease():
        with push_lock:
            pass
"""
    report = lint_one("src/repro/cacheserver/paths2.py", source,
                      "CONC002")
    found = hits(report, "CONC002")
    assert len(found) == 1
    assert "writer.lease" in found[0].message


# -- FLT001: fault-point coverage ----------------------------------------------


def test_flt001_flags_unguarded_open_in_persist():
    source = ("def read_blob(path):\n"
              "    with open(path) as handle:\n"
              "        return handle.read()\n")
    report = lint_one("src/repro/persist/blob.py", source, "FLT001",
                      fault_sites={"repo.read"})
    found = hits(report, "FLT001")
    assert len(found) == 1
    assert "open()" in found[0].message


def test_flt001_clean_with_dominating_fault_point():
    source = ("from repro.faults.plane import fault_point\n\n\n"
              "def read_blob(path):\n"
              "    fault_point(\"repo.read\", path=path)\n"
              "    with open(path) as handle:\n"
              "        return handle.read()\n")
    report = lint_one("src/repro/persist/blob.py", source, "FLT001",
                      fault_sites={"repo.read"})
    assert report.ok


def test_flt001_flags_unregistered_site_literal():
    source = ("from repro.faults.plane import fault_point\n\n\n"
              "def step():\n    fault_point(\"bogus.site\")\n")
    report = lint_one("src/repro/vmm/step2.py", source, "FLT001",
                      fault_sites={"repo.read"})
    found = hits(report, "FLT001")
    assert len(found) == 1
    assert "bogus.site" in found[0].message


def test_flt001_reports_registry_drift_on_full_scans():
    sources = {
        "src/repro/persist/a.py":
            "from repro.faults.plane import fault_point\n\n\n"
            "def touch(path):\n"
            "    fault_point(\"repo.read\", path=path)\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n",
        "src/repro/translator/b.py": "x = 1\n",
        "src/repro/vmm/c.py": "y = 2\n",
    }
    engine = LintEngine(rules=["FLT001"],
                        fault_sites={"repo.read", "net.ghost"})
    report = engine.lint_sources(sources)
    found = hits(report, "FLT001")
    assert len(found) == 1
    assert "net.ghost" in found[0].message


def test_flt001_partial_scans_skip_the_drift_check():
    source = "x = 1\n"
    report = lint_one("src/repro/persist/a.py", source, "FLT001",
                      fault_sites={"net.ghost"})
    assert report.ok


def test_fault_site_drift_live_tree_is_clean():
    assert fault_site_drift() == {}


def test_fault_site_drift_detects_missing_sites(tmp_path):
    (tmp_path / "mod.py").write_text("def f():\n    pass\n")
    drift = fault_site_drift(src_root=tmp_path)
    assert drift, "an empty tree must show every registered site missing"
    missing = {site for sites in drift.values() for site in sites}
    assert "repo.read" in missing


# -- OBS001-002: taxonomy conformance -------------------------------------------


def test_obs001_flags_unregistered_event_name():
    source = ("def step(self):\n"
              "    self.tracer.instant(\"vm.nope\", 0)\n")
    report = lint_one("src/repro/vmm/emit2.py", source, "OBS001",
                      event_types={"vm.dispatch"})
    found = hits(report, "OBS001")
    assert len(found) == 1
    assert "vm.nope" in found[0].message


def test_obs001_registered_and_dynamic_names_are_clean():
    source = ("def step(self, name):\n"
              "    self.tracer.instant(\"vm.dispatch\", 0)\n"
              "    self.tracer.instant(name, 0)\n")
    report = lint_one("src/repro/vmm/emit2.py", source, "OBS001",
                      event_types={"vm.dispatch"})
    assert report.ok


_SHADOW = """\
from repro.obs.metrics import metric_field


class Runtime:
    dispatches = metric_field("dispatches")

    def __init__(self):
        self.hits = 0

    def step(self):
        self.hits += 1
"""


def test_obs002_flags_shadow_counter():
    report = lint_one("src/repro/vmm/rt2.py", _SHADOW, "OBS002")
    found = hits(report, "OBS002")
    assert len(found) == 1
    assert "hits" in found[0].message


def test_obs002_private_pacing_state_is_exempt():
    source = _SHADOW.replace("self.hits", "self._hits")
    report = lint_one("src/repro/vmm/rt2.py", source, "OBS002")
    assert report.ok


def test_obs002_ignores_classes_off_the_metrics_plane():
    source = _SHADOW.replace(
        "    dispatches = metric_field(\"dispatches\")\n\n", "")
    report = lint_one("src/repro/vmm/rt2.py", source, "OBS002")
    assert report.ok


# -- OBS003: propagated-context span discipline ----------------------------------
# (span phases resolve from the *live* EVENT_TYPES taxonomy — the
# injected event_types registry carries names only, not phases)


def test_obs003_flags_span_outside_with():
    source = ("def handle(self, ctx):\n"
              "    self.spans.span(\"server.op\", ctx)\n")
    report = lint_one("src/repro/cacheserver/handlers2.py", source,
                      "OBS003")
    found = hits(report, "OBS003")
    assert len(found) == 1
    assert "with" in found[0].message


def test_obs003_flags_non_slice_span_name():
    source = ("def handle(self, ctx):\n"
              "    with self.spans.span(\"server.request\", ctx):\n"
              "        pass\n")
    report = lint_one("src/repro/cacheserver/handlers2.py", source,
                      "OBS003")
    found = hits(report, "OBS003")
    assert len(found) == 1
    assert "server.request" in found[0].message


def test_obs003_with_statement_slice_name_is_clean():
    source = ("def handle(self, ctx):\n"
              "    with self.spans.span(\"server.op\", ctx) as span:\n"
              "        span[\"status\"] = \"ok\"\n")
    report = lint_one("src/repro/cacheserver/handlers2.py", source,
                      "OBS003")
    assert report.ok


def test_obs003_dynamic_names_and_other_span_calls_are_skipped():
    # a dynamic name is runtime-checked; a bare span() function (no
    # receiver) is not the SpanBuffer API
    source = ("def handle(self, ctx, name):\n"
              "    with self.spans.span(name, ctx):\n"
              "        pass\n"
              "    span(\"server.request\")\n")
    report = lint_one("src/repro/cacheserver/handlers2.py", source,
                      "OBS003")
    assert report.ok


# -- EXC001: silent broad excepts ------------------------------------------------


def test_exc001_flags_silent_broad_except():
    source = ("def ping(probe):\n"
              "    try:\n"
              "        probe()\n"
              "        return True\n"
              "    except Exception:\n"
              "        return False\n")
    report = lint_one("src/repro/persist/probe2.py", source, "EXC001")
    assert len(hits(report, "EXC001")) == 1


def test_exc001_logging_the_failure_is_clean():
    source = ("def ping(probe, log):\n"
              "    try:\n"
              "        probe()\n"
              "        return True\n"
              "    except Exception as error:\n"
              "        log.debug(\"ping failed: %s\", error)\n"
              "        return False\n")
    report = lint_one("src/repro/persist/probe2.py", source, "EXC001")
    assert report.ok


def test_exc001_reraise_is_clean():
    source = ("def ping(probe):\n"
              "    try:\n"
              "        probe()\n"
              "    except Exception:\n"
              "        raise\n")
    report = lint_one("src/repro/persist/probe2.py", source, "EXC001")
    assert report.ok


def test_exc001_narrow_handlers_are_out_of_scope():
    source = ("def ping(probe):\n"
              "    try:\n"
              "        probe()\n"
              "    except OSError:\n"
              "        pass\n")
    report = lint_one("src/repro/persist/probe2.py", source, "EXC001")
    assert report.ok


# -- style pack -------------------------------------------------------------------


def test_f401_flags_unused_import():
    source = "import os\n\nx = 1\n"
    report = lint_one("src/repro/vmm/mod2.py", source, "F401")
    assert len(hits(report, "F401")) == 1


def test_f401_used_import_is_clean():
    source = "import os\n\nx = os.sep\n"
    report = lint_one("src/repro/vmm/mod2.py", source, "F401")
    assert report.ok


def test_e501_flags_overlong_lines():
    source = "x = 1  # " + "y" * 120 + "\n"
    report = lint_one("src/repro/vmm/mod2.py", source, "E501")
    assert len(hits(report, "E501")) == 1


def test_w291_and_w191():
    source = "x = 1   \nif x:\n\ty = 2\n"
    engine = LintEngine(rules=["W291", "W191"])
    report = engine.lint_sources({"src/repro/vmm/mod2.py": source})
    assert len(hits(report, "W291")) == 1
    assert len(hits(report, "W191")) == 1


# -- suppressions and baseline ------------------------------------------------------


def test_inline_suppression_same_line():
    source = ("import time\n\n\ndef step():\n"
              "    return time.time()  # reprolint: disable=DET001\n")
    report = lint_one("src/repro/vmm/sim.py", source, "DET001")
    assert report.ok
    assert report.suppressed == 1


def test_inline_suppression_on_preceding_comment_line():
    source = ("import time\n\n\ndef step():\n"
              "    # reprolint: disable=DET001 - justified here\n"
              "    # (continued justification)\n"
              "    return time.time()\n")
    report = lint_one("src/repro/vmm/sim.py", source, "DET001")
    assert report.ok
    assert report.suppressed == 1


def test_file_level_suppression():
    source = ("# reprolint: disable-file=DET001\n"
              "import time\n\n\ndef step():\n"
              "    return time.time()\n")
    report = lint_one("src/repro/vmm/sim.py", source, "DET001")
    assert report.ok
    assert report.suppressed == 1


def test_suppression_does_not_leak_to_other_rules():
    source = ("import time\n\n\ndef step():\n"
              "    return time.time()  # reprolint: disable=E501\n")
    report = lint_one("src/repro/vmm/sim.py", source, "DET001")
    assert len(hits(report, "DET001")) == 1


def test_baseline_round_trip(tmp_path):
    source = "import time\n\n\ndef step():\n    return time.time()\n"
    path = "src/repro/vmm/clockish.py"
    first = lint_one(path, source, "DET001")
    assert len(first.violations) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.violations)
    counts = load_baseline(baseline_path)
    assert len(counts) == 1

    engine = LintEngine(rules=["DET001"], baseline=counts)
    second = engine.lint_sources({path: source})
    assert second.ok
    assert second.baselined == 1


def test_baseline_budget_does_not_cover_new_violations(tmp_path):
    source = "import time\n\n\ndef step():\n    return time.time()\n"
    path = "src/repro/vmm/clockish.py"
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path,
                   lint_one(path, source, "DET001").violations)

    doubled = source + "\n\ndef again():\n    return time.time()\n"
    engine = LintEngine(rules=["DET001"],
                        baseline=load_baseline(baseline_path))
    report = engine.lint_sources({path: doubled})
    assert len(report.violations) == 1
    assert report.baselined == 1


def test_missing_baseline_file_loads_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


# -- module identity -----------------------------------------------------------------


def test_package_detection():
    module = ModuleInfo("src/repro/persist/lease.py", "x = 1\n")
    assert module.package == ("persist", "lease")
    assert module.rel == "repro/persist/lease.py"
    assert module.in_package("persist", "cacheserver")

    outside = ModuleInfo("tests/test_foo.py", "x = 1\n")
    assert outside.package == ()
    assert not outside.in_package("persist")


# -- the live tree and the CLI ---------------------------------------------------------


def test_live_tree_is_clean():
    """The shipped tree passes its own strict gate (no baseline)."""
    engine = LintEngine()
    report = engine.lint_paths([REPO / "src", REPO / "tests",
                                REPO / "tools"])
    assert report.ok, "\n" + report.format()


def test_cli_json_report(capsys):
    from repro.cli import main
    code = main(["lint", "--json", str(REPO / "src" / "repro" / "lint")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["files"] > 0


def test_cli_list_rules(capsys):
    from repro.cli import main
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "DET001" in out and "FLT001" in out


def test_minilint_shim_still_works():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "minilint.py"),
         str(REPO / "src" / "repro" / "lint")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr


def test_chaos_preflight_passes_on_live_tree():
    sys.path.insert(0, str(REPO / "tools"))
    try:
        import chaos
        assert chaos.preflight_fault_sites() == 0
    finally:
        sys.path.remove(str(REPO / "tools"))
