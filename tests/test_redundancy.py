"""Redundant-load elimination tests: rewrites, safety, and semantic
preservation under randomized memory traffic."""

from hypothesis import given, settings, strategies as st

from repro.core import CoDesignedVM, ref_superscalar, vm_soft
from repro.isa.fusible import FusibleMachine, MicroOp, UOp
from repro.isa.fusible.registers import R_ZERO
from repro.isa.x86lite import assemble
from repro.memory import AddressSpace
from repro.translator.redundancy import eliminate_redundant_loads


def uop(op, **kwargs):
    return MicroOp(op, **kwargs)


class TestRewrites:
    def test_repeated_load_becomes_move(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 1
        assert out[1].op is UOp.MOV2
        assert out[1].rd == 9 and out[1].rs1 == 8

    def test_store_to_load_forwarding(self):
        uops = [uop(UOp.STW, rd=8, rs1=3, imm=4),
                uop(UOp.LDW, rd=9, rs1=3, imm=4)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 1
        assert out[1].op is UOp.MOV2 and out[1].rs1 == 8

    def test_identical_reload_becomes_nop(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.LDW, rd=8, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert out[1].op is UOp.NOP2

    def test_high_register_uses_addi_form(self):
        uops = [uop(UOp.LDW, rd=20, rs1=3, imm=0),
                uop(UOp.LDW, rd=21, rs1=3, imm=0)]
        out, _stats = eliminate_redundant_loads(uops)
        assert out[1].op is UOp.ADDI and out[1].imm == 0


class TestSafety:
    def test_any_store_clobbers_other_locations(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.STW, rd=5, rs1=4, imm=0),   # may alias [r3]
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0
        assert out[2].op is UOp.LDW

    def test_base_redefinition_clobbers(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.ADDI, rd=3, rs1=3, imm=4),
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0

    def test_value_redefinition_clobbers(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.ADDI, rd=8, rs1=R_ZERO, imm=7),
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0

    def test_load_into_own_base_not_remembered(self):
        uops = [uop(UOp.LDW, rd=3, rs1=3, imm=0),   # rd == base
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0

    def test_no_reuse_across_branches(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.JMP, imm=4),
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0

    def test_no_reuse_across_vmcall(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.VMCALL, imm=0),
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        _out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0

    def test_subword_store_clobbers(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.STB, rd=5, rs1=6, imm=0),
                uop(UOp.LDW, rd=9, rs1=3, imm=0)]
        _out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0

    def test_different_displacements_not_confused(self):
        uops = [uop(UOp.LDW, rd=8, rs1=3, imm=0),
                uop(UOp.LDW, rd=9, rs1=3, imm=4)]
        _out, stats = eliminate_redundant_loads(uops)
        assert stats.loads_eliminated == 0


# -- semantic preservation under randomized memory traffic ------------------------

_regs = st.integers(0, 10)
_slots = st.integers(0, 3)


@st.composite
def memory_traffic(draw):
    count = draw(st.integers(2, 16))
    uops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["ldw", "stw", "alu"]))
        if kind == "ldw":
            uops.append(MicroOp(UOp.LDW, rd=draw(_regs), rs1=11,
                                imm=draw(_slots) * 4))
        elif kind == "stw":
            uops.append(MicroOp(UOp.STW, rd=draw(_regs), rs1=11,
                                imm=draw(_slots) * 4))
        else:
            uops.append(MicroOp(UOp.ADDI, rd=draw(_regs),
                                rs1=draw(_regs),
                                imm=draw(st.integers(-50, 50))))
    return uops


def run_uops(uops, seed_regs, seed_words):
    machine = FusibleMachine(AddressSpace())
    machine.regs[:11] = seed_regs
    machine.regs[11] = 0x600000
    for slot, word in enumerate(seed_words):
        machine.memory.write_u32(0x600000 + slot * 4, word)
    machine.execute_uops(uops)
    return (list(machine.regs),
            machine.memory.read(0x600000, 16))


class TestSemanticPreservation:
    @given(uops=memory_traffic(),
           seed_regs=st.lists(st.integers(0, 0xFFFFFFFF), min_size=11,
                              max_size=11),
           seed_words=st.lists(st.integers(0, 0xFFFFFFFF), min_size=4,
                               max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_elimination_preserves_state(self, uops, seed_regs,
                                         seed_words):
        optimized, _stats = eliminate_redundant_loads(uops)
        plain = run_uops(uops, seed_regs, seed_words)
        opt = run_uops(optimized, seed_regs, seed_words)
        assert plain == opt


class TestEndToEnd:
    def test_vm_results_unchanged_with_elimination(self):
        source = """
        start:
            mov esi, 0x600000
            mov dword [esi], 5
            mov ecx, 40
        loop:
            add [esi], ecx       ; RMW: store then ...
            mov eax, [esi]       ; ... reload -> forwarded
            add ebx, eax
            dec ecx
            jnz loop
            mov eax, 1
            int 0x80
            mov eax, 0
            mov ebx, 0
            int 0x80
        """
        image = assemble(source)
        outputs = []
        for factory in (ref_superscalar, vm_soft):
            vm = CoDesignedVM(factory(), hot_threshold=5)
            vm.load(image)
            outputs.append(vm.run().output)
        assert outputs[0] == outputs[1]

    def test_elimination_fires_on_real_code(self):
        source = """
        start:
            mov esi, 0x600000
            mov ecx, 40
        loop:
            add [esi], ecx
            mov eax, [esi]
            add ebx, eax
            dec ecx
            jnz loop
            mov eax, 0
            mov ebx, 0
            int 0x80
        """
        vm = CoDesignedVM(vm_soft(), hot_threshold=5)
        vm.load(assemble(source))
        vm.run()
        assert vm.runtime.sbt.loads_eliminated >= 1
