"""Tests for the two-pass x86lite assembler."""

import pytest

from repro.isa.x86lite import (
    AssemblerError,
    Op,
    Reg,
    assemble,
    assemble_to_bytes,
    decode,
)
from repro.memory.loader import DEFAULT_TEXT_BASE


def decode_all(data: bytes, base: int = DEFAULT_TEXT_BASE):
    """Decode a byte string fully into instructions."""
    out = []
    offset = 0
    while offset < len(data):
        instr = decode(data, addr=base + offset, offset=offset)
        out.append(instr)
        offset += instr.length
    return out


class TestBasics:
    def test_single_instruction(self):
        assert assemble_to_bytes("nop") == b"\x90"

    def test_comments_and_blank_lines(self):
        source = """
        ; leading comment
        nop      ; trailing comment

        hlt
        """
        assert assemble_to_bytes(source) == b"\x90\xf4"

    def test_mov_imm(self):
        data = assemble_to_bytes("mov eax, 0x42")
        assert data == b"\xb8\x42\x00\x00\x00"

    def test_memory_operands(self):
        instrs = decode_all(assemble_to_bytes(
            "mov eax, [ebx+ecx*4+8]\nmov [ebp-4], edx"))
        first, second = instrs
        mem = first.operands[1]
        assert (mem.base, mem.index, mem.scale, mem.disp) \
            == (Reg.EBX, Reg.ECX, 4, 8)
        mem2 = second.operands[0]
        assert (mem2.base, mem2.disp) == (Reg.EBP, -4)

    def test_char_literal(self):
        data = assemble_to_bytes("mov ebx, 'A'")
        assert data == b"\xbb\x41\x00\x00\x00"

    def test_negative_immediate(self):
        instrs = decode_all(assemble_to_bytes("add eax, -1"))
        assert instrs[0].operands[1].value == 0xFFFFFFFF

    def test_size_keyword(self):
        instrs = decode_all(assemble_to_bytes("movzx eax, byte [esi]"))
        assert instrs[0].op is Op.MOVZX
        assert instrs[0].operands[1].size == 8

    def test_16bit_register_selects_width(self):
        data = assemble_to_bytes("mov ax, 5")
        assert data[0] == 0x66

    def test_rep_prefix(self):
        data = assemble_to_bytes("rep movsd")
        assert data == b"\xf3\xa5"


class TestLabels:
    def test_backward_branch_is_short(self):
        data = assemble_to_bytes("top: dec eax\njnz top")
        assert data[-2] == 0x75  # short jnz

    def test_forward_branch_resolves(self):
        source = """
        jmp done
        nop
        done: hlt
        """
        instrs = decode_all(assemble_to_bytes(source))
        jmp = instrs[0]
        assert jmp.op is Op.JMP
        # target must land on the hlt
        assert any(instr.addr == jmp.target and instr.op is Op.HLT
                   for instr in instrs)

    def test_entry_is_start_label(self):
        image = assemble("nop\nstart: hlt")
        assert image.entry == image.text.addr + 1

    def test_entry_defaults_to_base(self):
        image = assemble("nop")
        assert image.entry == DEFAULT_TEXT_BASE

    def test_call_forward(self):
        source = """
        start:
            call fn
            hlt
        fn:
            ret
        """
        instrs = decode_all(assemble_to_bytes(source))
        call = instrs[0]
        assert any(instr.addr == call.target and instr.op is Op.RET
                   for instr in instrs)

    def test_label_as_immediate(self):
        source = """
        start: mov eax, table
               hlt
        table: .dd 1, 2, 3
        """
        image = assemble(source)
        first = decode(image.text.data, addr=image.text.addr)
        assert first.operands[1].value == image.labels["table"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_label_on_own_line(self):
        data = assemble_to_bytes("loop:\n  jmp loop")
        assert data == b"\xeb\xfe"


class TestDirectives:
    def test_db(self):
        image = assemble("nop\n.db 1, 2, 0xFF")
        assert image.text.data == b"\x90\x01\x02\xff"

    def test_dd(self):
        image = assemble("nop\n.dd 0x11223344")
        assert image.text.data == b"\x90\x44\x33\x22\x11"

    def test_zero(self):
        image = assemble("nop\n.zero 4\nhlt")
        assert image.text.data == b"\x90\x00\x00\x00\x00\xf4"

    def test_align(self):
        image = assemble("nop\n.align 8\nhlt")
        assert len(image.text.data) == 9
        assert image.text.data[8] == 0xF4

    def test_org_splits_segments(self):
        image = assemble("nop\n.org 0x500000\nhlt")
        assert len(image.segments) == 2
        assert image.segments[1].addr == 0x500000

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate eax")

    def test_bad_operand(self):
        with pytest.raises(AssemblerError):
            assemble("mov eax, @#$")

    def test_unterminated_memory(self):
        with pytest.raises(AssemblerError):
            assemble("mov eax, [ebx")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus eax")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("; nothing here")


class TestConditionAliases:
    @pytest.mark.parametrize("mnemonic,byte", [
        ("je", 0x74), ("jz", 0x74), ("jne", 0x75), ("jnz", 0x75),
        ("jl", 0x7C), ("jge", 0x7D), ("jle", 0x7E), ("jg", 0x7F),
        ("jb", 0x72), ("jae", 0x73), ("ja", 0x77), ("js", 0x78),
    ])
    def test_jcc_aliases(self, mnemonic, byte):
        data = assemble_to_bytes(f"top: nop\n{mnemonic} top")
        assert data[1] == byte

    def test_cmov(self):
        instrs = decode_all(assemble_to_bytes("cmovne eax, ebx"))
        assert instrs[0].op is Op.CMOV
