"""Workload model tests: structure, determinism, calibration."""

import numpy as np
import pytest

from repro.workloads import (
    WINSTONE_APPS,
    generate_workload,
    spec_like_profile,
    winstone_app,
    winstone_suite,
)
from repro.analysis.frequency_profile import (
    frequency_profile,
    suite_frequency_profile,
)


class TestSuiteDefinitions:
    def test_ten_apps(self):
        assert len(winstone_suite()) == 10

    def test_app_names_match_fig9(self):
        names = [app.name for app in winstone_suite()]
        assert names == ["Access", "Excel", "FrontPage", "IE", "Norton",
                         "Outlook", "PowerPoint", "Project", "Winzip",
                         "Word"]

    def test_project_speedup_is_three_percent(self):
        # the paper singles Project out: steady state only +3%
        assert winstone_app("Project").vm_speedup == pytest.approx(1.03)

    def test_suite_average_speedup_near_eight_percent(self):
        mean = np.mean([app.vm_speedup for app in winstone_suite()])
        assert 1.06 <= mean <= 1.10

    def test_suite_average_static_near_150k(self):
        mean = np.mean([app.static_instrs for app in winstone_suite()])
        assert 130_000 <= mean <= 180_000

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            winstone_app("Doom")

    def test_spec_profile_contrast(self):
        spec = spec_like_profile()
        assert spec.vm_speedup == pytest.approx(1.18)
        assert spec.fused_fraction > winstone_app("Word").fused_fraction
        assert spec.static_instrs < winstone_app("Word").static_instrs


class TestGeneration:
    def test_deterministic_by_seed(self):
        app = winstone_app("Word")
        first = generate_workload(app, dyn_instrs=10_000_000, seed=7)
        second = generate_workload(app, dyn_instrs=10_000_000, seed=7)
        assert first.static_instrs == second.static_instrs
        assert [e.region_index for e in first.episodes] == \
            [e.region_index for e in second.episodes]
        assert [e.iterations for e in first.episodes] == \
            [e.iterations for e in second.episodes]

    def test_different_seeds_differ(self):
        app = winstone_app("Word")
        first = generate_workload(app, dyn_instrs=10_000_000, seed=1)
        second = generate_workload(app, dyn_instrs=10_000_000, seed=2)
        assert [e.iterations for e in first.episodes] != \
            [e.iterations for e in second.episodes]

    def test_dynamic_length_hit_exactly_via_episodes(self):
        app = winstone_app("IE")
        workload = generate_workload(app, dyn_instrs=50_000_000, seed=0)
        from_episodes = sum(
            episode.iterations
            * workload.regions[episode.region_index].instr_count
            for episode in workload.episodes)
        assert from_episodes == workload.total_dynamic_instrs

    def test_dynamic_length_close_to_target(self):
        app = winstone_app("IE")
        workload = generate_workload(app, dyn_instrs=50_000_000, seed=0)
        assert workload.total_dynamic_instrs == pytest.approx(
            50_000_000, rel=0.02)

    def test_static_size_close_to_profile(self):
        app = winstone_app("Excel")
        workload = generate_workload(app, dyn_instrs=10_000_000, seed=0)
        assert workload.static_instrs == pytest.approx(
            app.static_instrs, rel=0.15)

    def test_episode_positions_sorted(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=10_000_000, seed=0)
        positions = [episode.positions if False else episode.position
                     for episode in workload.episodes]
        assert positions == sorted(positions)

    def test_episode_iteration_totals_match_regions(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=10_000_000, seed=0)
        totals = {}
        for episode in workload.episodes:
            totals[episode.region_index] = \
                totals.get(episode.region_index, 0) + episode.iterations
        for region in workload.regions:
            assert totals[region.index] == region.total_iterations

    def test_block_addresses_monotone(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=10_000_000, seed=0)
        addrs = [block.addr for region in workload.regions
                 for block in region.blocks]
        assert addrs == sorted(addrs)

    def test_blocks_have_positive_sizes(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=10_000_000, seed=0)
        assert all(block.size >= 1 and block.nbytes >= block.size
                   for region in workload.regions
                   for block in region.blocks)


class TestFig3Calibration:
    """The suite-level frequency profile must match Fig. 3's reported
    properties at the 100M-instruction reference length."""

    @pytest.fixture(scope="class")
    def profile(self):
        workloads = [generate_workload(app, dyn_instrs=100_000_000,
                                       seed=0)
                     for app in winstone_suite()]
        return suite_frequency_profile(workloads)

    def test_static_working_set_near_150k(self, profile):
        assert 120_000 <= profile.total_static <= 190_000

    def test_hot_static_same_order_as_3k(self, profile):
        hot = profile.static_above(8000)
        assert 1_000 <= hot <= 9_000  # paper: ~3K

    def test_dynamic_peak_bucket_is_10k(self, profile):
        # paper: "30+% of all dynamic instructions execute more than 10K
        # times, but less than 100K times"
        assert profile.peak_dynamic_bucket() == 10_000
        fractions = profile.dynamic_fractions()
        assert max(fractions) >= 0.30

    def test_static_histogram_decreasing(self, profile):
        # most static code is cold; counts fall off with frequency
        static = profile.static_instrs
        assert static[1] > static[3] > static[5]

    def test_longer_traces_shift_right(self):
        # the paper's arrow: run 5x longer, the dynamic peak moves right
        app = winstone_app("Word")
        short = frequency_profile(
            generate_workload(app, dyn_instrs=100_000_000, seed=0))
        long_ = frequency_profile(
            generate_workload(app, dyn_instrs=500_000_000, seed=0))
        short_mass = short.hotspot_dynamic_fraction(100_000)
        long_mass = long_.hotspot_dynamic_fraction(100_000)
        assert long_mass > short_mass
