"""The metrics registry and the no-counter-drift contract.

The registry (:mod:`repro.obs.metrics`) is the single source of truth
for runtime statistics; ``ExecutionReport`` is a view over it.  The
drift test here runs a mixed BBT/SBT/fault workload and asserts every
report field named in :data:`repro.core.stats.REPORT_METRICS` equals
the registry series backing it — so the two surfaces can never silently
diverge again.
"""

from __future__ import annotations

import pytest

from repro.core.config import vm_soft
from repro.core.stats import REPORT_METRICS
from repro.core.vm import CoDesignedVM
from repro.faults import FaultInjector, injecting
from repro.isa.x86lite import assemble
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_field,
    series_key,
)
from repro.workloads.programs import PROGRAMS


class TestSeriesKinds:
    def test_series_key_plain_and_labeled(self):
        assert series_key("hits", {}) == "hits"
        assert series_key("hits", {"b": "2", "a": "1"}) == \
            "hits{a=1,b=2}"

    def test_counter(self):
        counter = Counter("hits", {})
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_gauge(self):
        gauge = Gauge("depth", {})
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5

    def test_histogram_buckets_are_powers_of_two(self):
        histogram = Histogram("sizes", {})
        for value in (1, 3, 5, 9, 9):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 1 and snap["max"] == 9
        assert snap["mean"] == pytest.approx(27 / 5)
        assert snap["buckets"] == {1: 1, 4: 1, 8: 1, 16: 2}


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", cache="bbt")
        second = registry.counter("hits", cache="bbt")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(TypeError):
            registry.gauge("hits")

    def test_value_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits", cache="bbt").inc(3)
        registry.gauge("depth").set(2)
        assert registry.value("hits", cache="bbt") == 3
        assert registry.value("absent") is None
        assert registry.snapshot() == {"hits{cache=bbt}": 3, "depth": 2}

    def test_diff_reports_numeric_deltas(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("sizes")
        counter.inc(2)
        histogram.observe(10)
        before = registry.snapshot()
        counter.inc(3)
        histogram.observe(20)
        registry.counter("fresh").inc()
        deltas = registry.diff(before)
        assert deltas == {"hits": 3, "sizes": 1, "fresh": 1}


class TestMetricField:
    class Owner:
        hits = metric_field()
        renamed = metric_field(name="series_name")

        def __init__(self, registry, labels=None):
            self.metrics = registry
            if labels:
                self._metric_labels = labels
            self.hits = 0
            self.renamed = 0

    def test_attribute_writes_hit_the_registry(self):
        registry = MetricsRegistry()
        owner = self.Owner(registry)
        owner.hits += 1
        owner.hits += 2
        assert owner.hits == 3
        assert registry.value("hits") == 3
        assert registry.value("series_name") == 0

    def test_per_instance_labels_split_series(self):
        registry = MetricsRegistry()
        left = self.Owner(registry, {"cache": "bbt"})
        right = self.Owner(registry, {"cache": "sbt"})
        left.hits += 1
        right.hits += 5
        assert registry.value("hits", cache="bbt") == 1
        assert registry.value("hits", cache="sbt") == 5


@pytest.fixture(scope="module")
def mixed_run():
    """A run that exercises BBT, SBT and the fault/recovery plane."""
    vm = CoDesignedVM(vm_soft(), hot_threshold=10)
    vm.load(assemble(PROGRAMS["quicksort"]))
    injector = FaultInjector(5, ["bbt-fault"], rate=0.3,
                             max_injections=3)
    with injecting(injector):
        report = vm.run()
    return vm, report, injector


class TestNoCounterDrift:
    def test_run_was_actually_mixed(self, mixed_run):
        _vm, report, injector = mixed_run
        assert report.blocks_translated > 0
        assert report.superblocks_translated > 0
        assert report.translation_faults > 0
        assert sum(injector.injected.values()) > 0

    def test_every_report_field_matches_its_series(self, mixed_run):
        vm, report, _injector = mixed_run
        registry = vm.metrics
        for field_name, (series, labels) in REPORT_METRICS.items():
            reported = getattr(report, field_name)
            backing = registry.value(series, **labels)
            assert backing is not None, \
                f"{field_name}: no registry series {series!r} {labels!r}"
            assert reported == backing, \
                f"{field_name}: report says {reported}, " \
                f"registry series {series!r} says {backing}"

    def test_phase_cycles_conserve_total(self, mixed_run):
        _vm, report, _injector = mixed_run
        assert report.total_cycles > 0
        assert sum(report.phase_cycles.values()) == \
            pytest.approx(report.total_cycles)
