"""Basic block translator tests: block scanning, layout, linkage."""

from repro.hwassist import XLTx86Unit
from repro.isa.fusible import UOp, VMService
from repro.isa.x86lite import assemble
from repro.memory import AddressSpace, load_image
from repro.translator import BasicBlockTranslator, TranslationDirectory
from repro.translator.emit import (
    EXIT_STUB_BYTES,
    PROFILE_PROLOGUE_BYTES,
    profile_prologue,
    scan_block,
)


def make_bbt(source, embed_profiling=False, **kwargs):
    image = assemble(source)
    memory = AddressSpace()
    entry = load_image(image, memory)
    directory = TranslationDirectory(memory)
    bbt = BasicBlockTranslator(directory, memory,
                               embed_profiling=embed_profiling,
                               hot_threshold=10, **kwargs)
    bbt.labels = image.labels
    return bbt, directory, memory, entry


class TestScanBlock:
    def test_block_ends_at_cti(self):
        _bbt, _dir, memory, entry = make_bbt(
            "start: mov eax, 1\nmov ebx, 2\njmp start")
        instrs = scan_block(memory, entry)
        assert len(instrs) == 3
        assert instrs[-1].is_control_transfer

    def test_block_ends_at_complex(self):
        _bbt, _dir, memory, entry = make_bbt(
            "mov eax, 1\nmov ebx, 0\ndiv ebx\nhlt")
        instrs = scan_block(memory, entry)
        assert len(instrs) == 3
        assert instrs[-1].is_complex

    def test_block_size_limit(self):
        source = "\n".join(["nop"] * 100 + ["hlt"])
        _bbt, _dir, memory, entry = make_bbt(source)
        instrs = scan_block(memory, entry, max_instrs=16)
        assert len(instrs) == 16


class TestTranslationShape:
    def test_direct_jmp_one_stub(self):
        bbt, _dir, _memory, entry = make_bbt(
            "start: mov eax, 1\njmp start")
        translation = bbt.translate(entry)
        assert len(translation.exits) == 1
        assert translation.exits[0].kind == "jump"
        assert translation.exits[0].x86_target == entry

    def test_jcc_two_stubs(self):
        bbt, _dir, _memory, entry = make_bbt(
            "top: dec eax\njnz top\nhlt")
        translation = bbt.translate(entry)
        kinds = sorted(stub.kind for stub in translation.exits)
        assert kinds == ["fallthrough", "taken"]
        taken = next(s for s in translation.exits if s.kind == "taken")
        assert taken.x86_target == entry

    def test_jcc_stub_distance_matches_bc(self):
        bbt, _dir, _memory, entry = make_bbt(
            "top: dec eax\njnz top\nhlt")
        translation = bbt.translate(entry)
        bc = next(u for u in translation.uops if u.op is UOp.BC)
        assert bc.imm == EXIT_STUB_BYTES

    def test_ret_indirect_exit(self):
        bbt, _dir, _memory, entry = make_bbt("ret")
        translation = bbt.translate(entry)
        assert translation.exits[0].kind == "indirect"
        assert translation.exits[0].x86_target is None
        assert translation.uops[-1].op is UOp.VMEXIT

    def test_complex_instruction_vmcall(self):
        bbt, _dir, _memory, entry = make_bbt("mov eax, 0\nint 0x80")
        translation = bbt.translate(entry)
        assert translation.uops[-1].op is UOp.VMCALL
        assert translation.uops[-1].imm == int(VMService.INTERP_ONE)
        # side table maps the VMCALL to the INT instruction
        (x86_addr,) = set(translation.side_table.values())
        assert x86_addr == entry + 5  # after "mov eax, 0"

    def test_instr_and_uop_counts(self):
        bbt, _dir, _memory, entry = make_bbt("mov eax, 1\nadd eax, 2\nret")
        translation = bbt.translate(entry)
        assert translation.instr_count == 3
        assert translation.uop_count == len(translation.uops)

    def test_lookup_registered(self):
        bbt, directory, _memory, entry = make_bbt("ret")
        translation = bbt.translate(entry)
        assert directory.lookup(entry) is translation


class TestProfilingPrologue:
    def test_prologue_present_when_enabled(self):
        bbt, _dir, _memory, entry = make_bbt("ret", embed_profiling=True)
        translation = bbt.translate(entry)
        assert translation.counter_addr is not None
        assert translation.uops[0].op is UOp.RDFLG
        vmcalls = [u for u in translation.uops
                   if u.op is UOp.VMCALL and
                   u.imm == int(VMService.PROFILE)]
        assert len(vmcalls) == 1

    def test_prologue_absent_when_disabled(self):
        bbt, _dir, _memory, entry = make_bbt("ret", embed_profiling=False)
        translation = bbt.translate(entry)
        assert translation.counter_addr is None
        assert all(u.imm != int(VMService.PROFILE)
                   for u in translation.uops if u.op is UOp.VMCALL)

    def test_counter_initialized_to_threshold(self):
        bbt, _dir, memory, entry = make_bbt("ret", embed_profiling=True)
        translation = bbt.translate(entry)
        assert memory.read_u32(translation.counter_addr) == 10

    def test_reset_counter(self):
        bbt, _dir, memory, entry = make_bbt("ret", embed_profiling=True)
        translation = bbt.translate(entry)
        memory.write_u32(translation.counter_addr, 0)
        bbt.reset_counter(translation)
        assert memory.read_u32(translation.counter_addr) == 10
        bbt.reset_counter(translation, 12345)
        assert memory.read_u32(translation.counter_addr) == 12345

    def test_prologue_byte_size_constant(self):
        uops = profile_prologue(0x28000000, 0x400000)
        assert sum(u.length for u in uops) == PROFILE_PROLOGUE_BYTES


class TestHardwareAssistedPath:
    def test_xlt_unit_produces_identical_translation(self):
        source = "mov eax, 1\nadd eax, 2\nlea ebx, [eax+eax*2]\nret"
        bbt_sw, _d1, _m1, entry1 = make_bbt(source)
        bbt_hw, _d2, _m2, entry2 = make_bbt(source)
        bbt_hw.xlt_unit = XLTx86Unit()
        sw = bbt_sw.translate(entry1)
        hw = bbt_hw.translate(entry2)
        assert [str(u) for u in sw.uops] == [str(u) for u in hw.uops]
        assert bbt_hw.hw_assisted_instrs == 3  # body instrs (not the RET)
        assert bbt_hw.xlt_unit.invocations == 3

    def test_hw_punt_falls_back_to_software(self):
        # a large-displacement RMW cracks to >16 micro-op bytes
        source = "add [ebx+ecx*4+0x12345678], eax\nret"
        bbt, _dir, _memory, entry = make_bbt(source)
        bbt.xlt_unit = XLTx86Unit()
        translation = bbt.translate(entry)
        assert bbt.hw_punted_instrs == 1
        assert translation.uop_count > 4


class TestStatistics:
    def test_counters_accumulate(self):
        bbt, _dir, _memory, entry = make_bbt(
            "start: mov eax, 1\njmp second\nsecond: ret")
        bbt.translate(entry)
        bbt.translate(bbt.labels["second"])
        assert bbt.blocks_translated == 2
        assert bbt.instrs_translated == 3
        assert bbt.uops_emitted > 0
