"""Interpreter tests on whole programs."""

import pytest

from repro.interp import Interpreter, InterpreterLimit
from repro.isa.x86lite import Reg, assemble
from tests.conftest import make_state, run_source

FIB = """
start:
    mov eax, 0      ; fib(0)
    mov ebx, 1      ; fib(1)
    mov ecx, 10     ; iterations
loop:
    mov edx, eax
    add edx, ebx
    mov eax, ebx
    mov ebx, edx
    dec ecx
    jnz loop
    hlt
"""

FACTORIAL_RECURSIVE = """
start:
    push 6
    call fact
    hlt
fact:                   ; fact(n) -> eax
    mov eax, [esp+4]
    cmp eax, 1
    jle base
    dec eax
    push eax
    call fact
    mov ebx, [esp+4]
    imul eax, ebx
    ret 4
base:
    mov eax, 1
    ret 4
"""

MEMCPY = """
start:
    mov esi, src
    mov edi, 0x600000
    mov ecx, 4
copy:
    mov eax, [esi]
    mov [edi], eax
    add esi, 4
    add edi, 4
    dec ecx
    jnz copy
    hlt
src: .dd 10, 20, 30, 40
"""


class TestPrograms:
    def test_fibonacci(self):
        state = run_source(FIB)
        assert state.regs[Reg.EAX] == 55  # fib(10)

    def test_recursive_factorial(self):
        state = run_source(FACTORIAL_RECURSIVE)
        assert state.regs[Reg.EAX] == 720

    def test_memcpy_loop(self):
        state = run_source(MEMCPY)
        for offset, value in ((0, 10), (4, 20), (8, 30), (12, 40)):
            assert state.memory.read_u32(0x600000 + offset) == value

    def test_instruction_count(self):
        image = assemble(FIB)
        state = make_state(image)
        interp = Interpreter(state)
        executed = interp.run()
        # 3 setup + 10 iterations * 6 + hlt
        assert executed == 3 + 60 + 1


class TestInterpreterMechanics:
    def test_step_returns_instruction(self):
        image = assemble("mov eax, 5\nhlt")
        state = make_state(image)
        interp = Interpreter(state)
        instr = interp.step()
        assert str(instr) == "mov eax, 0x5"

    def test_limit_raises(self):
        image = assemble("spin: jmp spin")
        state = make_state(image)
        with pytest.raises(InterpreterLimit):
            Interpreter(state).run(max_instructions=100)

    def test_on_instruction_hook(self):
        seen = []
        image = assemble("mov eax, 1\nmov ebx, 2\nhlt")
        state = make_state(image)
        Interpreter(state, on_instruction=seen.append).run()
        assert len(seen) == 3

    def test_decode_cache_hit_returns_same_object(self):
        image = assemble("top: dec eax\njmp top")
        state = make_state(image)
        state.regs[Reg.EAX] = 10
        interp = Interpreter(state)
        first = interp.step()
        interp.step()
        again = interp.step()
        assert first is again

    def test_invalidate_decodes(self):
        image = assemble("top: dec eax\njmp top")
        state = make_state(image)
        interp = Interpreter(state)
        first = interp.step()
        interp.invalidate_decodes()
        interp.step()  # jmp
        again = interp.step()
        assert first is not again
        assert str(first) == str(again)

    def test_uncached_mode(self):
        image = assemble("top: dec eax\njmp top")
        state = make_state(image)
        interp = Interpreter(state, cache_decodes=False)
        first = interp.step()
        interp.step()
        assert interp.fetch_decode(first.addr) is not first
