"""Intentional-violation corpus for the translation verifier.

Every rule in the pack has at least one hand-constructed illegal
sequence here that must be flagged with exactly that rule ID — no rule
is allowed to be vacuous.  Clean counterparts pin the absence of false
positives, and the dataflow engine gets direct unit coverage.
"""

import pytest

from repro.isa.fusible.encoding import encode_stream, encode_uop, \
    stream_length
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import R_EXIT_TARGET
from repro.isa.x86lite.registers import Cond
from repro.memory import AddressSpace
from repro.translator.code_cache import (
    ExitStub,
    Translation,
    TranslationDirectory,
)
from repro.translator.fusion import fuse_microops
from repro.verify import (
    build_cfg,
    rule_ids,
    verify_translation,
    verify_uops,
)
from repro.verify.dataflow import (
    FLAGS,
    def_use_chains,
    definitely_defined,
    flag_provenance,
    live_registers,
    reaching_definitions,
)

NOP = MicroOp(UOp.NOP)


def ids(report):
    return {violation.rule_id for violation in report.violations}


def exit_stub(target, addr=None):
    """A canonical direct exit stub, written out longhand."""
    return [
        MicroOp(UOp.LUI, rd=R_EXIT_TARGET, imm=(target >> 13) & 0x7FFFF,
                x86_addr=addr),
        MicroOp(UOp.ORI, rd=R_EXIT_TARGET, rs1=R_EXIT_TARGET,
                imm=target & 0x1FFF, x86_addr=addr),
        MicroOp(UOp.VMEXIT, rs1=R_EXIT_TARGET, x86_addr=addr),
    ]


def make_translation(uops, exits=(), side=(), native_addr=0x2000_0000,
                     entry=0x40_0000, kind="bbt", memory=None):
    """Hand-build a Translation (optionally backed by real memory)."""
    translation = Translation(entry=entry, kind=kind,
                              native_addr=native_addr,
                              native_len=stream_length(uops),
                              uop_count=len(uops), uops=list(uops))
    for offset, stub_kind, target in exits:
        translation.exits.append(ExitStub(
            stub_addr=native_addr + offset, kind=stub_kind,
            x86_target=target))
    for offset, x86_addr in side:
        translation.side_table[native_addr + offset] = x86_addr
    if memory is not None:
        memory.write(native_addr, encode_stream(uops))
    return translation


# -- the corpus: every rule must have a failing fixture -----------------------


def fus001_nonalu_head():
    return verify_uops([
        MicroOp(UOp.MULL, rd=5, rs1=1, rs2=2, fused=True),  # multi-cycle
        MicroOp(UOp.ADD, rd=6, rs1=5, rs2=3),
    ])


def fus001_flagless_compare_branch():
    return verify_uops([
        MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, fused=True),  # no .f bit
        MicroOp(UOp.BC, cond=Cond.NE, imm=0),
        NOP,
    ])


def fus002_overlapping_pairs():
    # the historical close_region bug: the flag producer fused with a
    # region-ending BC even though it was already the tail of a pair
    return verify_uops([
        MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, fused=True),
        MicroOp(UOp.AND, rd=6, rs1=5, rs2=2, setflags=True, fused=True),
        MicroOp(UOp.BC, cond=Cond.NE, imm=0),
        NOP,
    ])


def fus002_dangling_head():
    return verify_uops([MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, fused=True)])


def fus002_tail_not_consuming():
    return verify_uops([
        MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, fused=True),
        MicroOp(UOp.ADD, rd=6, rs1=2, rs2=3),  # ignores r5
    ])


def fus003_four_source_pair():
    return verify_uops([
        MicroOp(UOp.ADD, rd=5, rs1=1, rs2=2, fused=True),
        MicroOp(UOp.ADD, rd=7, rs1=3, rs2=4),  # r1,r2,r3,r4: 4 ports
    ])


def fus004_barrier_head():
    return verify_uops([
        MicroOp(UOp.VMCALL, imm=3, fused=True),
        NOP,
    ])


def fus004_pair_into_jump():
    return verify_uops([
        MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, fused=True),
        MicroOp(UOp.JMP, imm=-8),  # loops to offset 0
    ])


def fus005_hoist_across_flag_writer():
    # the tail (architecturally at 0x108) was hoisted above the flag
    # writer at 0x104; both write flags, so the move was illegal
    return verify_uops([
        MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, x86_addr=0x100, fused=True),
        MicroOp(UOp.ADD2, rd=6, rs1=5, setflags=True, x86_addr=0x108),
        MicroOp(UOp.SUBI, rd=2, rs1=2, imm=1, setflags=True,
                x86_addr=0x104),
    ])


def ctl001_misaligned_branch():
    return verify_uops([
        MicroOp(UOp.BC, cond=Cond.E, imm=3),  # lands at byte 7
        NOP,
    ])


def stb001_truncated_stub():
    target = 0x40_0100
    uops = exit_stub(target)[:2]  # VMEXIT missing
    translation = make_translation(
        uops, exits=[(0, "jump", target)])
    return verify_translation(translation)


def stb001_wrong_target_immediates():
    uops = exit_stub(0x40_0100)
    translation = make_translation(
        uops, exits=[(0, "jump", 0x40_0200)])  # stub rebuilds 0x400100
    return verify_translation(translation)


def stb002_vmexit_wrong_register():
    return verify_uops([MicroOp(UOp.VMEXIT, rs1=5)])


def scr001_scratch_use_before_def():
    return verify_uops([MicroOp(UOp.ADD, rd=1, rs1=16, rs2=2)])


def scr001_defined_on_one_path_only():
    # r16 is defined only on the branch-taken path
    return verify_uops([
        MicroOp(UOp.BC, cond=Cond.E, imm=4),
        MicroOp(UOp.ADDI, rd=16, rs1=31, imm=7),
        MicroOp(UOp.ADD, rd=1, rs1=16, rs2=2),  # join: maybe undefined
    ])


def prs001_unbalanced_save_window():
    # flags saved and clobbered, but never restored before the VMEXIT
    uops = [
        MicroOp(UOp.RDFLG, rd=18),
        MicroOp(UOp.ADDI, rd=17, rs1=31, imm=1, setflags=True),
    ] + exit_stub(0x40_0100)
    return verify_uops(uops)


def enc001_oversized_immediate():
    return verify_uops([MicroOp(UOp.ADDI, rd=5, rs1=1, imm=999_999)])


def enc002_short_form_drops_rd():
    return verify_uops([MicroOp(UOp.NOP, rd=5)])


def enc002_bc_drops_setflags():
    return verify_uops([
        MicroOp(UOp.BC, cond=Cond.E, imm=0, setflags=True),
        NOP,
    ])


def cch001_corrupted_cache_image():
    memory = AddressSpace()
    uops = [MicroOp(UOp.ADDI, rd=1, rs1=1, imm=5)] + exit_stub(0x40_0100)
    translation = make_translation(uops, exits=[(4, "jump", 0x40_0100)],
                                   memory=memory)
    # flip the body micro-op behind the translation's back
    memory.write(translation.native_addr,
                 encode_uop(MicroOp(UOp.ADDI, rd=2, rs1=2, imm=9)))
    return verify_translation(translation, memory=memory)


def chn001_stale_chain_target():
    memory = AddressSpace()
    directory = TranslationDirectory(memory)
    target = 0x40_0100
    uops = exit_stub(target)
    translation = make_translation(uops, exits=[(0, "jump", target)],
                                   memory=memory)
    stub = translation.exits[0]
    # chain the stub to an address where no live translation exists
    stale = translation.native_addr + 0x100
    memory.write(stub.stub_addr, encode_uop(
        MicroOp(UOp.JMP, imm=stale - (stub.stub_addr + 4))))
    stub.chained_to = stale
    return verify_translation(translation, memory=memory,
                              directory=directory)


def chn002_unpatched_stub_not_vmexit():
    memory = AddressSpace()
    target = 0x40_0100
    uops = exit_stub(target)
    translation = make_translation(uops, exits=[(0, "jump", target)],
                                   memory=memory)
    # stomp the stub's VMEXIT in memory; the stub is not chained, so the
    # memory image must still leave through VMEXIT
    memory.write(translation.native_addr + 8, encode_uop(NOP))
    return verify_translation(translation, memory=memory)


def sid001_vmcall_without_side_table():
    translation = make_translation([MicroOp(UOp.VMCALL, imm=0)])
    return verify_translation(translation)


CORPUS = [
    ("FUS001", fus001_nonalu_head),
    ("FUS001", fus001_flagless_compare_branch),
    ("FUS002", fus002_overlapping_pairs),
    ("FUS002", fus002_dangling_head),
    ("FUS002", fus002_tail_not_consuming),
    ("FUS003", fus003_four_source_pair),
    ("FUS004", fus004_barrier_head),
    ("FUS004", fus004_pair_into_jump),
    ("FUS005", fus005_hoist_across_flag_writer),
    ("CTL001", ctl001_misaligned_branch),
    ("STB001", stb001_truncated_stub),
    ("STB001", stb001_wrong_target_immediates),
    ("STB002", stb002_vmexit_wrong_register),
    ("SCR001", scr001_scratch_use_before_def),
    ("SCR001", scr001_defined_on_one_path_only),
    ("PRS001", prs001_unbalanced_save_window),
    ("ENC001", enc001_oversized_immediate),
    ("ENC002", enc002_short_form_drops_rd),
    ("ENC002", enc002_bc_drops_setflags),
    ("CCH001", cch001_corrupted_cache_image),
    ("CHN001", chn001_stale_chain_target),
    ("CHN002", chn002_unpatched_stub_not_vmexit),
    ("SID001", sid001_vmcall_without_side_table),
]


class TestCorpus:
    @pytest.mark.parametrize("expected,fixture", CORPUS,
                             ids=[f"{rule}-{fn.__name__}"
                                  for rule, fn in CORPUS])
    def test_flagged_with_specific_rule(self, expected, fixture):
        report = fixture()
        assert expected in ids(report), \
            f"expected {expected}, got {sorted(ids(report))}:\n" \
            f"{report.format()}"

    def test_no_rule_is_vacuous(self):
        covered = {rule for rule, _fixture in CORPUS}
        assert covered == set(rule_ids())

    def test_violations_carry_microop_diagnostics(self):
        report = scr001_scratch_use_before_def()
        (violation,) = report.violations
        assert violation.index == 0
        assert violation.offset == 0
        assert violation.context  # surrounding disassembly present
        assert "r16" in violation.message

    def test_report_is_machine_readable(self):
        report = fus003_four_source_pair()
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["violation_counts"].get("FUS003", 0) >= 1
        assert all("rule" in entry for entry in payload["violations"])


class TestCleanStreams:
    def test_legal_fused_pair_passes(self):
        report = verify_uops([
            MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1, fused=True),
            MicroOp(UOp.ADD, rd=6, rs1=5, rs2=2),
        ])
        assert report.ok, report.format()

    def test_legal_compare_branch_pair_passes(self):
        report = verify_uops([
            MicroOp(UOp.SUBI, rd=31, rs1=1, imm=3, setflags=True,
                    fused=True),
            MicroOp(UOp.BC, cond=Cond.E, imm=0),
            NOP,
        ])
        assert report.ok, report.format()

    def test_canonical_stub_translation_passes(self):
        memory = AddressSpace()
        target = 0x40_0100
        uops = exit_stub(target)
        translation = make_translation(uops, exits=[(0, "jump", target)],
                                       memory=memory)
        report = verify_translation(translation, memory=memory)
        assert report.ok, report.format()

    def test_balanced_save_window_passes(self):
        uops = [
            MicroOp(UOp.RDFLG, rd=18),
            MicroOp(UOp.ADDI, rd=17, rs1=31, imm=1, setflags=True),
            MicroOp(UOp.WRFLG, rs1=18),
        ] + exit_stub(0x40_0100)
        report = verify_uops(uops)
        assert report.ok, report.format()


class TestFusionRegression:
    """The verifier caught a real emitter bug: compare-branch fusion in
    ``close_region`` could mark a pair *tail* as a second head, creating
    overlapping pairs.  Pin the fix."""

    def test_compare_branch_fusion_never_overlaps_pairs(self):
        uops = [
            MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1),
            MicroOp(UOp.AND, rd=6, rs1=5, rs2=2, setflags=True),
            MicroOp(UOp.BC, cond=Cond.NE, imm=0),
            NOP,
        ]
        fused, stats = fuse_microops(uops)
        assert stats.pairs == 1
        report = verify_uops(fused)
        assert report.ok, report.format()

    def test_compare_branch_fusion_still_happens_when_legal(self):
        uops = [
            MicroOp(UOp.SUBI, rd=31, rs1=1, imm=3, setflags=True),
            MicroOp(UOp.BC, cond=Cond.E, imm=0),
            NOP,
        ]
        fused, stats = fuse_microops(uops)
        assert stats.pairs == 1
        assert fused[0].fused
        assert verify_uops(fused).ok


class TestDataflowEngine:
    def test_definitely_defined_intersects_paths(self):
        cfg = build_cfg([
            MicroOp(UOp.BC, cond=Cond.E, imm=4),
            MicroOp(UOp.ADDI, rd=16, rs1=31, imm=7),   # skipped if taken
            MicroOp(UOp.ADDI, rd=17, rs1=31, imm=8),   # join point
        ])
        before = definitely_defined(cfg)
        assert 16 not in before[1]  # not defined at the ADDI itself
        # the join sees the taken path, where the ADDI never ran
        assert 16 not in before[2]

    def test_flag_provenance_tracks_save_window(self):
        cfg = build_cfg([
            MicroOp(UOp.RDFLG, rd=18),
            MicroOp(UOp.ADDI, rd=17, rs1=31, imm=1, setflags=True),
            MicroOp(UOp.WRFLG, rs1=18),
            MicroOp(UOp.VMEXIT, rs1=R_EXIT_TARGET),
        ])
        states = flag_provenance(cfg)
        assert states[1] == (True, 18)    # window open, flags still good
        assert states[2] == (False, 18)   # clobbered inside the window
        assert states[3] == (True, None)  # restored at the VMEXIT

    def test_liveness_flags_and_registers(self):
        cfg = build_cfg([
            MicroOp(UOp.SUBI, rd=31, rs1=1, imm=3, setflags=True),
            MicroOp(UOp.BC, cond=Cond.E, imm=0),
            NOP,
        ])
        live = live_registers(cfg)
        # the compare's flags are consumed by the BC
        assert FLAGS in live[0]

    def test_def_use_chains_connect_producer_to_consumer(self):
        cfg = build_cfg([
            MicroOp(UOp.ADDI, rd=5, rs1=1, imm=1),
            MicroOp(UOp.ADD, rd=6, rs1=5, rs2=2),
        ])
        chains = def_use_chains(cfg)
        assert chains.get(0) == [1]

    def test_reaching_definitions_merge_at_joins(self):
        cfg = build_cfg([
            MicroOp(UOp.BC, cond=Cond.E, imm=4),
            MicroOp(UOp.ADDI, rd=5, rs1=31, imm=7),
            MicroOp(UOp.ADD, rd=6, rs1=5, rs2=5),
        ])
        before = reaching_definitions(cfg)
        defs_of_r5 = {index for reg, index in before[2] if reg == 5}
        assert defs_of_r5 == {-1, 1}  # entry def and the ADDI both reach
