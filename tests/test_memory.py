"""Unit tests for the sparse address space and image loader."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import AddressSpace, Image, MemoryError_, load_image
from repro.memory.address_space import PAGE_SIZE


class TestAddressSpace:
    def test_fresh_memory_reads_zero(self):
        memory = AddressSpace()
        assert memory.read(0x1234, 8) == bytes(8)
        assert memory.read_u32(0xDEADBEEF) == 0

    def test_write_read_roundtrip(self):
        memory = AddressSpace()
        memory.write(0x400000, b"hello world")
        assert memory.read(0x400000, 11) == b"hello world"

    def test_write_spanning_pages(self):
        memory = AddressSpace()
        addr = PAGE_SIZE - 3
        memory.write(addr, b"abcdef")
        assert memory.read(addr, 6) == b"abcdef"
        assert memory.resident_pages == 2

    def test_scalar_little_endian(self):
        memory = AddressSpace()
        memory.write_u32(0x100, 0x11223344)
        assert memory.read(0x100, 4) == b"\x44\x33\x22\x11"
        assert memory.read_u16(0x100) == 0x3344
        assert memory.read_u8(0x103) == 0x11

    def test_u16_roundtrip(self):
        memory = AddressSpace()
        memory.write_u16(0x200, 0xBEEF)
        assert memory.read_u16(0x200) == 0xBEEF

    def test_i32_sign(self):
        memory = AddressSpace()
        memory.write_u32(0x300, 0xFFFFFFFF)
        assert memory.read_i32(0x300) == -1

    def test_u8_write_masks(self):
        memory = AddressSpace()
        memory.write_u8(0x10, 0x1FF)
        assert memory.read_u8(0x10) == 0xFF

    def test_sparse_pages_lazy(self):
        memory = AddressSpace()
        memory.read(0x10000000, 64)
        assert memory.resident_pages == 0
        memory.write_u8(0x10000000, 1)
        assert memory.resident_pages == 1

    def test_fill(self):
        memory = AddressSpace()
        memory.fill(0x50, 16, 0xAB)
        assert memory.read(0x50, 16) == b"\xab" * 16

    def test_snapshot_is_independent(self):
        memory = AddressSpace()
        memory.write_u32(0x40, 42)
        clone = memory.snapshot()
        memory.write_u32(0x40, 99)
        assert clone.read_u32(0x40) == 42

    def test_negative_read_size_rejected(self):
        with pytest.raises(MemoryError_):
            AddressSpace().read(0, -1)

    def test_read_past_end_rejected(self):
        with pytest.raises(MemoryError_):
            AddressSpace().read(0xFFFFFFFF, 2)

    @given(addr=st.integers(0, 0xFFFFF000),
           data=st.binary(min_size=1, max_size=64))
    def test_roundtrip_property(self, addr, data):
        memory = AddressSpace()
        memory.write(addr, data)
        assert memory.read(addr, len(data)) == data

    @given(addr=st.integers(0, 0xFFFFFF00),
           value=st.integers(0, 0xFFFFFFFF))
    def test_u32_roundtrip_property(self, addr, value):
        memory = AddressSpace()
        memory.write_u32(addr, value)
        assert memory.read_u32(addr) == value


class TestImageLoader:
    def test_load_image(self):
        image = Image(entry=0x400000)
        image.add_segment("text", 0x400000, b"\x90\xf4")
        image.add_segment("data", 0x500000, b"\x01\x02")
        memory = AddressSpace()
        entry = load_image(image, memory)
        assert entry == 0x400000
        assert memory.read(0x400000, 2) == b"\x90\xf4"
        assert memory.read(0x500000, 2) == b"\x01\x02"

    def test_overlap_rejected(self):
        image = Image(entry=0)
        image.add_segment("a", 0x1000, bytes(16))
        with pytest.raises(ValueError):
            image.add_segment("b", 0x100F, bytes(4))

    def test_adjacent_segments_allowed(self):
        image = Image(entry=0)
        image.add_segment("a", 0x1000, bytes(16))
        image.add_segment("b", 0x1010, bytes(4))
        assert image.total_bytes() == 20

    def test_text_property(self):
        image = Image(entry=0)
        image.add_segment("text", 0x400000, b"\x90")
        assert image.text.addr == 0x400000
        assert image.text.end == 0x400001

    def test_missing_text_raises(self):
        with pytest.raises(ValueError):
            _ = Image(entry=0).text
