"""Cluster tier: ring, spec, merge convergence, failover, repair.

The contract under test extends the single-server promise — **no
cluster failure may change architected results** — across sharding and
replication: reads fail over replica → other replica → local cache →
cold translation without raising into the VM, concurrent writers'
manifests converge to one merged union regardless of push order, and
anti-entropy re-replicates exactly what a dead replica missed.
"""

import json

import pytest

from repro.cluster import (
    ClusterRepository,
    LocalCluster,
    anti_entropy,
)
from repro.cluster.ring import HashRing
from repro.cluster.topology import ClusterSpec, ShardGroup
from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults import (
    make_fault,
    modes_for,
    needs_cluster,
    prepare_baseline,
    run_faulted,
)
from repro.isa.x86lite import assemble
from repro.persist import (
    RemoteRepository,
    TranslationRepository,
    capture_translations,
    config_fingerprint,
    image_fingerprint,
)

LOOP = """
start:
    mov ecx, 160
    mov esi, 0
top:
    add esi, ecx
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

CLUSTER_FAULTS = ("shard-down", "slow-shard", "replica-partition",
                  "stale-replica", "split-manifest")


def fast_client(spec, **kwargs):
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("breaker_cooldown", 0.0)
    kwargs.setdefault("sleep", lambda _s: None)
    return ClusterRepository(spec, **kwargs)


@pytest.fixture(scope="module")
def payload():
    vm = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm.load(assemble(LOOP))
    vm.run()
    records = capture_translations(vm.runtime.directory,
                                   vm.state.memory)
    return (records, config_fingerprint(vm.config),
            image_fingerprint(vm._image))


class TestHashRing:
    KEYS = [f"key-{index:04d}" for index in range(200)]

    def test_routing_is_deterministic_across_instances(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["a", "b", "c"])
        assert [one.group_for(k) for k in self.KEYS] == \
            [two.group_for(k) for k in self.KEYS]

    def test_vnodes_spread_keys_over_every_group(self):
        ring = HashRing(["shard0", "shard1", "shard2"])
        buckets = ring.partition(self.KEYS)
        assert set(buckets) == {"shard0", "shard1", "shard2"}
        # vnode smoothing: no group hoards the population
        assert all(len(keys) >= len(self.KEYS) // 10
                   for keys in buckets.values())

    def test_partition_preserves_caller_key_order(self):
        ring = HashRing(["a", "b"])
        buckets = ring.partition(self.KEYS)
        for keys in buckets.values():
            assert keys == sorted(keys, key=self.KEYS.index)

    def test_adding_a_group_moves_keys_only_to_it(self):
        before = HashRing(["a", "b"])
        after = HashRing(["a", "b", "c"])
        moved = 0
        for key in self.KEYS:
            old, new = before.group_for(key), after.group_for(key)
            if old != new:
                assert new == "c"       # consistent hashing: keys only
                moved += 1              # move into the new group's arcs
        assert 0 < moved < len(self.KEYS)

    def test_rejects_empty_and_duplicate_groups(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])


class TestClusterSpec:
    TEXT = "shard0=127.0.0.1:7001,127.0.0.1:7002;shard1=:7003,:7004"

    def test_spec_string_round_trips(self):
        spec = ClusterSpec.parse(self.TEXT)
        assert [g.name for g in spec.groups] == ["shard0", "shard1"]
        assert spec.groups[0].replicas == ("127.0.0.1:7001",
                                           "127.0.0.1:7002")
        assert ClusterSpec.parse(spec.to_string()) == spec
        assert ClusterSpec.parse(spec) is spec

    def test_dict_round_trips_through_json(self):
        spec = ClusterSpec.parse(self.TEXT)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert ClusterSpec.from_dict(wire) == spec
        assert ClusterSpec.parse(wire) == spec

    def test_replication_is_the_weakest_group(self):
        spec = ClusterSpec(groups=(
            ShardGroup(name="a", replicas=(":1", ":2", ":3")),
            ShardGroup(name="b", replicas=(":4",))))
        assert spec.replication == 1

    @pytest.mark.parametrize("bad", ["", "   ", "noequals",
                                     "=addr", "a=1;a=2", None, 7])
    def test_rejects_unusable_specs(self, bad):
        with pytest.raises(ValueError):
            ClusterSpec.parse(bad)

    def test_group_lookup(self):
        spec = ClusterSpec.parse(self.TEXT)
        assert spec.group("shard1").replicas == (":7003", ":7004")
        with pytest.raises(KeyError):
            spec.group("shard9")


class TestMergeConvergence:
    """Concurrent writers' manifests converge to one merged union
    regardless of push order — the property repair and quorum lean on."""

    def test_opposite_push_orders_converge(self, tmp_path, payload):
        records, config_fp, image_fp = payload
        assert len(records) >= 2
        half = len(records) // 2
        first, second = records[:half], records[half:]
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            one, two = fast_client(spec), fast_client(spec)
            one.save(first, config_fp, image_fp)
            two.save(second, config_fp, image_fp)
            # reversed arrival order of the *same* shares on a second
            # pair of pushes must be a no-op (merge semantics): the
            # loaded union is already complete and stays byte-stable
            union = one.load(config_fp, image_fp)
            assert [r["key"] for r in union] == \
                sorted(r["key"] for r in records)
            two.save(first, config_fp, image_fp)
            one.save(second, config_fp, image_fp)
            assert two.load(config_fp, image_fp) == union
            # every replica's on-disk manifest lists its group's share
            owners = spec.ring().partition(
                [r["key"] for r in records])
            for (group, index) in sorted(grid.servers):
                disk = TranslationRepository(
                    grid.repo_dir(group, index))
                held = {r["key"]
                        for r in disk.load(config_fp, image_fp)}
                assert held == set(owners.get(group, []))
            one.close()
            two.close()


class TestFailoverLadder:
    """replica → other replica → local cache → cold translation."""

    def owning_group(self, spec, records):
        owners = spec.ring().partition([r["key"] for r in records])
        return sorted(group for group, keys in owners.items()
                      if keys)[0], owners

    def test_dead_primary_fails_over_to_its_sibling(self, tmp_path,
                                                    payload):
        records, config_fp, image_fp = payload
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            fast_client(spec).save(records, config_fp, image_fp)
            group, _ = self.owning_group(spec, records)
            grid.stop_replica(group, 0)     # the first in failover order
            client = fast_client(spec, retries=2)
            loaded = client.load(config_fp, image_fp)
            assert {r["key"] for r in loaded} == \
                {r["key"] for r in records}
            stats = client.remote_stats.to_dict()
            assert stats["failovers"] > 0
            assert stats["group_degradations"] == 0
            client.close()

    def test_dead_group_falls_back_to_local(self, tmp_path, payload):
        records, config_fp, image_fp = payload
        local = TranslationRepository(tmp_path / "local")
        local.save(records, config_fp, image_fp)
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            fast_client(spec).save(records, config_fp, image_fp)
            group, _ = self.owning_group(spec, records)
            grid.stop_replica(group, 0)
            grid.stop_replica(group, 1)
            client = fast_client(spec, local=local)
            loaded = client.load(config_fp, image_fp)
            assert {r["key"] for r in loaded} == \
                {r["key"] for r in records}
            stats = client.remote_stats.to_dict()
            assert stats["group_degradations"] > 0
            assert stats["local_fallbacks"] > 0
            client.close()

    def test_dead_group_without_local_shrinks_to_cold(self, tmp_path,
                                                      payload):
        records, config_fp, image_fp = payload
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            fast_client(spec).save(records, config_fp, image_fp)
            group, owners = self.owning_group(spec, records)
            grid.stop_replica(group, 0)
            grid.stop_replica(group, 1)
            client = fast_client(spec)
            loaded = client.load(config_fp, image_fp)    # never raises
            surviving = {r["key"] for r in records} \
                - set(owners.get(group, []))
            assert {r["key"] for r in loaded} == surviving
            stats = client.remote_stats.to_dict()
            assert stats["cold_degradations"] > 0
            assert stats["local_fallbacks"] == 0
            client.close()

    def test_below_quorum_write_counts_a_miss(self, tmp_path, payload):
        records, config_fp, image_fp = payload
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            group, owners = self.owning_group(spec, records)
            grid.stop_replica(group, 1)     # one ack < majority of 2
            client = fast_client(spec)
            assert client.quorum_for(group) == 2
            written = client.save(records, config_fp, image_fp)
            assert written == len(records)  # the surviving replica took
            stats = client.remote_stats.to_dict()   # the whole share
            assert stats["quorum_misses"] >= 1
            assert stats["push_group_failures"] == 0
            client.close()

    def test_zero_ack_push_degrades_not_raises(self, tmp_path,
                                               payload):
        records, config_fp, image_fp = payload
        local = TranslationRepository(tmp_path / "local")
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            group, owners = self.owning_group(spec, records)
            grid.stop_replica(group, 0)
            grid.stop_replica(group, 1)
            client = fast_client(spec, local=local)
            written = client.save(records, config_fp, image_fp)
            assert written == len(records)  # dead group's share landed
            stats = client.remote_stats.to_dict()   # in the local repo
            assert stats["push_group_failures"] >= 1
            assert stats["local_fallbacks"] >= 1
            held = {r["key"]
                    for r in local.load(config_fp, image_fp)}
            assert held == set(owners.get(group, []))
            client.close()


class TestHealthOp:
    def test_health_answers_cluster_membership(self, tmp_path):
        with LocalCluster(tmp_path / "grid", shards=1,
                          replicas=2) as grid:
            address = grid.server("shard0", 1).address
            probe = RemoteRepository(address, retries=0,
                                     sleep=lambda _s: None)
            health = probe.health()
            assert health["shard_id"] == "shard0"
            assert health["role"] == "replica"
            assert health["draining"] is False
            assert health["objects"] == 0
            probe.close()

    def test_health_view_reports_dead_replicas(self, tmp_path):
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            grid.stop_replica("shard1", 1)
            client = fast_client(grid.spec(), retries=0)
            view = client.health_view()
            assert set(view) == {"shard0", "shard1"}
            live = [e for e in view["shard0"]
                    if e.get("health") is not None]
            assert len(live) == 2
            down = [e for e in view["shard1"]
                    if e.get("health") is None]
            assert len(down) == 1
            assert client.ping() is True    # one live replica per group
            client.close()


class TestAntiEntropy:
    def test_restarted_replica_heals_exactly_its_missed_share(
            self, tmp_path, payload):
        records, config_fp, image_fp = payload
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=2) as grid:
            spec = grid.spec()
            owners = spec.ring().partition(
                [r["key"] for r in records])
            victim = sorted(group for group, keys in owners.items()
                            if keys)[0]
            grid.stop_replica(victim, 1)
            fast_client(spec).save(records, config_fp, image_fp)
            grid.restart_replica(victim, 1)
            report = anti_entropy(spec, retries=1,
                                  sleep=lambda _s: None)
            assert report.ok, report.format()
            assert report.total_re_replicated == \
                len(owners.get(victim, []))
            # idempotent: a second pass finds nothing left to move
            second = anti_entropy(spec, retries=1,
                                  sleep=lambda _s: None)
            assert second.ok and second.total_re_replicated == 0
            disk = TranslationRepository(grid.repo_dir(victim, 1))
            held = {r["key"]
                    for r in disk.load(config_fp, image_fp)}
            assert held == set(owners.get(victim, []))

    def test_unreachable_replica_is_reported_not_fatal(self, tmp_path,
                                                       payload):
        records, config_fp, image_fp = payload
        with LocalCluster(tmp_path / "grid", shards=1,
                          replicas=2) as grid:
            spec = grid.spec()
            fast_client(spec).save(records, config_fp, image_fp)
            dead = grid.stop_replica("shard0", 1)
            report = anti_entropy(spec, timeout=0.5, retries=0,
                                  sleep=lambda _s: None)
            assert report.ok is False       # convergence unprovable
            assert report.unreachable == [dead]
            assert report.total_re_replicated == 0


class TestClusterFaultInjection:
    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        workdir = str(tmp_path_factory.mktemp("cluster-chaos"))
        return prepare_baseline("loop", LOOP, workdir, hot_threshold=30)

    @pytest.mark.parametrize("fault", CLUSTER_FAULTS)
    def test_each_class_is_survivable_at_full_rate(self, baseline,
                                                   fault):
        outcome = run_faulted(baseline, [fault], seed=11,
                              cluster=True, rate=1.0)
        assert outcome.ok, outcome.format()
        assert outcome.injected[fault] > 0
        assert outcome.stats["remote"]["requests"] > 0

    def test_cocktail_of_all_cluster_classes(self, baseline):
        for seed in (0, 1):
            outcome = run_faulted(baseline, list(CLUSTER_FAULTS), seed,
                                  cluster=True)
            assert outcome.ok, outcome.format()

    def test_mode_selection(self):
        for name in CLUSTER_FAULTS:
            assert make_fault(name).cluster is True
            assert needs_cluster([name]) is True
            assert modes_for([name]) == [True]    # warm surface only
        assert needs_cluster(["conn-refused"]) is False
