"""Shared hypothesis strategies for the test suite.

Centralizes how we generate random-but-valid x86lite instructions, operands
and straight-line programs, so that the ISA round-trip tests, the cracker
differential tests, and the SBT fusion equivalence tests all draw from the
same distribution.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MemOperand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import Cond, Reg

regs = st.sampled_from(list(Reg))
#: Registers safe to clobber in generated programs (keeps ESP/EBP sane).
scratch_regs = st.sampled_from([Reg.EAX, Reg.ECX, Reg.EDX, Reg.EBX,
                                Reg.ESI, Reg.EDI])
conds = st.sampled_from(list(Cond))
imm32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
imm8ish = st.integers(min_value=-128, max_value=127)
scales = st.sampled_from([1, 2, 4, 8])
disps = st.one_of(st.just(0), st.integers(-128, 127),
                  st.integers(-(2 ** 31), 2 ** 31 - 1))


@st.composite
def mem_operands(draw, size: int = 32) -> MemOperand:
    base = draw(st.one_of(st.none(), regs))
    index = draw(st.one_of(st.none(),
                           st.sampled_from([reg for reg in Reg
                                            if reg is not Reg.ESP])))
    scale = draw(scales) if index is not None else 1
    disp = draw(disps)
    return MemOperand(base, index, scale, disp, size)


#: Two-operand ALU instructions over registers/immediates/memory.
_ALU_OPS = [Op.ADD, Op.ADC, Op.SUB, Op.SBB, Op.AND, Op.OR, Op.XOR, Op.CMP]


@st.composite
def alu_instructions(draw) -> Instruction:
    op = draw(st.sampled_from(_ALU_OPS))
    form = draw(st.sampled_from(["rr", "rm", "mr", "ri", "mi"]))
    if form == "rr":
        operands = (RegOperand(draw(regs)), RegOperand(draw(regs)))
    elif form == "rm":
        operands = (RegOperand(draw(regs)), draw(mem_operands()))
    elif form == "mr":
        operands = (draw(mem_operands()), RegOperand(draw(regs)))
    elif form == "ri":
        operands = (RegOperand(draw(regs)), ImmOperand(draw(imm32)))
    else:
        operands = (draw(mem_operands()), ImmOperand(draw(imm32)))
    return Instruction(op=op, operands=operands)


@st.composite
def mov_instructions(draw) -> Instruction:
    form = draw(st.sampled_from(["ri", "rr", "rm", "mr", "mi"]))
    if form == "ri":
        operands = (RegOperand(draw(regs)), ImmOperand(draw(imm32)))
    elif form == "rr":
        operands = (RegOperand(draw(regs)), RegOperand(draw(regs)))
    elif form == "rm":
        operands = (RegOperand(draw(regs)), draw(mem_operands()))
    elif form == "mr":
        operands = (draw(mem_operands()), RegOperand(draw(regs)))
    else:
        operands = (draw(mem_operands()), ImmOperand(draw(imm32)))
    return Instruction(op=Op.MOV, operands=operands)


@st.composite
def misc_instructions(draw) -> Instruction:
    choice = draw(st.sampled_from(
        ["lea", "inc", "dec", "neg", "not", "push_r", "pop_r", "push_i",
         "shift", "imul2", "imul3", "test", "nop", "cmov", "movzx",
         "movsx", "xchg"]))
    if choice == "lea":
        return Instruction(Op.LEA, (RegOperand(draw(regs)),
                                    draw(mem_operands())))
    if choice in ("inc", "dec", "neg", "not"):
        op = {"inc": Op.INC, "dec": Op.DEC, "neg": Op.NEG,
              "not": Op.NOT}[choice]
        dst = draw(st.one_of(regs.map(RegOperand), mem_operands()))
        return Instruction(op, (dst,))
    if choice == "push_r":
        return Instruction(Op.PUSH, (RegOperand(draw(regs)),))
    if choice == "pop_r":
        return Instruction(Op.POP, (RegOperand(draw(regs)),))
    if choice == "push_i":
        return Instruction(Op.PUSH, (ImmOperand(draw(imm32)),))
    if choice == "shift":
        op = draw(st.sampled_from([Op.SHL, Op.SHR, Op.SAR]))
        count = draw(st.one_of(
            st.integers(1, 31).map(lambda n: ImmOperand(n, 8)),
            st.just(RegOperand(Reg.ECX))))
        dst = draw(st.one_of(regs.map(RegOperand), mem_operands()))
        return Instruction(op, (dst, count))
    if choice == "imul2":
        return Instruction(Op.IMUL, (RegOperand(draw(regs)),
                                     draw(st.one_of(regs.map(RegOperand),
                                                    mem_operands()))))
    if choice == "imul3":
        return Instruction(Op.IMUL, (RegOperand(draw(regs)),
                                     draw(st.one_of(regs.map(RegOperand),
                                                    mem_operands())),
                                     ImmOperand(draw(imm32))))
    if choice == "test":
        return Instruction(Op.TEST, (draw(st.one_of(regs.map(RegOperand),
                                                    mem_operands())),
                                     RegOperand(draw(regs))))
    if choice == "cmov":
        return Instruction(Op.CMOV, (RegOperand(draw(regs)),
                                     draw(st.one_of(regs.map(RegOperand),
                                                    mem_operands()))),
                           cond=draw(conds))
    if choice == "movzx":
        return Instruction(Op.MOVZX, (RegOperand(draw(regs)),
                                      draw(mem_operands(
                                          draw(st.sampled_from([8, 16]))))))
    if choice == "movsx":
        return Instruction(Op.MOVSX, (RegOperand(draw(regs)),
                                      draw(mem_operands(
                                          draw(st.sampled_from([8, 16]))))))
    if choice == "xchg":
        dst = draw(st.one_of(regs.map(RegOperand), mem_operands()))
        return Instruction(Op.XCHG, (dst, RegOperand(draw(regs))))
    return Instruction(Op.NOP)


#: Any encodable non-control-transfer instruction.
instructions = st.one_of(alu_instructions(), mov_instructions(),
                         misc_instructions())


@st.composite
def basic_blocks(draw, min_size: int = 1, max_size: int = 10) -> list:
    """A straight-line dynamic basic block (no control transfers)."""
    return draw(st.lists(instructions, min_size=min_size,
                         max_size=max_size))


_LOOP_REGS = ["eax", "ebx", "edx", "esi", "edi"]
_LOOP_OPS = ["add", "sub", "and", "or", "xor"]


@st.composite
def loop_programs(draw, min_iterations: int = 5,
                  max_iterations: int = 12) -> str:
    """Source with a hot counted loop: drives BBT, profiling and SBT."""
    lines = ["start:"]
    for reg in _LOOP_REGS:
        lines.append(f"    mov {reg}, {draw(st.integers(0, 0xFFFF))}")
    lines.append(f"    mov ecx, "
                 f"{draw(st.integers(min_iterations, max_iterations))}")
    lines.append("loop_top:")
    for _ in range(draw(st.integers(1, 6))):
        reg = draw(st.sampled_from(_LOOP_REGS))
        op = draw(st.sampled_from(_LOOP_OPS))
        if draw(st.booleans()):
            lines.append(f"    {op} {reg}, "
                         f"{draw(st.sampled_from(_LOOP_REGS))}")
        else:
            lines.append(f"    {op} {reg}, "
                         f"{draw(st.integers(-500, 500))}")
    lines += ["    dec ecx", "    jnz loop_top",
              "    mov eax, 1", "    mov ebx, esi", "    int 0x80",
              "    mov eax, 0", "    mov ebx, 0", "    int 0x80"]
    return "\n".join(lines)
