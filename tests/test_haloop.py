"""Tests for the native HAloop (Fig. 6a) — hardware-accelerated BBT."""

import pytest

from repro.hwassist.haloop import haloop_uops, run_haloop
from repro.isa.fusible import FusibleMachine, decode_stream, \
    encode_stream
from repro.isa.x86lite import assemble
from repro.memory import AddressSpace, load_image
from repro.translator import crack
from repro.translator.emit import scan_block

LOOP_ADDR = 0x1000_0000
CODE_PTR = 0x2000_0000


def machine_with(source):
    image = assemble(source)
    memory = AddressSpace()
    entry = load_image(image, memory)
    return FusibleMachine(memory), entry


class TestHALoop:
    def test_translates_block_body(self):
        machine, entry = machine_with(
            "start:\nmov eax, 1\nadd eax, 2\nlea ebx, [eax+eax*2]\nret")
        run = run_haloop(machine, LOOP_ADDR, entry, CODE_PTR)
        assert run.stopped_on == "cti"
        assert run.instructions_translated == 3  # body, not the RET

    def test_output_matches_software_cracker(self):
        source = "start:\nmov eax, 1\nadd eax, 2\nlea ebx, [eax+eax*2]\nret"
        machine, entry = machine_with(source)
        run = run_haloop(machine, LOOP_ADDR, entry, CODE_PTR)
        expected = []
        for instr in scan_block(machine.memory, entry)[:-1]:
            expected.extend(crack(instr).uops)
        produced = decode_stream(run.code_bytes)
        assert [str(u) for u in produced] == [str(u) for u in expected]

    def test_stops_on_complex(self):
        machine, entry = machine_with(
            "start:\nmov eax, 1\nmov ebx, 0\ndiv ebx\nhlt")
        run = run_haloop(machine, LOOP_ADDR, entry, CODE_PTR)
        assert run.stopped_on == "complex"
        assert run.instructions_translated == 2

    def test_pointer_bookkeeping(self):
        machine, entry = machine_with("start:\nmov eax, 1\nret")
        run = run_haloop(machine, LOOP_ADDR, entry, CODE_PTR)
        assert run.final_x86_pc == entry + 5  # consumed "mov eax, 1"
        assert run.uop_bytes_emitted == len(run.code_bytes)
        assert run.uop_bytes_emitted > 0

    def test_loop_cost_is_low(self):
        # the whole point of the assist: a handful of micro-ops per
        # translated instruction instead of ~105
        machine, entry = machine_with(
            "start:\n" + "\n".join(["add eax, 1"] * 10) + "\nret")
        run = run_haloop(machine, LOOP_ADDR, entry, CODE_PTR)
        per_instr = run.uops_executed / run.instructions_translated
        assert per_instr < 20

    def test_loop_contains_fused_pairs(self):
        uops = haloop_uops()
        assert sum(1 for u in uops if u.fused) == 2  # the :: pairs

    def test_loop_roundtrips_through_encoder(self):
        uops = haloop_uops()
        assert [str(u) for u in decode_stream(encode_stream(uops))] == \
            [str(u) for u in uops]

    def test_runaway_guard(self):
        machine, entry = machine_with("start:\nmov eax, 1\nret")
        with pytest.raises(Exception):
            run_haloop(machine, LOOP_ADDR, entry, CODE_PTR, max_uops=3)
