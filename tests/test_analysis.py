"""Analysis-layer tests: Eq. 1/2 models, curves, breakeven, reporting."""

import math

import pytest

from repro.analysis import (
    TranslationOverheadModel,
    ascii_chart,
    breakeven_for_app,
    format_table,
    half_gain_point,
    hot_threshold,
    normalized_curve,
    sbt_breakeven_executions,
    suite_average_curve,
    translation_overhead,
)
from repro.analysis.breakeven import format_breakeven
from repro.analysis.frequency_profile import frequency_profile
from repro.analysis.startup_curves import curve_table, log_grid
from repro.core import VM_CONFIGS, ref_superscalar, vm_fe, vm_soft
from repro.timing import simulate_startup
from repro.workloads import generate_workload, winstone_app


class TestEquationTwo:
    def test_paper_threshold_is_8000(self):
        # N = 1200 / 0.15 = 8000 (Section 3.2)
        assert sbt_breakeven_executions(1200, 1.15) == pytest.approx(8000)
        assert hot_threshold() == 8000

    def test_faster_optimizer_lowers_threshold(self):
        assert sbt_breakeven_executions(600, 1.15) < \
            sbt_breakeven_executions(1200, 1.15)

    def test_bigger_speedup_lowers_threshold(self):
        assert sbt_breakeven_executions(1200, 1.20) < \
            sbt_breakeven_executions(1200, 1.15)

    def test_interpreter_style_threshold(self):
        # with interpretation ~45x slower, p ~ 45 and N ~ 25 (Section 3)
        value = sbt_breakeven_executions(1152, 45.0)
        assert 20 <= value <= 30

    def test_no_speedup_rejected(self):
        with pytest.raises(ValueError):
            sbt_breakeven_executions(1200, 1.0)


class TestEquationOne:
    def test_paper_overheads(self):
        model = translation_overhead()
        assert model.bbt_overhead == pytest.approx(15.75e6)  # Section 3.2
        assert model.sbt_overhead == pytest.approx(5.022e6)

    def test_bbt_dominates(self):
        assert translation_overhead().bbt_fraction > 0.5

    def test_custom_parameters(self):
        model = TranslationOverheadModel(m_bbt=1000, m_sbt=10,
                                         delta_bbt=10, delta_sbt=100)
        assert model.total == 10_000 + 1_000


class TestCurves:
    @pytest.fixture(scope="class")
    def sim_pair(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=20_000_000, seed=0)
        ref = simulate_startup(ref_superscalar(), workload)
        soft = simulate_startup(vm_soft(), workload)
        fe = simulate_startup(vm_fe(), workload)
        return workload, ref, soft, fe

    def test_normalized_curve_approaches_one(self, sim_pair):
        workload, ref, _soft, _fe = sim_pair
        grid = log_grid(1e3, ref.total_cycles, per_decade=2)
        curve = normalized_curve(ref, workload.app.ipc_ref, grid)
        # cold-start losses still weigh on a 20M-instruction trace
        assert curve[-1] == pytest.approx(1.0, abs=0.2)
        assert curve[0] < curve[-1]  # warms up over time

    def test_vm_curve_below_reference_early(self, sim_pair):
        workload, ref, soft, _fe = sim_pair
        grid = log_grid(1e5, 1e6, per_decade=2)
        ref_curve = normalized_curve(ref, workload.app.ipc_ref, grid)
        soft_curve = normalized_curve(soft, workload.app.ipc_ref, grid)
        assert all(s <= r for s, r in zip(soft_curve, ref_curve))

    def test_suite_average(self, sim_pair):
        workload, ref, _soft, _fe = sim_pair
        grid = log_grid(1e4, 1e6, per_decade=1)
        averaged = suite_average_curve(
            [ref, ref], {"Word": workload.app.ipc_ref}, grid)
        single = normalized_curve(ref, workload.app.ipc_ref, grid)
        assert averaged == pytest.approx(single)

    def test_half_gain_point_finite_for_fe(self, sim_pair):
        _workload, ref, _soft, fe = sim_pair
        point = half_gain_point(fe, ref, steady_gain=0.08)
        assert point < ref.total_cycles

    def test_half_gain_unreachable_reports_inf(self, sim_pair):
        _workload, ref, _soft, _fe = sim_pair
        assert math.isinf(half_gain_point(ref, ref, steady_gain=0.08))

    def test_curve_table_rows(self, sim_pair):
        workload, ref, _soft, _fe = sim_pair
        grid = log_grid(1e4, 1e5, per_decade=1)
        rows = curve_table(grid, [
            ("ref", normalized_curve(ref, workload.app.ipc_ref, grid))])
        assert len(rows) == len(grid)
        assert "ref" in rows[0]


class TestBreakevenHelpers:
    def test_breakeven_for_app_produces_all_configs(self):
        row = breakeven_for_app(winstone_app("Winzip"),
                                list(VM_CONFIGS().values()),
                                ref_superscalar(),
                                dyn_instrs=20_000_000)
        assert set(row.cycles_by_config) == {"VM.soft", "VM.be", "VM.fe"}

    def test_capped_values(self):
        from repro.analysis.breakeven import BreakevenRow
        row = BreakevenRow("X", {"a": 402e6, "b": 13e6})
        capped = row.capped(200e6)
        assert capped["a"] == 200e6 and capped["b"] == 13e6

    def test_format_breakeven(self):
        assert format_breakeven(13.3e6) == "13.3M"
        assert format_breakeven(float("inf")) == "never"
        assert format_breakeven(2.5e9) == "2.50G"


class TestFrequencyProfileHelpers:
    def test_profile_totals(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=5_000_000, seed=0)
        profile = frequency_profile(workload)
        assert profile.total_static == workload.static_instrs
        assert profile.total_dynamic == workload.total_dynamic_instrs
        assert sum(profile.dynamic_fractions()) == pytest.approx(1.0)

    def test_static_above_thresholds(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=5_000_000, seed=0)
        profile = frequency_profile(workload, thresholds=(25, 8000))
        assert profile.static_above(25) >= profile.static_above(8000)


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"],
                            [["a", 1.5], ["b", float("inf")]],
                            title="T")
        assert "T" in text and "a" in text and "inf" in text

    def test_format_table_large_numbers(self):
        text = format_table(["v"], [[123456.0]])
        assert "1.23e+05" in text

    def test_ascii_chart_renders_bars(self):
        text = ascii_chart(["t1"], {"ref": [1.0], "vm": [0.5]}, width=10)
        assert text.count("#") == 15  # 10 + 5

    def test_sparkline(self):
        from repro.analysis.reporting import sparkline
        line = sparkline([0, 1, 2, 3, 4], width=5)
        assert len(line) == 5
