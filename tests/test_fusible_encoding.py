"""Encode/decode tests for the fusible micro-op ISA."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.fusible import (
    MicroOp,
    UOp,
    UopDecodeError,
    UopEncodeError,
    decode_stream,
    decode_uop,
    encode_stream,
    encode_uop,
    stream_length,
)
from repro.isa.fusible.opcodes import (
    I_FORM_OPS,
    LOAD_OPS,
    R_FORM_OPS,
    RR_FORM_OPS,
    SHORT_OPS,
    STORE_OPS,
)
from repro.isa.x86lite.registers import Cond


class TestFormats:
    def test_short_op_is_two_bytes(self):
        uop = MicroOp(UOp.ADD2, rd=3, rs1=5)
        assert uop.length == 2
        assert len(encode_uop(uop)) == 2

    def test_long_op_is_four_bytes(self):
        uop = MicroOp(UOp.ADD, rd=20, rs1=21, rs2=22)
        assert uop.length == 4
        assert len(encode_uop(uop)) == 4

    def test_discriminator_in_first_parcel(self):
        short = encode_uop(MicroOp(UOp.MOV2, rd=1, rs1=2))
        long_ = encode_uop(MicroOp(UOp.ADD, rd=1, rs1=2, rs2=3))
        first_short = int.from_bytes(short[:2], "little")
        first_long = int.from_bytes(long_[:2], "little")
        assert not first_short & 0x4000
        assert first_long & 0x4000

    def test_fused_bit(self):
        plain = encode_uop(MicroOp(UOp.ADD2, rd=1, rs1=2))
        fused = encode_uop(MicroOp(UOp.ADD2, rd=1, rs1=2, fused=True))
        assert plain != fused
        assert decode_uop(fused).fused
        assert not decode_uop(plain).fused

    def test_setflags_bit(self):
        uop = MicroOp(UOp.ADD, rd=1, rs1=2, rs2=3, setflags=True)
        assert decode_uop(encode_uop(uop)).setflags


class TestErrors:
    def test_short_register_out_of_range(self):
        with pytest.raises(UopEncodeError):
            encode_uop(MicroOp(UOp.ADD2, rd=16, rs1=1))

    def test_imm13_out_of_range(self):
        with pytest.raises(UopEncodeError):
            encode_uop(MicroOp(UOp.ADDI, rd=1, rs1=2, imm=5000))

    def test_unsigned_imm_rejects_negative(self):
        with pytest.raises(UopEncodeError):
            encode_uop(MicroOp(UOp.ORI, rd=1, rs1=2, imm=-1))

    def test_imm4_out_of_range(self):
        with pytest.raises(UopEncodeError):
            encode_uop(MicroOp(UOp.ADDI2, rd=1, imm=9))

    def test_bc_without_cond(self):
        with pytest.raises(UopEncodeError):
            encode_uop(MicroOp(UOp.BC, imm=4))

    def test_truncated_stream(self):
        with pytest.raises(UopDecodeError):
            decode_uop(b"\x00")

    def test_truncated_long_op(self):
        data = encode_uop(MicroOp(UOp.ADD, rd=1, rs1=2, rs2=3))
        with pytest.raises(UopDecodeError):
            decode_uop(data[:2])

    def test_invalid_long_opcode(self):
        # opcode 63 is unassigned
        data = ((1 << 30) | (63 << 24)).to_bytes(4, "big")
        word = int.from_bytes(data, "big")
        raw = ((word >> 16).to_bytes(2, "little")
               + (word & 0xFFFF).to_bytes(2, "little"))
        with pytest.raises(UopDecodeError):
            decode_uop(raw)


# -- hypothesis strategies over the micro-op space ---------------------------

def _uop_strategy():
    def build(draw):
        kind = draw(st.sampled_from(
            ["short", "r", "i", "rr", "mem", "lui", "bc", "jmp", "sel",
             "special"]))
        fused = draw(st.booleans())
        if kind == "short":
            op = draw(st.sampled_from(sorted(SHORT_OPS,
                                             key=lambda o: o.value)))
            rd = draw(st.integers(0, 15))
            if op is UOp.ADDI2:
                return MicroOp(op, rd=rd, imm=draw(st.integers(-8, 7)),
                               fused=fused,
                               setflags=draw(st.booleans()))
            return MicroOp(op, rd=rd, rs1=draw(st.integers(0, 15)),
                           fused=fused, setflags=draw(st.booleans()))
        reg = st.integers(0, 31)
        if kind == "r":
            ops = sorted(R_FORM_OPS - {UOp.SEL}, key=lambda o: o.value)
            return MicroOp(draw(st.sampled_from(ops)), rd=draw(reg),
                           rs1=draw(reg), rs2=draw(reg), fused=fused,
                           setflags=draw(st.booleans()))
        if kind == "i":
            op = draw(st.sampled_from(sorted(I_FORM_OPS,
                                             key=lambda o: o.value)))
            if op in (UOp.ADDI, UOp.SUBI):
                imm = draw(st.integers(-4096, 4095))
            else:
                imm = draw(st.integers(0, 8191))
            return MicroOp(op, rd=draw(reg), rs1=draw(reg), imm=imm,
                           fused=fused, setflags=draw(st.booleans()))
        if kind == "rr":
            op = draw(st.sampled_from(sorted(RR_FORM_OPS,
                                             key=lambda o: o.value)))
            return MicroOp(op, rd=draw(reg), rs1=draw(reg), fused=fused,
                           setflags=draw(st.booleans()))
        if kind == "mem":
            op = draw(st.sampled_from(sorted(LOAD_OPS | STORE_OPS,
                                             key=lambda o: o.value)))
            return MicroOp(op, rd=draw(reg), rs1=draw(reg),
                           imm=draw(st.integers(-4096, 4095)), fused=fused)
        if kind == "lui":
            return MicroOp(UOp.LUI, rd=draw(reg),
                           imm=draw(st.integers(0, (1 << 19) - 1)),
                           fused=fused)
        if kind == "bc":
            return MicroOp(UOp.BC, cond=draw(st.sampled_from(list(Cond))),
                           imm=draw(st.integers(-4096, 4095)), fused=fused)
        if kind == "jmp":
            return MicroOp(UOp.JMP,
                           imm=draw(st.integers(-(1 << 23),
                                                (1 << 23) - 1)),
                           fused=fused)
        if kind == "sel":
            return MicroOp(UOp.SEL, rd=draw(reg), rs1=draw(reg),
                           cond=draw(st.sampled_from(list(Cond))),
                           fused=fused)
        op = draw(st.sampled_from([UOp.NOP, UOp.HALT, UOp.VMEXIT, UOp.JR,
                                   UOp.RDFLG, UOp.WRFLG, UOp.LDCSR,
                                   UOp.XLTX86, UOp.VMCALL, UOp.JCSRC,
                                   UOp.JCSRT]))
        if op in (UOp.VMCALL, UOp.JCSRC, UOp.JCSRT):
            return MicroOp(op, imm=draw(st.integers(0, 100)
                                        if op is UOp.VMCALL
                                        else st.integers(-4096, 4095)),
                           fused=fused)
        return MicroOp(op, rd=draw(reg), rs1=draw(reg), fused=fused)
    return st.composite(build)()


uops = _uop_strategy()


class TestRoundtrip:
    @given(uop=uops)
    @settings(max_examples=400)
    def test_roundtrip(self, uop):
        decoded = decode_uop(encode_uop(uop))
        assert decoded.op is uop.op
        assert decoded.fused == uop.fused
        # compare only the fields that the format encodes for this op
        assert str(decoded) == str(uop.with_fused(uop.fused))

    @given(sequence=st.lists(uops, min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_stream_roundtrip(self, sequence):
        data = encode_stream(sequence)
        assert len(data) == stream_length(sequence)
        decoded = decode_stream(data)
        assert [str(uop) for uop in decoded] == \
            [str(uop) for uop in sequence]
