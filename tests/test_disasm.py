"""Disassembler tests."""

from repro.isa.x86lite import assemble
from repro.isa.x86lite.disasm import (
    DisasmLine,
    disassemble_memory,
    disassemble_range,
    discover_code,
    format_listing,
    iter_instructions,
)
from repro.memory import AddressSpace, load_image


def setup(source):
    image = assemble(source)
    memory = AddressSpace()
    entry = load_image(image, memory)
    return memory, image, entry


class TestLinearDisassembly:
    def test_range_roundtrip(self):
        source = "start:\nmov eax, 1\nadd eax, 2\nret"
        _memory, image, _entry = setup(source)
        lines = disassemble_range(image.text.data, base=image.text.addr)
        assert [str(line.instr) for line in lines] == \
            ["mov eax, 0x1", "add eax, 0x2", "ret"]

    def test_raw_bytes_match(self):
        _memory, image, _entry = setup("start:\nmov eax, 1\nret")
        lines = disassemble_range(image.text.data, base=image.text.addr)
        assert b"".join(line.raw for line in lines) == image.text.data

    def test_limit(self):
        _memory, image, _entry = setup("start:\nnop\nnop\nnop\nret")
        lines = disassemble_range(image.text.data, limit=2)
        assert len(lines) == 2

    def test_stops_at_bad_bytes(self):
        lines = disassemble_range(b"\x90\x06\x90")
        assert len(lines) == 1  # 0x06 is invalid

    def test_from_memory(self):
        memory, _image, entry = setup("start:\nmov eax, 1\nhlt")
        lines = disassemble_memory(memory, entry, 2)
        assert len(lines) == 2
        assert lines[1].instr.op.value == "hlt"

    def test_line_format(self):
        memory, _image, entry = setup("start:\nmov eax, 1\nhlt")
        line = disassemble_memory(memory, entry, 1)[0]
        text = line.format()
        assert f"{entry:#010x}" in text
        assert "mov eax" in text

    def test_iter_instructions(self):
        memory, image, entry = setup("start:\nnop\nnop\nret")
        pairs = list(iter_instructions(memory, entry, entry + 3))
        assert [instr.op.value for _addr, instr in pairs] == \
            ["nop", "nop", "ret"]


class TestCodeDiscovery:
    def test_discovers_both_branch_directions(self):
        source = """
        start:
            cmp eax, 0
            je other
            mov ebx, 1
            ret
        other:
            mov ebx, 2
            ret
        """
        memory, image, entry = setup(source)
        instrs = discover_code(memory, entry)
        assert image.labels["other"] in instrs
        # both RETs found
        rets = [i for i in instrs.values() if i.op.value == "ret"]
        assert len(rets) == 2

    def test_follows_calls_and_returns(self):
        source = """
        start:
            call fn
            hlt
        fn:
            ret
        """
        memory, image, entry = setup(source)
        instrs = discover_code(memory, entry)
        assert image.labels["fn"] in instrs
        assert any(i.op.value == "hlt" for i in instrs.values())

    def test_stops_at_indirect(self):
        memory, _image, entry = setup("start:\njmp eax\nnop")
        instrs = discover_code(memory, entry)
        assert len(instrs) == 1

    def test_limit_respected(self):
        source = "start:\n" + "\n".join(["nop"] * 50) + "\nret"
        memory, _image, entry = setup(source)
        instrs = discover_code(memory, entry, max_instructions=10)
        assert len(instrs) == 10

    def test_format_listing_with_symbols(self):
        source = "start:\nnop\ntarget:\nret"
        memory, image, entry = setup(source)
        lines = disassemble_memory(memory, entry, 2)
        listing = format_listing(lines, symbols=image.labels)
        assert "target:" in listing
