"""Machine-configuration and cost-model tests (Table 2 semantics)."""

import pytest

from repro.core import (
    ALL_CONFIGS,
    VM_CONFIGS,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.core.config import (
    DEFAULT_HOT_THRESHOLD,
    INTERP_HOT_THRESHOLD,
    TranslationCosts,
)
from repro.timing.pipeline import mode_costs_for
from repro.workloads import winstone_app


class TestConfigFactories:
    def test_names(self):
        assert ref_superscalar().name == "Ref: superscalar"
        assert vm_soft().name == "VM.soft"
        assert vm_be().name == "VM.be"
        assert vm_fe().name == "VM.fe"

    def test_vm_flags(self):
        assert not ref_superscalar().is_vm
        assert all(config.is_vm for config in VM_CONFIGS().values())

    def test_initial_emulation_strategies(self):
        assert ref_superscalar().initial_emulation == "native"
        assert vm_soft().initial_emulation == "bbt"
        assert vm_be().initial_emulation == "bbt"
        assert vm_fe().initial_emulation == "x86-mode"
        assert interp_sbt().initial_emulation == "interp"

    def test_uses_bbt(self):
        assert vm_soft().uses_bbt and vm_be().uses_bbt
        assert not vm_fe().uses_bbt and not interp_sbt().uses_bbt

    def test_bbt_costs_match_paper(self):
        # Section 5.3: 83 cycles software, 20 with the XLTx86 assist
        assert vm_soft().costs.bbt_cycles_per_instr == 83.0
        assert vm_be().costs.bbt_cycles_per_instr == 20.0
        assert vm_fe().costs.bbt_cycles_per_instr is None

    def test_hot_thresholds(self):
        assert DEFAULT_HOT_THRESHOLD == 8000
        assert INTERP_HOT_THRESHOLD == 25
        for config in VM_CONFIGS().values():
            assert config.hot_threshold == 8000
        assert interp_sbt().hot_threshold == 25

    def test_hotspot_detectors(self):
        assert vm_soft().hotspot_detector == "software"
        assert vm_fe().hotspot_detector == "bbb"
        assert ref_superscalar().hotspot_detector == "none"

    def test_shared_substrate(self):
        # Table 2: one microarchitecture substrate for all configs
        base = ref_superscalar()
        for config in ALL_CONFIGS().values():
            assert config.l1i == base.l1i
            assert config.l1d == base.l1d
            assert config.l2 == base.l2
            assert config.memory_latency == base.memory_latency
            assert config.pipeline.width == 3
            assert config.pipeline.rob_entries == 128
            assert config.pipeline.issue_queue_slots == 36

    def test_cache_parameters_match_table2(self):
        base = ref_superscalar()
        assert base.l1i.size == 64 * 1024 and base.l1i.assoc == 2
        assert base.l1i.latency == 2
        assert base.l1d.latency == 3
        assert base.l2.size == 2 * 1024 * 1024 and base.l2.latency == 12
        assert base.memory_latency == 168

    def test_with_override(self):
        config = vm_soft().with_(hot_threshold=100)
        assert config.hot_threshold == 100
        assert config.name == "VM.soft"
        assert vm_soft().hot_threshold == 8000  # original untouched

    def test_all_configs_registry(self):
        configs = ALL_CONFIGS()
        assert len(configs) == 5
        assert set(VM_CONFIGS()) <= set(configs)

    def test_translation_costs_defaults(self):
        costs = TranslationCosts()
        assert costs.bbt_native_instrs_per_instr == 105.0
        assert costs.sbt_native_instrs_per_instr == 1674.0
        assert costs.xltx86_latency == 4


class TestModeCosts:
    @pytest.fixture
    def app(self):
        return winstone_app("Word")

    def test_sbt_faster_than_ref(self, app):
        costs = mode_costs_for(vm_soft(), app)
        assert costs.sbt_cpi < costs.ref_cpi

    def test_bbt_code_slower_than_sbt(self, app):
        costs = mode_costs_for(vm_soft(), app)
        assert costs.bbt_code_cpi > costs.sbt_cpi

    def test_stall_dilution_bounds_bbt_penalty(self, app):
        # with stalls diluting, BBT code is between SBT code and the
        # undiluted 1/0.84 penalty
        costs = mode_costs_for(vm_soft(), app)
        assert costs.bbt_code_cpi < costs.sbt_cpi / app.bbt_relative_ipc

    def test_x86_mode_equals_ref(self, app):
        costs = mode_costs_for(vm_fe(), app)
        assert costs.x86_mode_cpi == costs.ref_cpi

    def test_translate_costs_per_config(self, app):
        assert mode_costs_for(vm_soft(), app).bbt_translate_cpi == 83.0
        assert mode_costs_for(vm_be(), app).bbt_translate_cpi == 20.0
        assert mode_costs_for(vm_fe(), app).bbt_translate_cpi == 0.0
        assert mode_costs_for(ref_superscalar(),
                              app).sbt_translate_cpi == 0.0

    def test_xlt_power_only_for_be(self, app):
        assert mode_costs_for(vm_be(), app).xlt_busy_per_instr > 0
        assert mode_costs_for(vm_soft(), app).xlt_busy_per_instr == 0

    def test_cold_execution_cpi_dispatch(self, app):
        costs = mode_costs_for(vm_soft(), app)
        assert costs.cold_execution_cpi("bbt") == costs.bbt_code_cpi
        assert costs.cold_execution_cpi("x86-mode") == costs.x86_mode_cpi
        assert costs.cold_execution_cpi("interp") == costs.interp_cpi
        assert costs.cold_execution_cpi("native") == costs.ref_cpi

    def test_interp_cpi_in_paper_range(self, app):
        # Section 1.1: interpretation is 10x-100x slower than native
        costs = mode_costs_for(interp_sbt(), app)
        assert 10 <= costs.interp_cpi * app.ipc_ref <= 100
