"""Cache model tests."""

from repro.core.config import CacheConfig
from repro.timing.caches import ColdFootprintModel, SetAssociativeCache


def small_cache(size=1024, assoc=2, line=64, latency=2, **kwargs):
    return SetAssociativeCache(CacheConfig(size, assoc, line, latency),
                               **kwargs)


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache(memory_latency=100)
        assert cache.access(0x1000) == 102  # cold miss
        assert cache.access(0x1000) == 2    # hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = small_cache(memory_latency=100)
        cache.access(0x1000)
        assert cache.access(0x103F) == 2  # same 64B line

    def test_lru_eviction(self):
        cache = small_cache(size=2 * 64, assoc=2, memory_latency=100)
        # one set; two ways
        cache.access(0x0000)
        cache.access(0x1000)
        cache.access(0x0000)   # refresh
        cache.access(0x2000)   # evicts 0x1000 (LRU)
        assert cache.contains(0x0000)
        assert not cache.contains(0x1000)
        assert cache.contains(0x2000)

    def test_set_indexing(self):
        cache = small_cache(size=4 * 64, assoc=1)
        cache.access(0x0000)
        cache.access(0x0040)
        assert cache.contains(0x0000)  # different sets, no conflict

    def test_next_level_chaining(self):
        l2 = small_cache(size=4096, assoc=4, latency=12,
                         memory_latency=168)
        l1 = small_cache(latency=2, next_level=l2)
        first = l1.access(0x5000)
        assert first == 2 + 12 + 168
        l1.invalidate_all()
        second = l1.access(0x5000)   # L1 miss, L2 hit
        assert second == 2 + 12

    def test_access_range_touches_each_line(self):
        cache = small_cache(memory_latency=100)
        cycles = cache.access_range(0x1000, 130)  # 3 lines
        assert cache.misses == 3
        assert cycles == 3 * 102

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    def test_config_sets_property(self):
        config = CacheConfig(64 * 1024, 2, 64, 2)
        assert config.sets == 512


class TestColdFootprintModel:
    def test_first_touch_charges(self):
        model = ColdFootprintModel()
        assert model.touch(0x1000, 64, charge=180) == 180
        assert model.touch(0x1000, 64, charge=180) == 0  # warm now

    def test_multi_line_ranges(self):
        model = ColdFootprintModel()
        assert model.touch(0x1000, 200, charge=10) == 40  # 4 lines
        assert model.cold_lines == 4

    def test_partial_overlap(self):
        model = ColdFootprintModel()
        model.touch(0x1000, 64, charge=10)
        assert model.touch(0x1020, 96, charge=10) == 10  # one new line

    def test_is_warm(self):
        model = ColdFootprintModel()
        model.touch(0x1000, 1, charge=5)
        assert model.is_warm(0x1010)
        assert not model.is_warm(0x2000)

    def test_scrub(self):
        model = ColdFootprintModel()
        model.touch(0x1000, 64, charge=10)
        model.scrub()
        assert model.touch(0x1000, 64, charge=10) == 10

    def test_cycle_accounting(self):
        model = ColdFootprintModel()
        model.touch(0, 64, 7)
        model.touch(64, 64, 7)
        assert model.cold_cycles == 14
