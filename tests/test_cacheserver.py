"""Shared translation-cache server: protocol codec, ops, end-to-end.

The server under test is a real one — every test speaks actual frames
over an actual socket (TCP on loopback), because the failure modes the
robustness plan cares about (torn frames, mid-stream garbage, dropped
connections) only exist on real transports.
"""

import socket
import threading
import time

import pytest

from repro.cacheserver import CacheServer, protocol
from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.isa.x86lite import assemble
from repro.persist import (
    RemoteRepository,
    WriterLease,
    capture_translations,
    config_fingerprint,
    image_fingerprint,
)

LOOP = """
start:
    mov ecx, 200
    mov esi, 0
top:
    add esi, ecx
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

# same loop prefix as LOOP (identical bytes at identical addresses), so
# its hot-block translations content-address to the same objects; only
# the tail differs.  This is the cross-workload dedup scenario: shared
# prefix code stored once on the server.
LOOP_VARIANT = """
start:
    mov ecx, 200
    mov esi, 0
top:
    add esi, ecx
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, 7
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""


def cold_records(source=LOOP, hot_threshold=50):
    """Run cold; return (records, config_fp, image_fp, vm)."""
    vm = CoDesignedVM(vm_soft(), hot_threshold=hot_threshold)
    image = assemble(source)
    vm.load(image)
    vm.run()
    records = capture_translations(vm.runtime.directory, vm.state.memory)
    return records, config_fingerprint(vm.config), \
        image_fingerprint(image), vm


@pytest.fixture
def server(tmp_path):
    with CacheServer(tmp_path / "served") as srv:
        yield srv


def raw_call(server, message, sock=None):
    """One request frame over a fresh (or given) TCP connection."""
    own = sock is None
    if own:
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
    try:
        protocol.send_message(sock, message)
        return protocol.recv_message(sock)
    finally:
        if own:
            sock.close()


class TestProtocolCodec:
    def test_round_trip(self):
        message = {"op": "push", "records": [{"a": 1}], "n": 7}
        assert protocol.decode_frame(
            protocol.encode_frame(message)) == message

    def test_flipped_payload_byte_fails_checksum(self):
        frame = bytearray(protocol.encode_frame({"op": "ping"}))
        frame[-1] ^= 0x40
        with pytest.raises(protocol.ProtocolError,
                           match="checksum"):
            protocol.decode_frame(bytes(frame))

    def test_bad_magic_rejected(self):
        frame = b"XXXX" + protocol.encode_frame({"op": "ping"})[4:]
        with pytest.raises(protocol.ProtocolError, match="magic"):
            protocol.decode_frame(frame)

    def test_short_header_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="short"):
            protocol.decode_header(b"RTC1")

    def test_length_bound_enforced(self):
        header = protocol._HEADER.pack(protocol.MAGIC,
                                       protocol.MAX_PAYLOAD + 1, 0)
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_header(header)

    def test_truncated_payload_rejected(self):
        frame = protocol.encode_frame({"op": "ping"})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(frame[:-2])

    def test_non_object_payload_rejected(self):
        import json
        import zlib
        payload = json.dumps([1, 2]).encode()
        frame = protocol._HEADER.pack(protocol.MAGIC, len(payload),
                                      zlib.crc32(payload)) + payload
        with pytest.raises(protocol.ProtocolError, match="not an object"):
            protocol.decode_frame(frame)

    def test_mid_frame_eof_detected(self, server):
        # connect, send half a frame, shut down the write side: the
        # server must treat it as a protocol error, not hang or die
        frame = protocol.encode_frame({"op": "ping"})
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        try:
            sock.sendall(frame[:len(frame) // 2])
            sock.shutdown(socket.SHUT_WR)
            # server drops the connection (possibly after an error frame)
            data = sock.recv(1 << 16)
            if data:
                assert protocol.decode_frame(data)["ok"] is False
        finally:
            sock.close()
        # and stays alive for the next client
        assert raw_call(server, {"op": "ping"})["ok"] is True


class TestServerOps:
    def test_ping(self, server):
        response = raw_call(server, {"op": "ping"})
        assert response["ok"] is True
        assert str(server.repository.root) == response["root"]

    def test_unknown_op_is_bad_request(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        try:
            response = raw_call(server, {"op": "frobnicate"}, sock=sock)
            assert response["error"] == "bad-request"
            # a bad *op* (well-formed frame) keeps the connection open
            assert raw_call(server, {"op": "ping"},
                            sock=sock)["ok"] is True
        finally:
            sock.close()

    def test_garbage_frame_answered_then_dropped(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        try:
            sock.sendall(b"not a frame at all, definitely " * 2)
            response = protocol.recv_message(sock)
            assert response["ok"] is False
            assert response["error"] == "bad-request"
            assert sock.recv(1) == b""     # connection dropped
        finally:
            sock.close()
        assert raw_call(server, {"op": "ping"})["ok"] is True

    def test_push_then_pull_round_trip(self, server):
        records, config_fp, image_fp, _vm = cold_records()
        response = raw_call(server, {
            "op": "push", "records": records, "config_fp": config_fp,
            "image_fp": image_fp, "config_name": "test"})
        assert response["ok"] is True
        assert response["written"] == len(records)
        assert response["rejected"] == 0
        pulled = raw_call(server, {"op": "pull", "config_fp": config_fp,
                                   "image_fp": image_fp})
        assert pulled["ok"] is True
        assert {r["key"] for r in pulled["records"]} == \
            {r["key"] for r in records}
        assert pulled["manifest_entries"] == len(records)

    def test_manifest_probe(self, server):
        records, config_fp, image_fp, _vm = cold_records()
        absent = raw_call(server, {"op": "manifest",
                                   "config_fp": config_fp,
                                   "image_fp": image_fp})
        assert absent["ok"] is True and absent["entries"] is None
        raw_call(server, {"op": "push", "records": records,
                          "config_fp": config_fp, "image_fp": image_fp})
        present = raw_call(server, {"op": "manifest",
                                    "config_fp": config_fp,
                                    "image_fp": image_fp})
        assert present["entries"] == len(records)

    def test_missing_fingerprints_rejected(self, server):
        for op in ("pull", "push", "manifest"):
            response = raw_call(server, {"op": op, "records": []})
            assert response["ok"] is False
            assert response["error"] == "bad-request"

    def test_server_validates_pushed_records(self, server):
        """A corrupt client cannot poison the store other VMs pull from."""
        records, config_fp, image_fp, _vm = cold_records()
        tampered = dict(records[0])
        tampered["code"] = "ffffffff"       # key no longer matches body
        response = raw_call(server, {
            "op": "push",
            "records": [records[1], tampered, {"garbage": True}, None],
            "config_fp": config_fp, "image_fp": image_fp})
        assert response["ok"] is True
        assert response["written"] == 1
        assert response["rejected"] == 3
        pulled = raw_call(server, {"op": "pull", "config_fp": config_fp,
                                   "image_fp": image_fp})
        assert [r["key"] for r in pulled["records"]] == \
            [records[1]["key"]]
        assert server.stats.to_dict()["records_rejected"] == 3

    def test_cross_workload_dedup(self, server):
        """Two programs sharing a code prefix store the prefix once."""
        rec_a, config_fp, image_a, _ = cold_records(LOOP)
        rec_b, _, image_b, _ = cold_records(LOOP_VARIANT)
        assert image_a != image_b
        first = raw_call(server, {"op": "push", "records": rec_a,
                                  "config_fp": config_fp,
                                  "image_fp": image_a})
        assert first["deduped"] == 0
        second = raw_call(server, {"op": "push", "records": rec_b,
                                   "config_fp": config_fp,
                                   "image_fp": image_b})
        # the shared loop blocks content-address identically
        assert second["deduped"] > 0
        assert second["written"] < len(rec_b)
        assert server.stats.to_dict()["objects_deduped"] == \
            second["deduped"]
        # both manifests still pull their full record sets
        for image_fp, records in ((image_a, rec_a), (image_b, rec_b)):
            pulled = raw_call(server, {"op": "pull",
                                       "config_fp": config_fp,
                                       "image_fp": image_fp})
            assert len(pulled["records"]) == len(records)

    def test_contended_lease_surfaces_as_lease_busy(self, tmp_path):
        with CacheServer(tmp_path / "repo",
                         lease_timeout=0.05) as server:
            records, config_fp, image_fp, _vm = cold_records()
            with WriterLease(server.repository.root, ttl=60.0):
                response = raw_call(server, {
                    "op": "push", "records": records,
                    "config_fp": config_fp, "image_fp": image_fp})
            assert response["ok"] is False
            assert response["error"] == "lease-busy"
            assert response["error"] in protocol.RETRYABLE_ERRORS
            assert server.stats.to_dict()["lease_busy"] == 1
            # released: the same push now lands
            retry = raw_call(server, {
                "op": "push", "records": records,
                "config_fp": config_fp, "image_fp": image_fp})
            assert retry["ok"] is True and retry["written"] > 0

    def test_stats_op_reports_both_sides(self, server):
        records, config_fp, image_fp, _vm = cold_records()
        raw_call(server, {"op": "push", "records": records,
                          "config_fp": config_fp, "image_fp": image_fp})
        response = raw_call(server, {"op": "stats"})
        assert response["repository"]["objects"] == len(records)
        assert response["server"]["requests"]["push"] == 1
        assert response["server"]["connections"] >= 2

    def test_persistent_connection_serves_many_requests(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        try:
            for _ in range(5):
                assert raw_call(server, {"op": "ping"},
                                sock=sock)["ok"] is True
        finally:
            sock.close()
        assert server.stats.to_dict()["requests"]["ping"] == 5
        assert server.stats.to_dict()["connections"] == 1


class TestManyClients:
    """Herd-scale contention: >=16 simultaneous clients, one server.

    These are the fleet scenario's server-side invariants in
    isolation: content-addressed dedup must hold under concurrent
    pushes, admission backpressure must surface as the retryable
    ``busy`` category, and a drain must finish in-flight work before
    closing.
    """

    CLIENTS = 16

    def _run_clients(self, body, count=None):
        """Run ``body(idx)`` on ``count`` threads released together."""
        count = count or self.CLIENTS
        errors = []
        barrier = threading.Barrier(count)

        def runner(idx):
            try:
                barrier.wait(timeout=10.0)
                body(idx)
            except Exception as error:   # noqa: BLE001 - reported below
                errors.append((idx, repr(error)))

        threads = [threading.Thread(target=runner, args=(idx,))
                   for idx in range(count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []

    def test_sixteen_clients_pull_and_push(self, server):
        """Every client pulls complete and dedups against the store."""
        records, config_fp, image_fp, _vm = cold_records()
        raw_call(server, {"op": "push", "records": records,
                          "config_fp": config_fp, "image_fp": image_fp})
        results = [None] * self.CLIENTS

        def client(idx):
            remote = RemoteRepository(server.address, retries=6,
                                      sleep=lambda _s: None)
            pulled = remote.load(config_fp, image_fp)
            written = remote.save(records, config_fp, f"img-{idx}",
                                  config_name=f"c{idx}")
            results[idx] = (len(pulled), written,
                            remote.remote_stats.fallbacks)
            remote.close()

        self._run_clients(client)
        # every client pulled the full record set and, because objects
        # are content-addressed, wrote zero new objects for its own
        # image; nobody degraded to cold
        assert results == [(len(records), 0, 0)] * self.CLIENTS
        assert server.repository.stats().objects == len(records)
        check = server.repository.fsck(repair=False)
        assert check.ok, check.format()
        for idx in range(self.CLIENTS):
            loaded = server.repository.load(config_fp, f"img-{idx}")
            assert {r["key"] for r in loaded} == \
                {r["key"] for r in records}
        requests = server.stats.to_dict()["requests"]
        assert requests["pull"] == self.CLIENTS
        assert requests["push"] == self.CLIENTS + 1

    def test_concurrent_shared_image_push_writes_each_object_once(
            self, tmp_path):
        """16 racing pushes of one manifest store each object once."""
        with CacheServer(tmp_path / "served",
                         lease_timeout=10.0) as server:
            records, config_fp, _image_fp, _vm = cold_records()
            written = [None] * self.CLIENTS

            def client(idx):
                remote = RemoteRepository(server.address, retries=6,
                                          sleep=lambda _s: None)
                written[idx] = remote.save(records, config_fp,
                                           "img-shared")
                assert remote.remote_stats.fallbacks == 0
                remote.close()

            self._run_clients(client)
            assert sum(written) == len(records)
            repo = server.repository
            assert repo.stats().objects == len(records)
            assert len(repo.load(config_fp, "img-shared")) == \
                len(records)
            check = repo.fsck(repair=False)
            assert check.ok, check.format()

    def test_max_conns_rejects_with_retryable_busy(self, tmp_path):
        with CacheServer(tmp_path / "limited", max_conns=2) as server:
            holders = [socket.create_connection(
                (server.host, server.port), timeout=5.0)
                for _ in range(2)]
            try:
                for holder in holders:
                    assert raw_call(server, {"op": "ping"},
                                    sock=holder)["ok"] is True
                # both slots held: the next connection is answered
                # with an unsolicited busy frame and dropped
                extra = socket.create_connection(
                    (server.host, server.port), timeout=5.0)
                try:
                    response = protocol.recv_message(extra)
                finally:
                    extra.close()
                assert response["ok"] is False
                assert response["error"] == "busy"
                assert response["error"] in protocol.RETRYABLE_ERRORS
                assert server.stats.to_dict()["conns_rejected"] >= 1
            finally:
                for holder in holders:
                    holder.close()

    def test_busy_retry_recovers_once_a_slot_frees(self, tmp_path):
        with CacheServer(tmp_path / "limited", max_conns=1) as server:
            holder = socket.create_connection(
                (server.host, server.port), timeout=5.0)
            assert raw_call(server, {"op": "ping"},
                            sock=holder)["ok"] is True

            def free_slot(_seconds):
                # first backoff: free the held slot, then wait for the
                # server to release it before the retry reconnects
                holder.close()
                deadline = time.monotonic() + 5.0
                while server.active_connections > 0 \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)

            client = RemoteRepository(server.address, retries=3,
                                      sleep=free_slot)
            assert client.ping() is True
            # the rejection was counted and retried, not fatal
            assert client.remote_stats.lease_busy >= 1
            assert client.remote_stats.retries >= 1
            assert server.stats.to_dict()["conns_rejected"] >= 1
            client.close()

    def test_drain_finishes_inflight_push(self, tmp_path):
        server = CacheServer(tmp_path / "inflight")
        server.start()
        records, config_fp, image_fp, _vm = cold_records()
        real_save = server.repository.save
        entered = threading.Event()

        def slow_save(*args, **kwargs):
            entered.set()
            time.sleep(0.3)         # hold the push in flight
            return real_save(*args, **kwargs)

        server.repository.save = slow_save
        result = {}

        def pusher():
            client = RemoteRepository(server.address, retries=0)
            result["written"] = client.save(records, config_fp,
                                            image_fp)
            result["fallbacks"] = client.remote_stats.fallbacks
            client.close()

        thread = threading.Thread(target=pusher)
        thread.start()
        assert entered.wait(timeout=5.0)
        clean = server.drain(grace=5.0)
        thread.join(timeout=10.0)
        assert clean is True
        assert result == {"written": len(records), "fallbacks": 0}
        server.repository.save = real_save
        assert server.repository.stats().objects == len(records)

    def test_drain_cuts_idle_connection_and_stops(self, tmp_path):
        server = CacheServer(tmp_path / "drained")
        server.start()
        # a connection that never sends a frame: its handler sits in
        # recv() and only the drain's post-grace cut can wake it (a
        # connection that just finished a response would instead close
        # gracefully at the frame boundary and count as clean)
        idle = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        try:
            deadline = time.monotonic() + 5.0
            while server.active_connections < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.active_connections == 1
            assert server.drain(grace=0.2) is False
            try:
                assert idle.recv(1) == b""      # cut by the server
            except OSError:
                pass
        finally:
            idle.close()
        with pytest.raises(OSError):
            socket.create_connection((server.host, server.port),
                                     timeout=0.5)

    def test_drain_clean_after_clients_closed(self, tmp_path):
        server = CacheServer(tmp_path / "drained2")
        server.start()
        assert raw_call(server, {"op": "ping"})["ok"] is True
        deadline = time.monotonic() + 5.0
        while server.active_connections and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.drain(grace=1.0) is True
        assert server.drain(grace=1.0) is True      # idempotent

    def test_per_op_latency_histograms_in_stats(self, server):
        records, config_fp, image_fp, _vm = cold_records()
        for _ in range(3):
            assert raw_call(server, {"op": "ping"})["ok"] is True
        raw_call(server, {"op": "push", "records": records,
                          "config_fp": config_fp, "image_fp": image_fp})
        latency = raw_call(server, {"op": "stats"})["server"]["latency"]
        for op, count in (("ping", 3), ("push", 1)):
            entry = latency[op]
            assert entry["count"] == count
            assert entry["min"] <= entry["mean"] <= entry["max"]
            assert entry["p50"] <= entry["p95"] <= entry["p99"]


class TestEndToEnd:
    def test_warm_start_through_live_server(self, tmp_path):
        with CacheServer(tmp_path / "shared") as server:
            cold_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
            cold_vm.load(assemble(LOOP))
            cold = cold_vm.run()
            pushed = cold_vm.save_translations(
                RemoteRepository(server.address))
            assert pushed > 0

            warm_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
            warm_vm.load(assemble(LOOP))
            load = warm_vm.warm_start(RemoteRepository(server.address))
            warm = warm_vm.run()
        assert load.loaded == load.attempted > 0
        assert warm.blocks_translated == 0
        assert warm.superblocks_translated == 0
        assert warm.output == cold.output
        assert warm.exit_code == cold.exit_code

    def test_unix_socket_transport(self, tmp_path):
        path = tmp_path / "cache.sock"
        with CacheServer(tmp_path / "repo", socket_path=path) as server:
            assert server.address == f"unix:{path}"
            client = RemoteRepository(server.address)
            assert client.ping() is True
        assert not path.exists()    # stop() cleans the socket up

    def test_remote_stats_reach_vm_stats(self, tmp_path):
        with CacheServer(tmp_path / "shared") as server:
            vm = CoDesignedVM(vm_soft(), hot_threshold=50)
            vm.load(assemble(LOOP))
            vm.run()
            vm.save_translations(RemoteRepository(server.address))
            stats = vm.stats()
        assert stats["remote"]["requests"] >= 1
        assert stats["remote"]["records_pushed"] > 0
