"""Encoder/decoder tests for the x86lite ISA.

The key property: ``decode(encode(instr))`` reproduces the instruction
(operation, operands, width, condition), and ``encode(decode(bytes))``
reproduces canonical byte sequences.
"""

import pytest
from hypothesis import given, settings

from repro.isa.x86lite import (
    Cond,
    DecodeError,
    ImmOperand,
    Instruction,
    MAX_INSTRUCTION_LENGTH,
    MemOperand,
    Op,
    Reg,
    RegOperand,
    decode,
    encode,
)
from tests.strategies import instructions


def roundtrip(instr: Instruction, addr: int = 0x400000) -> Instruction:
    data = encode(instr, addr=addr)
    assert 1 <= len(data) <= MAX_INSTRUCTION_LENGTH
    decoded = decode(data, addr=addr)
    assert decoded.length == len(data)
    return decoded


def assert_same(decoded: Instruction, original: Instruction) -> None:
    assert decoded.op is original.op
    assert decoded.cond == original.cond
    assert decoded.width == original.width
    assert decoded.rep == original.rep
    assert len(decoded.operands) == len(original.operands)
    for got, expected in zip(decoded.operands, original.operands):
        if isinstance(expected, ImmOperand):
            mask = (1 << expected.bits) - 1
            assert isinstance(got, ImmOperand)
            got_mask = (1 << got.bits) - 1
            assert (got.value & mask & got_mask) == \
                (expected.value & mask & got_mask)
        else:
            assert got == expected


class TestFixedEncodings:
    """Spot-check byte-exact encodings against the IA-32 opcode map."""

    def test_nop(self):
        assert encode(Instruction(Op.NOP)) == b"\x90"

    def test_hlt(self):
        assert encode(Instruction(Op.HLT)) == b"\xf4"

    def test_ret(self):
        assert encode(Instruction(Op.RET)) == b"\xc3"

    def test_ret_imm(self):
        assert encode(Instruction(Op.RET, (ImmOperand(8, 16),))) \
            == b"\xc2\x08\x00"

    def test_push_reg(self):
        assert encode(Instruction(Op.PUSH, (RegOperand(Reg.EBX),))) \
            == b"\x53"

    def test_pop_reg(self):
        assert encode(Instruction(Op.POP, (RegOperand(Reg.EDI),))) \
            == b"\x5f"

    def test_mov_reg_imm(self):
        data = encode(Instruction(Op.MOV, (RegOperand(Reg.EAX),
                                           ImmOperand(0x12345678))))
        assert data == b"\xb8\x78\x56\x34\x12"

    def test_mov_reg_reg(self):
        # mov ecx, edx -> 8B /r with reg=ecx rm=edx
        data = encode(Instruction(Op.MOV, (RegOperand(Reg.ECX),
                                           RegOperand(Reg.EDX))))
        # canonical choice: 0x89 /r (mov r/m, r) for reg,reg
        assert data == b"\x89\xd1"

    def test_add_eax_imm32(self):
        data = encode(Instruction(Op.ADD, (RegOperand(Reg.EAX),
                                           ImmOperand(0x1000))))
        assert data == b"\x05\x00\x10\x00\x00"

    def test_add_reg_imm8_uses_short_form(self):
        data = encode(Instruction(Op.ADD, (RegOperand(Reg.EBX),
                                           ImmOperand(5))))
        assert data == b"\x83\xc3\x05"

    def test_sub_mem_reg(self):
        # sub [ebx+8], ecx
        data = encode(Instruction(Op.SUB, (MemOperand(base=Reg.EBX, disp=8),
                                           RegOperand(Reg.ECX))))
        assert data == b"\x29\x4b\x08"

    def test_lea_sib(self):
        # lea eax, [ebx+ecx*4+0x10]
        data = encode(Instruction(
            Op.LEA, (RegOperand(Reg.EAX),
                     MemOperand(Reg.EBX, Reg.ECX, 4, 0x10))))
        assert data == b"\x8d\x44\x8b\x10"

    def test_esp_base_needs_sib(self):
        # mov eax, [esp]
        data = encode(Instruction(Op.MOV, (RegOperand(Reg.EAX),
                                           MemOperand(base=Reg.ESP))))
        assert data == b"\x8b\x04\x24"

    def test_ebp_base_forces_disp8(self):
        # mov eax, [ebp] must encode as [ebp+0] (mod=01)
        data = encode(Instruction(Op.MOV, (RegOperand(Reg.EAX),
                                           MemOperand(base=Reg.EBP))))
        assert data == b"\x8b\x45\x00"

    def test_absolute_address(self):
        data = encode(Instruction(Op.MOV, (RegOperand(Reg.EAX),
                                           MemOperand(disp=0x404000))))
        assert data == b"\x8b\x05\x00\x40\x40\x00"

    def test_jmp_short_backward(self):
        instr = Instruction(Op.JMP, target=0x400000)
        data = encode(instr, addr=0x400010)
        assert data == b"\xeb\xee"  # -18

    def test_jmp_long(self):
        instr = Instruction(Op.JMP, target=0x400000)
        data = encode(instr, addr=0x401000)
        assert data[0] == 0xE9
        assert len(data) == 5

    def test_jcc_short(self):
        instr = Instruction(Op.JCC, cond=Cond.NE, target=0x400000)
        data = encode(instr, addr=0x400008)
        assert data == b"\x75\xf6"  # jnz -10

    def test_jcc_long_two_byte(self):
        instr = Instruction(Op.JCC, cond=Cond.E, target=0x500000)
        data = encode(instr, addr=0x400000)
        assert data[:2] == b"\x0f\x84"
        assert len(data) == 6

    def test_call_rel32(self):
        instr = Instruction(Op.CALL, target=0x400100)
        data = encode(instr, addr=0x400000)
        assert data == b"\xe8\xfb\x00\x00\x00"

    def test_rep_movsd(self):
        data = encode(Instruction(Op.MOVS, rep=True))
        assert data == b"\xf3\xa5"

    def test_operand_size_prefix(self):
        data = encode(Instruction(Op.MOV, (RegOperand(Reg.EAX),
                                           ImmOperand(0x1234, 16)),
                                  width=16))
        assert data == b"\x66\xb8\x34\x12"

    def test_int_syscall(self):
        data = encode(Instruction(Op.INT, (ImmOperand(0x80, 8),)))
        assert data == b"\xcd\x80"

    def test_movzx_byte(self):
        data = encode(Instruction(
            Op.MOVZX, (RegOperand(Reg.EAX),
                       MemOperand(base=Reg.ESI, size=8))))
        assert data == b"\x0f\xb6\x06"

    def test_imul_two_operand(self):
        data = encode(Instruction(Op.IMUL, (RegOperand(Reg.EAX),
                                            RegOperand(Reg.EBX))))
        assert data == b"\x0f\xaf\xc3"

    def test_shl_imm(self):
        data = encode(Instruction(Op.SHL, (RegOperand(Reg.EDX),
                                           ImmOperand(4, 8))))
        assert data == b"\xc1\xe2\x04"

    def test_shl_by_one_compact(self):
        data = encode(Instruction(Op.SHL, (RegOperand(Reg.EDX),
                                           ImmOperand(1, 8))))
        assert data == b"\xd1\xe2"

    def test_shift_by_cl(self):
        data = encode(Instruction(Op.SAR, (RegOperand(Reg.EAX),
                                           RegOperand(Reg.ECX))))
        assert data == b"\xd3\xf8"


class TestDecodeErrors:
    def test_truncated(self):
        with pytest.raises(DecodeError):
            decode(b"\xb8\x01")

    def test_invalid_opcode(self):
        with pytest.raises(DecodeError):
            decode(b"\x06")

    def test_invalid_two_byte(self):
        with pytest.raises(DecodeError):
            decode(b"\x0f\x05")

    def test_too_many_prefixes(self):
        with pytest.raises(DecodeError):
            decode(b"\x66\x66\x66\x66\x66\x90")

    def test_lea_register_operand_invalid(self):
        with pytest.raises(DecodeError):
            decode(b"\x8d\xc0")  # lea eax, eax

    def test_invalid_group_selector(self):
        with pytest.raises(DecodeError):
            decode(b"\xff\xf8")  # 0xFF /7 undefined

    def test_empty(self):
        with pytest.raises(DecodeError):
            decode(b"")


class TestBranchTargets:
    def test_jcc_target_resolution(self):
        decoded = decode(b"\x75\xf6", addr=0x400008)
        assert decoded.op is Op.JCC
        assert decoded.cond is Cond.NE
        assert decoded.target == 0x400000

    def test_call_target_resolution(self):
        decoded = decode(b"\xe8\xfb\x00\x00\x00", addr=0x400000)
        assert decoded.target == 0x400100

    def test_indirect_jmp(self):
        decoded = decode(b"\xff\xe0")  # jmp eax
        assert decoded.op is Op.JMP
        assert decoded.target is None
        assert decoded.operands == (RegOperand(Reg.EAX),)

    def test_control_transfer_classification(self):
        assert decode(b"\xc3").is_control_transfer
        assert decode(b"\xeb\x00").is_control_transfer
        assert not decode(b"\x90").is_control_transfer
        assert decode(b"\x74\x00").is_conditional


class TestComplexClassification:
    """The hardware assists flag these as Flag_cmplx cases."""

    def test_rep_movs_is_complex(self):
        assert decode(b"\xf3\xa5").is_complex

    def test_plain_movs_is_not_complex(self):
        assert not decode(b"\xa5").is_complex

    def test_div_is_complex(self):
        assert decode(b"\xf7\xf3").is_complex  # div ebx

    def test_int_is_complex(self):
        assert decode(b"\xcd\x80").is_complex

    def test_mov_is_not_complex(self):
        assert not decode(b"\xb8\x00\x00\x00\x00").is_complex


class TestRoundtripProperties:
    @given(instr=instructions)
    @settings(max_examples=300)
    def test_encode_decode_roundtrip(self, instr):
        assert_same(roundtrip(instr), instr)

    @given(instr=instructions)
    @settings(max_examples=120)
    def test_canonical_reencode_is_stable(self, instr):
        data = encode(instr, addr=0x400000)
        decoded = decode(data, addr=0x400000)
        assert encode(decoded, addr=0x400000) == data

    @given(instr=instructions)
    @settings(max_examples=120)
    def test_length_reported_correctly(self, instr):
        data = encode(instr, addr=0x400000)
        decoded = decode(data + b"\xcc" * 4, addr=0x400000)
        assert decoded.length == len(data)
