"""Superblock formation tests."""

from repro.isa.x86lite import assemble
from repro.memory import AddressSpace, load_image
from repro.translator import form_superblock
from repro.translator.emit import scan_block
from repro.vmm.profiling import EdgeProfile


def block_fallthrough(memory, entry):
    """Address of the instruction after a block's terminator."""
    return scan_block(memory, entry)[-1].next_addr


def setup(source):
    image = assemble(source)
    memory = AddressSpace()
    load_image(image, memory)
    return memory, image.labels, image.entry


LOOP = """
start:
    mov ecx, 100
loop:
    add eax, ecx
    dec ecx
    jnz loop
    ret
"""


class TestFormation:
    def test_self_loop_detected(self):
        memory, labels, _entry = setup(LOOP)
        edges = EdgeProfile()
        edges.record(labels["loop"], labels["loop"], 99)
        edges.record(labels["loop"], labels["loop"] + 5, 1)
        superblock = form_superblock(memory, labels["loop"], edges)
        assert superblock.loops_to_head
        assert len(superblock.blocks) == 1
        assert superblock.blocks[0].followed == "taken"

    def test_unbiased_branch_stops_trace(self):
        memory, labels, _entry = setup(LOOP)
        edges = EdgeProfile()
        edges.record(labels["loop"], labels["loop"], 50)
        edges.record(labels["loop"], labels["loop"] + 5, 50)
        superblock = form_superblock(memory, labels["loop"], edges)
        assert not superblock.loops_to_head
        assert superblock.blocks[0].followed is None

    def test_no_profile_single_block(self):
        memory, labels, _entry = setup(LOOP)
        superblock = form_superblock(memory, labels["loop"], EdgeProfile())
        assert len(superblock.blocks) == 1

    def test_follows_unconditional_jumps(self):
        source = """
        start:
            mov eax, 1
            jmp second
        filler: .zero 16
        second:
            add eax, 2
            jmp third
        filler2: .zero 16
        third:
            ret
        """
        memory, labels, entry = setup(source)
        superblock = form_superblock(memory, entry, EdgeProfile())
        assert superblock.entries == [entry, labels["second"],
                                      labels["third"]]
        assert superblock.blocks[0].followed == "jump"
        assert superblock.blocks[-1].followed is None

    def test_fallthrough_bias_follows_not_taken(self):
        source = """
        check:
            cmp eax, 0
            je rare
            add ebx, 1
            ret
        rare:
            ret
        """
        memory, labels, _entry = setup(source)
        edges = EdgeProfile()
        fallthrough = block_fallthrough(memory, labels["check"])
        edges.record(labels["check"], fallthrough, 90)
        edges.record(labels["check"], labels["rare"], 10)
        superblock = form_superblock(memory, labels["check"], edges)
        assert superblock.blocks[0].followed == "fallthrough"
        assert len(superblock.blocks) == 2

    def test_instr_limit_respected(self):
        source = "start:\n" + "\n".join(["add eax, 1"] * 50) + \
            "\njmp start"
        memory, _labels, entry = setup(source)
        edges = EdgeProfile()
        superblock = form_superblock(memory, entry, edges, max_instrs=20)
        assert superblock.instr_count <= 20 + 64  # one block may overshoot

    def test_side_exit_count(self):
        source = """
        a:
            cmp eax, 1
            je out1
            cmp eax, 2
            je out2
            jmp a
        out1: ret
        out2: ret
        """
        memory, labels, _entry = setup(source)
        edges = EdgeProfile()
        a = labels["a"]
        block2 = block_fallthrough(memory, a)
        edges.record(a, block2, 95)
        edges.record(a, labels["out1"], 5)
        edges.record(block2, block_fallthrough(memory, block2), 95)
        superblock = form_superblock(memory, a, edges)
        assert superblock.side_exit_count >= 1

    def test_ends_at_complex(self):
        source = "start:\nmov eax, 0\nint 0x80"
        memory, _labels, entry = setup(source)
        superblock = form_superblock(memory, entry, EdgeProfile())
        assert len(superblock.blocks) == 1
        assert superblock.blocks[0].last.is_complex

    def test_ends_at_indirect(self):
        source = "start:\nmov eax, 1\njmp eax"
        memory, _labels, entry = setup(source)
        superblock = form_superblock(memory, entry, EdgeProfile())
        assert superblock.blocks[0].followed is None
