"""Deeper semantics corner cases for the reference machine."""

import pytest

from repro.isa.x86lite import ArchException, Reg
from tests.conftest import run_source


def run(source):
    return run_source(source + "\nhlt")


class TestStringCorners:
    def test_rep_with_zero_count_is_noop(self):
        state = run("""
        start:
            mov esi, 0x500000
            mov edi, 0x600000
            mov dword [esi], 0xAA
            mov ecx, 0
            rep movsd
            mov eax, [0x600000]
        """)
        assert state.regs[Reg.EAX] == 0
        assert state.regs[Reg.ESI] == 0x500000  # pointers untouched

    def test_movsd_overlapping_forward(self):
        # ascending copy with overlap propagates the first word
        state = run("""
        start:
            mov dword [0x500000], 7
            mov dword [0x500004], 8
            mov esi, 0x500000
            mov edi, 0x500004
            mov ecx, 2
            rep movsd
            mov eax, [0x500004]
            mov ebx, [0x500008]
        """)
        assert state.regs[Reg.EAX] == 7
        assert state.regs[Reg.EBX] == 7

    def test_stos_then_lods_roundtrip(self):
        state = run("""
        start:
            mov eax, 0x1234
            mov edi, 0x500000
            stosd
            mov esi, 0x500000
            mov eax, 0
            lodsd
        """)
        assert state.regs[Reg.EAX] == 0x1234


class TestDivisionCorners:
    def test_idiv_min_by_minus_one_overflows(self):
        with pytest.raises(ArchException, match="divide-overflow"):
            run("""
            start:
                mov edx, 0xFFFFFFFF
                mov eax, 0x80000000   ; -2^31 in EDX:EAX
                mov ebx, -1
                idiv ebx              ; quotient +2^31 unrepresentable
            """)

    def test_idiv_negative_remainder_sign(self):
        # remainder takes the dividend's sign
        state = run("""
        start:
            mov eax, -7
            mov edx, -1
            mov ebx, -2
            idiv ebx
        """)
        assert state.regs[Reg.EAX] == 3              # -7 / -2 = 3
        assert state.regs[Reg.EDX] == 0xFFFFFFFF     # rem -1

    def test_div_uses_full_64bit_dividend(self):
        state = run("""
        start:
            mov edx, 1
            mov eax, 0            ; dividend = 2^32
            mov ebx, 16
            div ebx
        """)
        assert state.regs[Reg.EAX] == 0x10000000
        assert state.regs[Reg.EDX] == 0


class TestShiftCorners:
    def test_shl_count_32_masks_to_zero(self):
        state = run("""
        start:
            mov eax, 0
            add eax, 0            ; ZF set
            mov ebx, 0xFF
            mov ecx, 32
            shl ebx, ecx          ; count & 31 == 0: no change at all
        """)
        assert state.regs[Reg.EBX] == 0xFF
        assert state.zf  # flags preserved too

    def test_sar_all_the_way(self):
        state = run("mov eax, 0x80000000\nsar eax, 31")
        assert state.regs[Reg.EAX] == 0xFFFFFFFF

    def test_shr_then_of_semantics(self):
        state = run("mov eax, 0x80000000\nshr eax, 1")
        assert state.of  # OF = original MSB for 1-bit SHR
        assert state.regs[Reg.EAX] == 0x40000000


class TestWraparound:
    def test_address_wraparound_in_lea(self):
        state = run("""
        start:
            mov ebx, 0xFFFFFFFF
            lea eax, [ebx+2]
        """)
        assert state.regs[Reg.EAX] == 1

    def test_imul_widening_negative(self):
        state = run("""
        start:
            mov eax, -3
            mov ebx, -4
            imul ebx
        """)
        assert state.regs[Reg.EAX] == 12
        assert state.regs[Reg.EDX] == 0

    def test_xchg_with_memory(self):
        state = run("""
        start:
            mov ebx, 0x500000
            mov dword [ebx], 5
            mov eax, 9
            xchg [ebx], eax
            mov ecx, [ebx]
        """)
        assert state.regs[Reg.EAX] == 5
        assert state.regs[Reg.ECX] == 9


class TestSixteenBitCorners:
    def test_16bit_push_pop(self):
        state = run("""
        start:
            mov eax, 0x12345678
            push ax
            mov ebx, 0
            pop bx
        """)
        assert state.regs[Reg.EBX] & 0xFFFF == 0x5678

    def test_16bit_imul(self):
        state = run("""
        start:
            mov eax, 0xFFFF0003
            mov ebx, 0x00000005
            imul ax, bx
        """)
        assert state.regs[Reg.EAX] == 0xFFFF000F  # upper half preserved

    def test_16bit_inc_wraps(self):
        state = run("""
        start:
            mov eax, 0x0001FFFF
            mov bx, 1
            add ax, bx
        """)
        assert state.regs[Reg.EAX] == 0x00010000
        assert state.cf and state.zf
