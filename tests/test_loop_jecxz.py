"""LOOP / JECXZ instruction tests (microcoded complex CTIs)."""

import pytest

from repro.core import (
    CoDesignedVM,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.isa.x86lite import Op, Reg, assemble, decode
from repro.translator import crack, is_crackable
from tests.conftest import run_source

ALL = [ref_superscalar, vm_soft, vm_be, vm_fe, interp_sbt]


class TestEncoding:
    def test_loop_encoding(self):
        data = assemble("top: nop\nloop top").text.data
        assert data[1] == 0xE2
        decoded = decode(data, addr=0, offset=1)
        assert decoded.op is Op.LOOP

    def test_jecxz_encoding(self):
        data = assemble("top: nop\njecxz top").text.data
        assert data[1] == 0xE3

    def test_target_resolution(self):
        decoded = decode(b"\xe2\xfe", addr=0x400000)
        assert decoded.target == 0x400000

    def test_out_of_range_rejected(self):
        source = "start: loop far\n" + "\n".join(["nop"] * 200) + \
            "\nfar: hlt"
        with pytest.raises(Exception):
            assemble(source)


class TestSemantics:
    def test_loop_counts_down(self):
        state = run_source("""
        start:
            mov ecx, 5
        top:
            add eax, 2
            loop top
            hlt
        """)
        assert state.regs[Reg.EAX] == 10
        assert state.regs[Reg.ECX] == 0

    def test_loop_preserves_flags(self):
        state = run_source("""
        start:
            mov eax, 0
            add eax, 0           ; ZF=1, CF=0
            mov ecx, 3
        top:
            loop top             ; must not touch flags
            hlt
        """)
        assert state.zf and not state.cf

    def test_loop_with_ecx_one_falls_through(self):
        state = run_source("""
        start:
            mov ecx, 1
        top:
            inc eax
            loop top
            hlt
        """)
        assert state.regs[Reg.EAX] == 1

    def test_jecxz_taken(self):
        state = run_source("""
        start:
            mov ecx, 0
            jecxz skip
            mov eax, 1
        skip:
            hlt
        """)
        assert state.regs[Reg.EAX] == 0

    def test_jecxz_not_taken(self):
        state = run_source("""
        start:
            mov ecx, 7
            jecxz skip
            mov eax, 1
        skip:
            hlt
        """)
        assert state.regs[Reg.EAX] == 1


class TestClassification:
    def test_complex_not_crackable(self):
        instr = decode(b"\xe2\xfe")
        assert instr.is_complex and instr.is_control_transfer
        assert not is_crackable(instr)
        assert crack(instr).cmplx

    def test_xltx86_flags_complex_and_cti(self):
        from repro.hwassist import XLTx86Unit
        result = XLTx86Unit().translate(b"\xe2\xfe")
        assert result.flag_cmplx and result.flag_cti


class TestAcrossConfigs:
    SOURCE = """
    start:
        mov ecx, 25
        mov esi, 0
    top:
        add esi, ecx
        imul eax, ecx, 3
        xor esi, eax
        loop top
        jecxz done
        mov esi, 0xBAD
    done:
        mov eax, 1
        mov ebx, esi
        int 0x80
        mov eax, 0
        mov ebx, 0
        int 0x80
    """

    def test_same_results_everywhere(self):
        outputs = []
        for factory in ALL:
            vm = CoDesignedVM(factory(), hot_threshold=4)
            vm.load(assemble(self.SOURCE))
            report = vm.run()
            outputs.append((tuple(report.output),
                            tuple(vm.state.regs)))
        assert all(output == outputs[0] for output in outputs[1:])

    def test_loop_is_interpreted_in_vm(self):
        vm = CoDesignedVM(vm_soft(), hot_threshold=1000)
        vm.load(assemble(self.SOURCE))
        report = vm.run()
        assert report.interp_one_calls >= 25  # one per LOOP execution
