"""RemoteRepository: retries, backoff, breaker, graceful degradation.

The contract under test is the robustness headline of the shared-cache
design: **no server failure may change architected results** — every
failure mode degrades to the local repository and ultimately to cold
translation, observably (counters, tracer events, flight dumps) but
silently to the program being run.
"""

import socket

import pytest

from repro.cacheserver import CacheServer
from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults import (
    make_fault,
    modes_for,
    needs_remote,
    prepare_baseline,
    run_faulted,
)
from repro.isa.x86lite import assemble
from repro.obs.tracer import EventTracer
from repro.persist import (
    CircuitBreaker,
    RemoteRepository,
    TranslationRepository,
    WriterLease,
    parse_address,
)

LOOP = """
start:
    mov ecx, 150
    mov esi, 0
top:
    add esi, ecx
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

NETWORK_FAULTS = ("conn-refused", "torn-frame", "slow-server",
                  "stale-lease", "corrupt-payload")


def dead_address():
    """A loopback port guaranteed to refuse connections."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def dead_client(local=None, **kwargs):
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("timeout", 0.5)
    kwargs.setdefault("sleep", lambda _s: None)
    return RemoteRepository(dead_address(), local=local, **kwargs)


class TestParseAddress:
    def test_forms(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("/var/run/x.sock") == ("unix",
                                                    "/var/run/x.sock")
        assert parse_address("example.com:9001") == \
            ("tcp", ("example.com", 9001))
        assert parse_address(":9001") == ("tcp", ("127.0.0.1", 9001))
        assert parse_address(("10.0.0.1", 80)) == \
            ("tcp", ("10.0.0.1", 80))

    @pytest.mark.parametrize("bad", ["", "no-port-here", "host:notaport",
                                     None, 42])
    def test_rejects_unusable(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestBackoff:
    def test_deterministic_across_clients(self):
        a = dead_client()
        b = dead_client()
        a._request_seq = b._request_seq = 3
        waits_a = [a._backoff("pull", n) for n in range(4)]
        waits_b = [b._backoff("pull", n) for n in range(4)]
        assert waits_a == waits_b

    def test_jitter_decorrelates_requests(self):
        client = dead_client()
        client._request_seq = 1
        first = client._backoff("pull", 0)
        client._request_seq = 2
        second = client._backoff("pull", 0)
        assert first != second       # same attempt, different request

    def test_capped(self):
        client = dead_client(backoff_base=0.05, backoff_cap=0.2)
        client._request_seq = 1
        for attempt in range(12):
            assert client._backoff("push", attempt) <= 0.2


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown=10.0,
                                 clock=lambda: clock[0])
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True    # newly opened
        assert breaker.is_open
        assert not breaker.allows()

    def test_half_open_single_probe_then_close(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        assert not breaker.allows()
        clock[0] = 6.0
        assert breaker.allows()          # the one half-open probe
        assert not breaker.allows()      # second caller still blocked
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.allows()

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allows()
        assert breaker.record_failure() is False   # re-opened, not new
        assert not breaker.allows()
        clock[0] = 12.0
        assert breaker.allows()          # cools down again


class TestDegradation:
    def test_load_falls_back_to_local(self, tmp_path):
        local = TranslationRepository(tmp_path / "local")
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        cold = vm.run()
        vm.save_translations(local)

        client = dead_client(local=local)
        warm_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        warm_vm.load(assemble(LOOP))
        load = warm_vm.warm_start(client)
        warm = warm_vm.run()
        assert load.loaded > 0
        assert warm.blocks_translated == 0
        assert warm.output == cold.output
        assert client.remote_stats.fallbacks > 0
        assert client.remote_stats.conn_errors > 0
        assert client.remote_stats.successes == 0

    def test_load_without_local_acts_empty(self):
        client = dead_client()
        assert client.load("cfg", "img") == []
        assert client.manifest_entry_count("cfg", "img") is None
        assert client.ping() is False
        assert client.server_stats() is None

    def test_save_falls_back_to_local(self, tmp_path):
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        vm.run()
        client = dead_client(local=tmp_path / "local")
        written = vm.save_translations(client)
        assert written > 0               # landed in the local store
        assert client.remote_stats.fallbacks == 1
        assert client.local.stats().objects == written

    def test_save_without_local_returns_zero(self, tmp_path):
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        vm.run()
        assert vm.save_translations(dead_client()) == 0

    def test_retry_budget_respected(self):
        client = dead_client(retries=3)
        client.load("cfg", "img")
        stats = client.remote_stats
        assert stats.retries == 3        # 1 try + 3 retries
        assert stats.conn_errors == 4

    def test_breaker_short_circuits_after_repeated_failure(self):
        clock = [0.0]
        client = dead_client(retries=0, breaker_threshold=2,
                             breaker_cooldown=60.0,
                             clock=lambda: clock[0])
        client.load("cfg", "img")
        client.load("cfg", "img")        # second failure opens it
        assert client.remote_stats.breaker_opens == 1
        before = client.remote_stats.conn_errors
        client.load("cfg", "img")        # never touches the socket
        assert client.remote_stats.breaker_short_circuits == 1
        assert client.remote_stats.conn_errors == before
        assert client.remote_stats.fallbacks == 3

    def test_breaker_probe_recovers_live_server(self, tmp_path):
        clock = [0.0]
        client = dead_client(retries=0, breaker_threshold=1,
                             breaker_cooldown=5.0,
                             clock=lambda: clock[0])
        client.ping()                    # opens the breaker
        assert client.breaker.is_open
        with CacheServer(tmp_path / "repo") as server:
            client.kind, client.endpoint = parse_address(server.address)
            clock[0] = 10.0              # cooldown elapsed: probe allowed
            assert client.ping() is True
        assert not client.breaker.is_open

    def test_fallback_takes_flight_dump(self):
        tracer = EventTracer()
        client = dead_client()
        client.bind_tracer(tracer)
        client.load("cfg", "img")
        assert client.last_flight is not None
        assert client.last_flight["reason"] == "remote-fallback"
        assert client.last_flight["context"]["op"] == "pull"
        names = [event.name for event in tracer.events]
        assert "remote.request" in names
        assert "remote.retry" in names
        assert "remote.fallback" in names

    def test_lease_busy_retries_then_degrades(self, tmp_path):
        """A contended server lease is retryable; exhaustion goes local."""
        with CacheServer(tmp_path / "shared",
                         lease_timeout=0.05) as server:
            vm = CoDesignedVM(vm_soft(), hot_threshold=50)
            vm.load(assemble(LOOP))
            vm.run()
            client = RemoteRepository(server.address,
                                      local=tmp_path / "local",
                                      retries=2, sleep=lambda _s: None)
            with WriterLease(server.repository.root, ttl=60.0):
                written = vm.save_translations(client)
            assert written > 0                       # local fallback
            assert client.remote_stats.lease_busy == 3   # every attempt
            assert client.remote_stats.fallbacks == 1
            assert server.repository.stats().objects == 0
            assert client.local.stats().objects == written


class TestNetworkFaultInjection:
    @pytest.fixture(scope="class")
    def baseline(self, tmp_path_factory):
        workdir = str(tmp_path_factory.mktemp("chaos"))
        return prepare_baseline("loop", LOOP, workdir, hot_threshold=30)

    @pytest.mark.parametrize("fault", NETWORK_FAULTS)
    def test_each_class_is_survivable_at_full_rate(self, baseline,
                                                   fault):
        outcome = run_faulted(baseline, [fault], seed=11, remote=True,
                              rate=1.0)
        assert outcome.ok, outcome.format()
        assert outcome.injected[fault] > 0
        assert outcome.stats["remote"]["requests"] > 0

    def test_cocktail_of_all_network_classes(self, baseline):
        for seed in (0, 1, 2):
            outcome = run_faulted(baseline, list(NETWORK_FAULTS), seed,
                                  remote=True)
            assert outcome.ok, outcome.format()

    def test_mode_selection(self):
        for name in NETWORK_FAULTS:
            assert make_fault(name).network is True
            assert needs_remote([name]) is True
            assert modes_for([name]) == [True]    # warm surface only
        assert needs_remote(["io-error"]) is False
