"""End-to-end VM tests: the same program must produce identical
architected results under every machine configuration of Table 2 —
reference superscalar (pure interpretation), VM.soft, VM.be, VM.fe, and
Interp+SBT — across translation, chaining, hotspot promotion and fusion.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CoDesignedVM,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.isa.x86lite import ArchException, Reg, assemble

ALL = [ref_superscalar, vm_soft, vm_be, vm_fe, interp_sbt]
VM_ONLY = [vm_soft, vm_be, vm_fe, interp_sbt]


def run_all(source, hot_threshold=4, configs=ALL, max_uops=80_000_000):
    image = assemble(source)
    reports = []
    for factory in configs:
        vm = CoDesignedVM(factory(), hot_threshold=hot_threshold)
        vm.load(image)
        reports.append((vm, vm.run(max_uops=max_uops)))
    return reports


def assert_all_agree(source, hot_threshold=4):
    reports = run_all(source, hot_threshold)
    reference_vm, reference = reports[0]
    for vm, report in reports[1:]:
        assert report.output == reference.output, report.config_name
        assert report.exit_code == reference.exit_code, report.config_name
        assert vm.state.regs == reference_vm.state.regs, report.config_name
        assert vm.state.flags_tuple() == reference_vm.state.flags_tuple(), \
            report.config_name
    return reports


FIB_LOOP = """
start:
    mov eax, 0
    mov ebx, 1
    mov ecx, 40
loop:
    mov edx, eax
    add edx, ebx
    mov eax, ebx
    mov ebx, edx
    dec ecx
    jnz loop
    mov eax, 1
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

NESTED_LOOPS = """
start:
    mov esi, 0          ; accumulator
    mov ecx, 12         ; outer
outer:
    mov edx, 9          ; inner
inner:
    lea esi, [esi+edx*2+1]
    dec edx
    jnz inner
    dec ecx
    jnz outer
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

RECURSION = """
start:
    push 10
    call fib
    mov ebx, eax
    mov eax, 1
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
fib:                        ; fib(n), exponential recursion
    mov eax, [esp+4]
    cmp eax, 2
    jge recurse
    ret 4
recurse:
    dec eax
    push eax
    push eax
    call fib
    pop ebx                 ; n-1 back
    mov [esp-4], eax        ; stash fib(n-1) below stack top (scratch)
    dec ebx
    push eax                ; save fib(n-1) on stack properly
    push ebx
    call fib
    pop ebx                 ; fib(n-1)
    add eax, ebx
    ret 4
"""

MEMORY_AND_STRINGS = """
start:
    mov edi, 0x600000
    mov eax, 7
    mov ecx, 16
    rep stosd               ; fill 16 words
    mov esi, 0x600000
    mov edi, 0x601000
    mov ecx, 16
    rep movsd               ; copy them
    mov esi, 0x601000
    mov ecx, 16
    mov ebx, 0
sumloop:
    lodsd
    add ebx, eax
    dec ecx
    jnz sumloop
    mov eax, 1
    int 0x80                ; print 112
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

HOT_FUNCTION = """
start:
    mov edi, 0
    mov ecx, 60
again:
    push ecx
    call work
    pop ecx
    add edi, eax
    dec ecx
    jnz again
    mov eax, 1
    mov ebx, edi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
work:
    mov eax, [esp+4]
    imul eax, eax
    and eax, 0xFF
    ret
"""

BRANCHY = """
start:
    mov ecx, 50
    mov ebx, 0
    mov esi, 12345
top:
    mov eax, esi
    and eax, 1
    jz even
    lea esi, [esi+esi*2+1]  ; 3n+1
    jmp next
even:
    shr esi, 1
next:
    add ebx, esi
    dec ecx
    jnz top
    mov eax, 1
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

CMOV_AND_FLAGS = """
start:
    mov ecx, 30
    mov ebx, 0              ; max
    mov esi, 0x600000
    mov eax, 17
fill:
    imul eax, eax, 31
    add eax, 7
    and eax, 0xFFFF
    mov [esi], eax
    add esi, 4
    dec ecx
    jnz fill
    mov esi, 0x600000
    mov ecx, 30
scan:
    mov eax, [esi]
    cmp eax, ebx
    cmovg ebx, eax
    add esi, 4
    dec ecx
    jnz scan
    mov eax, 1
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

DIVISION = """
start:
    mov edi, 0
    mov ecx, 20
top:
    mov eax, ecx
    imul eax, eax, 1000
    mov edx, 0
    mov ebx, 7
    div ebx
    add edi, edx            ; sum remainders
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, edi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""


class TestProgramEquivalence:
    @pytest.mark.parametrize("source,expected", [
        (FIB_LOOP, 165580141),  # ebx = fib(41) after 40 iterations
        (NESTED_LOOPS, 12 * (2 * 45 + 9)),
        (RECURSION, 55),
        (MEMORY_AND_STRINGS, 112),
        (HOT_FUNCTION, None),
        (BRANCHY, None),
        (CMOV_AND_FLAGS, None),
        (DIVISION, None),
    ], ids=["fib", "nested", "recursion", "strings", "hotfn", "branchy",
            "cmov", "division"])
    def test_all_configs_agree(self, source, expected):
        reports = assert_all_agree(source)
        if expected is not None:
            assert reports[0][1].output == [expected]

    def test_vm_actually_translates(self):
        reports = run_all(FIB_LOOP, configs=[vm_soft])
        report = reports[0][1]
        assert report.blocks_translated >= 3
        assert report.superblocks_translated >= 1
        assert report.uops_executed > 0
        assert report.chains_made >= 1

    def test_hot_loop_promoted_and_fused(self):
        reports = run_all(NESTED_LOOPS, configs=[vm_soft])
        report = reports[0][1]
        assert report.superblocks_translated >= 1
        assert report.pairs_fused >= 1
        assert report.fused_pairs_executed > 0

    def test_vm_be_uses_hardware_assist(self):
        reports = run_all(FIB_LOOP, configs=[vm_be])
        vm, report = reports[0]
        assert report.xltx86_invocations > 0

    def test_vm_fe_uses_bbb_detector(self):
        reports = run_all(FIB_LOOP, configs=[vm_fe])
        vm, report = reports[0]
        from repro.hwassist import BranchBehaviorBuffer
        assert isinstance(vm.runtime.profiler, BranchBehaviorBuffer)
        assert report.blocks_translated == 0  # no BBT in VM.fe
        assert report.superblocks_translated >= 1

    def test_interp_config_interprets_cold_code(self):
        reports = run_all(FIB_LOOP, configs=[interp_sbt], hot_threshold=25)
        report = reports[0][1]
        assert report.instructions_interpreted > 0
        assert report.blocks_translated == 0


class TestPreciseExceptions:
    DIV_FAULT = """
    start:
        mov ecx, 10
    warm:                  ; make the block hot and translated
        mov eax, 100
        mov edx, 0
        mov ebx, ecx
        div ebx
        dec ecx
        jnz warm           ; last iteration divides by... ecx=1 fine
        mov ebx, 0
        mov eax, 100
        mov edx, 0
        div ebx            ; #DE here
        hlt
    """

    @pytest.mark.parametrize("factory", VM_ONLY,
                             ids=lambda f: f.__name__)
    def test_divide_error_is_precise(self, factory):
        image = assemble(self.DIV_FAULT)
        vm = CoDesignedVM(factory(), hot_threshold=3)
        vm.load(image)
        with pytest.raises(ArchException) as excinfo:
            vm.run()
        # precise state: EIP points at the faulting DIV
        assert vm.state.eip == excinfo.value.addr
        assert vm.state.regs[Reg.EAX] == 100  # operands intact
        assert vm.state.regs[Reg.EBX] == 0

    def test_reference_agrees_on_fault_address(self):
        image = assemble(self.DIV_FAULT)
        addrs = []
        for factory in [ref_superscalar] + VM_ONLY:
            vm = CoDesignedVM(factory(), hot_threshold=3)
            vm.load(image)
            with pytest.raises(ArchException) as excinfo:
                vm.run()
            addrs.append(excinfo.value.addr)
        assert len(set(addrs)) == 1


# -- property-based cross-configuration equivalence ---------------------------

_SAFE_REGS = ["eax", "ebx", "edx", "esi", "edi"]
_BIN_OPS = ["add", "sub", "and", "or", "xor", "imul"]
_UN_OPS = ["inc", "dec", "neg", "not"]


@st.composite
def random_loop_program(draw):
    """A random counted loop over straight-line register arithmetic."""
    iterations = draw(st.integers(1, 25))
    lines = ["start:"]
    for reg in _SAFE_REGS:
        lines.append(f"    mov {reg}, {draw(st.integers(0, 0xFFFF))}")
    lines.append(f"    mov ecx, {iterations}")
    lines.append("body:")
    for _ in range(draw(st.integers(1, 10))):
        kind = draw(st.sampled_from(["bin", "un", "imm", "shift", "mem"]))
        reg = draw(st.sampled_from(_SAFE_REGS))
        if kind == "bin":
            other = draw(st.sampled_from(_SAFE_REGS))
            lines.append(f"    {draw(st.sampled_from(_BIN_OPS))} "
                         f"{reg}, {other}")
        elif kind == "un":
            lines.append(f"    {draw(st.sampled_from(_UN_OPS))} {reg}")
        elif kind == "imm":
            value = draw(st.integers(-1000, 100000))
            lines.append(f"    {draw(st.sampled_from(_BIN_OPS))} "
                         f"{reg}, {value}")
        elif kind == "shift":
            op = draw(st.sampled_from(["shl", "shr", "sar"]))
            lines.append(f"    {op} {reg}, {draw(st.integers(1, 7))}")
        else:
            slot = draw(st.integers(0, 15))
            if draw(st.booleans()):
                lines.append(f"    mov [0x600000+{slot * 4}], {reg}")
            else:
                lines.append(f"    mov {reg}, [0x600000+{slot * 4}]")
    lines.append("    dec ecx")
    lines.append("    jnz body")
    lines.append("    mov eax, 1")
    lines.append("    int 0x80")      # print ebx
    lines.append("    mov eax, 0")
    lines.append("    mov ebx, 0")
    lines.append("    int 0x80")
    return "\n".join(lines)


class TestRandomProgramEquivalence:
    @given(source=random_loop_program(),
           threshold=st.sampled_from([2, 5, 23]))
    @settings(max_examples=40, deadline=None)
    def test_random_loops_agree_everywhere(self, source, threshold):
        image = assemble(source)
        results = []
        for factory in ALL:
            vm = CoDesignedVM(factory(), hot_threshold=threshold)
            vm.load(image)
            vm.run()
            results.append((vm.state.regs, vm.state.output,
                            vm.state.flags_tuple()))
        assert all(result == results[0] for result in results[1:])
