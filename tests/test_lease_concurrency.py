"""Writer lease, fsync durability, and multi-process repository safety.

Covers the two concurrency bugs this robustness pass closes:

* ``gc`` racing a concurrent ``save`` could evict objects a mid-flight
  manifest was about to reference — both now serialize on the writer
  lease and the loser degrades instead of corrupting;
* journaled writes renamed before their data was durable, so a crash
  could leave an *empty-but-renamed* file — the fsync now happens
  before the rename and has its own fault point.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.cacheserver import CacheServer
from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults import FaultInjector
from repro.faults.classes import FaultClass
from repro.faults.plane import injecting
from repro.isa.x86lite import assemble
from repro.persist import (
    LeaseBusyError,
    RemoteRepository,
    TranslationRepository,
    WriterLease,
    capture_translations,
    config_fingerprint,
    image_fingerprint,
)

LOOP = """
start:
    mov ecx, 180
    mov esi, 0
top:
    add esi, ecx
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""


def populated_repo(tmp_path, name="repo"):
    repo = TranslationRepository(tmp_path / name)
    vm = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm.load(assemble(LOOP))
    vm.run()
    vm.save_translations(repo)
    return repo


class TestWriterLease:
    def test_exclusive_acquisition(self, tmp_path):
        first = WriterLease(tmp_path)
        second = WriterLease(tmp_path)
        assert first.try_acquire() is True
        assert second.try_acquire() is False
        first.release()
        assert second.try_acquire() is True
        second.release()
        assert not (tmp_path / "writer.lease").exists()

    def test_acquire_times_out(self, tmp_path):
        with WriterLease(tmp_path, ttl=60.0):
            other = WriterLease(tmp_path)
            assert other.acquire(timeout=0.05) is False

    def test_context_manager_raises_when_contended(self, tmp_path,
                                                   monkeypatch):
        import repro.persist.lease as lease_mod
        monkeypatch.setattr(lease_mod, "DEFAULT_TIMEOUT", 0.05)
        with WriterLease(tmp_path, ttl=60.0):
            with pytest.raises(LeaseBusyError):
                with WriterLease(tmp_path):
                    pass

    def test_expired_lease_is_stolen(self, tmp_path):
        stale = WriterLease(tmp_path, ttl=-1.0)   # born expired
        assert stale.try_acquire() is True
        thief = WriterLease(tmp_path, ttl=60.0)
        assert thief.acquire(timeout=2.0) is True
        # the original holder's release must not unlink the new lease
        stale.release()
        body = json.loads((tmp_path / "writer.lease").read_text())
        assert body["holder"] == thief.holder
        thief.release()

    def test_unreadable_lease_is_not_broken(self, tmp_path):
        (tmp_path / "writer.lease").write_bytes(b"\xff not json")
        other = WriterLease(tmp_path)
        assert other.acquire(timeout=0.05) is False
        assert (tmp_path / "writer.lease").exists()


def _stale_stealer(root, break_barrier, acquire_barrier, queue):
    """Race worker: everyone breaks the planted stale lease at once,
    then everyone contends one ``try_acquire`` at once (the barrier
    between the phases pins the interleaving the tombstone protocol
    must survive: N concurrent renames of one expired file)."""
    lease = WriterLease(root, ttl=60.0)
    break_barrier.wait(timeout=10.0)
    if lease._expired():
        lease._break_stale()
    acquire_barrier.wait(timeout=10.0)
    won = lease.try_acquire()
    # winners exit still holding: process death must not unlink the
    # lease file (only an explicit release or a later steal may)
    queue.put((lease.holder, won))


class TestStaleStealRace:
    """Two (here: six) processes stealing the same expired lease must
    produce exactly one winner — the unique-tombstone rename means at
    most one process's break succeeds, and ``O_CREAT | O_EXCL`` means
    at most one re-contender creates the replacement."""

    STEALERS = 6

    def test_expired_lease_steal_race_has_one_winner(self, tmp_path):
        (tmp_path / "writer.lease").write_text(json.dumps(
            {"holder": "crashed:0:0", "pid": 0,
             "expires": time.time() - 60.0}))
        context = multiprocessing.get_context("spawn")
        break_barrier = context.Barrier(self.STEALERS)
        acquire_barrier = context.Barrier(self.STEALERS)
        queue = context.Queue()
        workers = [context.Process(
            target=_stale_stealer,
            args=(str(tmp_path), break_barrier, acquire_barrier,
                  queue)) for _ in range(self.STEALERS)]
        for worker in workers:
            worker.start()
        results = [queue.get(timeout=60.0) for _ in workers]
        for worker in workers:
            worker.join(timeout=60.0)
        assert not any(worker.is_alive() for worker in workers)
        winners = [holder for holder, won in results if won]
        assert len(winners) == 1, f"expected one winner: {results}"
        # the surviving lease file names the winner, and every
        # tombstone from the break race was cleaned up
        body = json.loads((tmp_path / "writer.lease").read_text())
        assert body["holder"] == winners[0]
        assert list(tmp_path.glob("writer.lease.stale-*")) == []
        # a loser's release must not disturb the winner's lease
        loser = WriterLease(tmp_path, ttl=60.0)
        loser.release()
        assert (tmp_path / "writer.lease").exists()


class TestLeaseSerialization:
    def test_gc_degrades_while_save_holds_lease(self, tmp_path):
        """The gc-vs-save race: gc must not evict under a live writer."""
        repo = populated_repo(tmp_path)
        objects_before = repo.stats().objects
        assert objects_before > 0
        with WriterLease(repo.root, ttl=60.0):
            report = repo.gc(0, lease_timeout=0.05)
        assert report.lease_busy is True
        assert report.evicted_objects == 0
        assert "lease busy" in report.format()
        assert repo.lease_failures == 1
        assert repo.stats().objects == objects_before
        # lease released: the same gc now evicts everything
        assert repo.gc(0, lease_timeout=2.0).evicted_objects == \
            objects_before

    def test_save_degrades_while_lease_held(self, tmp_path):
        repo = TranslationRepository(tmp_path / "repo")
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        vm.run()
        records = capture_translations(vm.runtime.directory,
                                       vm.state.memory)
        with WriterLease(repo.root, ttl=60.0):
            written = repo.save(records, "cfg", "img",
                                lease_timeout=0.05)
        assert written == 0
        assert repo.lease_failures == 1
        assert repo.stats().objects == 0
        assert repo.save(records, "cfg", "img") == len(records)


class _FsyncFault(FaultClass):
    """Test-local fault: fail every fsync with EIO."""

    name = "fsync-eio"
    sites = ("repo.fsync",)
    rate = 1.0

    def fire(self, rng, site, context):
        raise OSError(5, f"injected EIO fsyncing {context.get('path')}")


class TestFsyncDurability:
    def test_save_fsyncs_before_rename(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        renamed = []
        real_replace = os.replace

        def spy_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        def spy_replace(src, dst):
            renamed.append(str(dst))
            assert synced, f"renamed {dst} before any fsync"
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        populated_repo(tmp_path)
        assert len(synced) >= len(renamed) > 0

    def test_fsync_failure_absorbed_without_torn_files(self, tmp_path):
        repo = TranslationRepository(tmp_path / "repo")
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        vm.run()
        records = capture_translations(vm.runtime.directory,
                                       vm.state.memory)
        injector = FaultInjector(7, [_FsyncFault()])
        with injecting(injector):
            written = repo.save(records, config_fingerprint(vm.config),
                                image_fingerprint(vm._image))
        assert written == 0                 # every write failed durably
        assert repo.io_errors > 0
        assert injector.injected["fsync-eio"] > 0
        # nothing renamed into place, nothing torn: no objects, no
        # stray .tmp journals, any surviving file parses as JSON
        leftovers = [path for path in repo.root.rglob("*.tmp")]
        assert leftovers == []
        for path in repo.root.rglob("*.json"):
            json.loads(path.read_text())
        assert repo.stats().objects == 0


# -- multi-process writers ----------------------------------------------------
#
# Spawned workers (must be importable top-level functions): each saves
# the same record set under its own image fingerprint plus one shared
# contended fingerprint, either directly into the repository or through
# the cache server.  Afterwards fsck must find nothing to repair.

def _direct_writer(root, records, config_fp, worker):
    repo = TranslationRepository(root)
    total = 0
    for round_num in range(3):
        total += repo.save(records, config_fp, f"img-{worker}",
                           config_name=f"w{worker}")
        total += repo.save(records, config_fp, "img-shared",
                           config_name="shared")
    return total


def _server_writer(address, local, records, config_fp, worker):
    client = RemoteRepository(address, local=local, retries=3,
                              sleep=lambda _s: None)
    total = 0
    for round_num in range(3):
        total += client.save(records, config_fp, f"img-{worker}",
                             config_name=f"w{worker}")
        total += client.save(records, config_fp, "img-shared",
                             config_name="shared")
    stats = client.remote_stats
    return total, stats.fallbacks


class TestConcurrentWriters:
    WORKERS = 4

    @pytest.fixture
    def payload(self):
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        vm.run()
        records = capture_translations(vm.runtime.directory,
                                       vm.state.memory)
        return records, config_fingerprint(vm.config)

    def test_many_processes_one_repository(self, tmp_path, payload):
        records, config_fp = payload
        root = str(tmp_path / "shared-repo")
        context = multiprocessing.get_context("spawn")
        with context.Pool(self.WORKERS) as pool:
            results = pool.starmap(
                _direct_writer,
                [(root, records, config_fp, worker)
                 for worker in range(self.WORKERS)])
        repo = TranslationRepository(root)
        # the first writer stores every object; the rest dedup to 0
        assert sum(results) == len(records)
        check = repo.fsck(repair=False)
        assert check.ok, check.format()
        for worker in range(self.WORKERS):
            loaded = repo.load(config_fp, f"img-{worker}")
            assert {r["key"] for r in loaded} == \
                {r["key"] for r in records}
        assert len(repo.load(config_fp, "img-shared")) == len(records)

    def test_many_processes_one_server(self, tmp_path, payload):
        records, config_fp = payload
        with CacheServer(tmp_path / "served",
                         lease_timeout=10.0) as server:
            context = multiprocessing.get_context("spawn")
            with context.Pool(self.WORKERS) as pool:
                results = pool.starmap(
                    _server_writer,
                    [(server.address, str(tmp_path / f"local-{worker}"),
                      records, config_fp, worker)
                     for worker in range(self.WORKERS)])
            repo = server.repository
            check = repo.fsck(repair=False)
            assert check.ok, check.format()
            # every writer's manifest pulls complete from the one store
            for worker in range(self.WORKERS):
                loaded = repo.load(config_fp, f"img-{worker}")
                assert {r["key"] for r in loaded} == \
                    {r["key"] for r in records}
            # no client had to fall back: the server serialized writes
            assert all(fallbacks == 0 for _written, fallbacks in results)
            assert repo.stats().objects == len(records)


class TestLeaseFairness:
    """Fleet-herd contention: >=16 simultaneous clients, one lease.

    The writer lease has no queue — contenders retry with
    deterministic backoff — so "fairness" here is the liveness
    guarantee the fleet engine depends on: with a bounded retry
    budget, *every* client's writes eventually land (zero fallbacks)
    no matter how many siblings are pushing, and the store stays
    fsck-clean.
    """

    CLIENTS = 16

    @pytest.fixture
    def payload(self):
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(LOOP))
        vm.run()
        records = capture_translations(vm.runtime.directory,
                                       vm.state.memory)
        return records, config_fingerprint(vm.config)

    def _run_clients(self, body):
        errors = []
        barrier = threading.Barrier(self.CLIENTS)

        def runner(idx):
            try:
                barrier.wait(timeout=10.0)
                body(idx)
            except Exception as error:   # noqa: BLE001 - reported below
                errors.append((idx, repr(error)))

        threads = [threading.Thread(target=runner, args=(idx,))
                   for idx in range(self.CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
        assert errors == []

    def test_sixteen_clients_all_land_through_one_server(
            self, tmp_path, payload):
        records, config_fp = payload
        with CacheServer(tmp_path / "served",
                         lease_timeout=10.0) as server:
            outcomes = [None] * self.CLIENTS

            def client(idx):
                remote = RemoteRepository(server.address, retries=8,
                                          sleep=lambda _s: None)
                total = remote.save(records, config_fp, f"img-{idx}",
                                    config_name=f"c{idx}")
                total += remote.save(records, config_fp, "img-shared",
                                     config_name="shared")
                outcomes[idx] = (total,
                                 remote.remote_stats.fallbacks)
                remote.close()

            self._run_clients(client)
            # liveness: every client landed both pushes; dedup means
            # exactly one copy of each object across all 32 saves
            assert all(fallbacks == 0 for _t, fallbacks in outcomes)
            assert sum(total for total, _f in outcomes) == len(records)
            repo = server.repository
            check = repo.fsck(repair=False)
            assert check.ok, check.format()
            for idx in range(self.CLIENTS):
                loaded = repo.load(config_fp, f"img-{idx}")
                assert {r["key"] for r in loaded} == \
                    {r["key"] for r in records}
            assert len(repo.load(config_fp, "img-shared")) == \
                len(records)

    def test_sixteen_clients_outwait_an_external_lease_holder(
            self, tmp_path, payload):
        """A foreign writer holds the lease; the whole herd retries
        through ``lease-busy`` and every client still lands."""
        records, config_fp = payload
        with CacheServer(tmp_path / "served",
                         lease_timeout=0.05) as server:
            lease = WriterLease(server.repository.root, ttl=60.0)
            assert lease.try_acquire() is True
            release_at = time.monotonic() + 0.3
            outcomes = [None] * self.CLIENTS
            release_lock = threading.Lock()

            def patient_sleep(_seconds):
                # deterministic stand-in for backoff: park until the
                # external holder is due to let go, release it once,
                # then yield so sibling threads make progress
                if time.monotonic() >= release_at:
                    with release_lock:
                        if lease.held:
                            lease.release()
                time.sleep(0.02)

            def client(idx):
                remote = RemoteRepository(server.address, retries=40,
                                          backoff_base=0.0,
                                          sleep=patient_sleep)
                written = remote.save(records, config_fp, "img-shared")
                outcomes[idx] = (written, remote.remote_stats.fallbacks,
                                 remote.remote_stats.lease_busy)
                remote.close()

            self._run_clients(client)
            if lease.held:
                lease.release()
            assert all(fallbacks == 0
                       for _w, fallbacks, _b in outcomes)
            # the herd arrived while the lease was held, so busy
            # rejections were actually exercised, and still every
            # object landed exactly once
            assert sum(w for w, _f, _b in outcomes) == len(records)
            assert server.stats.to_dict()["lease_busy"] > 0
            assert any(busy > 0 for _w, _f, busy in outcomes)
            repo = server.repository
            check = repo.fsck(repair=False)
            assert check.ok, check.format()
            assert len(repo.load(config_fp, "img-shared")) == \
                len(records)
