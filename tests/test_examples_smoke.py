"""Smoke tests: every example script runs end to end.

Examples are part of the public deliverable; these tests execute each
one in-process (stdout captured) so a regression anywhere in the API
surface they exercise fails the suite.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES_DIR / name)] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_example_inventory():
    # the README documents at least these
    for required in ("quickstart.py", "translation_walkthrough.py",
                     "hardware_assist_demo.py", "startup_comparison.py",
                     "hot_threshold_tuning.py", "precise_exceptions.py",
                     "multitasking_pressure.py"):
        assert required in ALL_EXAMPLES


@pytest.mark.parametrize("name", [
    "quickstart.py",
    "translation_walkthrough.py",
    "hardware_assist_demo.py",
    "precise_exceptions.py",
])
def test_fast_examples(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert len(out) > 100  # produced substantial output


def test_startup_comparison_example(capsys):
    run_example("startup_comparison.py", ["Winzip"])
    out = capsys.readouterr().out
    assert "breakeven" in out
    assert "Winzip" in out


def test_quickstart_prints_agreement(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    expected = sum(i * i for i in range(1, 51))
    assert str(expected) in out
    for name in ("VM.soft", "VM.be", "VM.fe"):
        assert name in out
