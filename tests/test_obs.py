"""Observability: ledger conservation, trace export, flight recorder.

Pins the contracts of :mod:`repro.obs`:

* every attributed cycle lands in exactly one phase and the phase sums
  equal the clock total (conservation by construction);
* a traced run is deterministic — same workload, same seed, byte-
  identical exported stream;
* exports validate against the checked-in ``trace_schema.json``;
* a :class:`~repro.vmm.runtime.VMRuntimeError` under tracing carries a
  flight-recorder dump naming the faulting pc/mode, and the chaos
  harness attaches one when a run escapes.
"""

from __future__ import annotations

import pytest

from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults.harness import prepare_baseline, run_faulted
from repro.isa.x86lite import assemble
from repro.obs.export import (
    export_trace,
    load_trace_schema,
    serialize_trace,
    validate_trace,
)
from repro.obs.ledger import EQ1_PHASES, CycleLedger
from repro.obs.tracer import EVENT_TYPES, EventTracer
from repro.timing import simulate_startup
from repro.vmm.runtime import VMRuntimeError
from repro.workloads import generate_workload, winstone_app
from repro.workloads.programs import PROGRAMS


# -- ledger -------------------------------------------------------------------

class TestCycleLedger:
    def test_conservation_by_construction(self):
        ledger = CycleLedger()
        ledger.charge("bbt_translation", 830.0, block=0x400000)
        ledger.charge("bbt_execution", 120.0)
        ledger.charge("interpretation", 45.0)
        assert ledger.total == pytest.approx(995.0)
        assert sum(ledger.totals().values()) == \
            pytest.approx(ledger.total)
        assert ledger.conserved()

    def test_non_positive_charges_ignored(self):
        ledger = CycleLedger()
        ledger.charge("interpretation", 0.0)
        ledger.charge("interpretation", -5.0)
        assert ledger.total == 0.0
        assert ledger.totals() == {}

    def test_timeline_splits_across_interval_boundaries(self):
        ledger = CycleLedger(first_interval=100.0,
                             intervals_per_decade=1)
        # one 250-cycle charge spans the [0,100) and [100,1000) buckets
        ledger.charge("bbt_translation", 250.0)
        timeline = ledger.timeline()
        assert [entry["start"] for entry in timeline] == [0.0, 100.0]
        assert timeline[0]["phases"]["bbt_translation"] == 100.0
        assert timeline[1]["phases"]["bbt_translation"] == 150.0
        assert sum(sum(entry["phases"].values())
                   for entry in timeline) == pytest.approx(ledger.total)

    def test_top_blocks_ranked_by_cycles_then_address(self):
        ledger = CycleLedger()
        ledger.charge("bbt_translation", 50.0, block=0x30)
        ledger.charge("bbt_translation", 90.0, block=0x20)
        ledger.charge("bbt_translation", 90.0, block=0x10)
        assert ledger.top_blocks("bbt_translation", limit=2) == \
            [(0x10, 90.0), (0x20, 90.0)]

    def test_eq1_breakdown_folds_categories(self):
        ledger = CycleLedger()
        ledger.charge("bbt_translation", 10.0)
        ledger.charge("bbt_emulation", 4.0)   # timing-sim name
        ledger.charge("bbt_execution", 6.0)   # runtime name
        folded = ledger.eq1_breakdown()
        assert folded["M_bbt*T_bbt"] == 10.0
        assert folded["N_bbt*E_bbt"] == 10.0  # both map to one term
        assert sum(folded.values()) == pytest.approx(ledger.total)


# -- tracer -------------------------------------------------------------------

class TestEventTracer:
    def test_unknown_event_names_rejected(self):
        tracer = EventTracer()
        with pytest.raises(ValueError):
            tracer.instant("no.such.event")
        with pytest.raises(ValueError):
            tracer.complete("block.first_exec", 0.0)  # "i", not "X"

    def test_flight_ring_is_bounded(self):
        tracer = EventTracer(keep_events=False, flight_capacity=4)
        for _ in range(10):
            tracer.instant("block.first_exec")
        assert len(tracer.flight) == 4
        assert len(tracer.events) == 0
        assert tracer.dropped == 10

    def test_flight_dump_carries_context(self):
        clock = iter(float(i) for i in range(100))
        tracer = EventTracer(clock=lambda: next(clock))
        tracer.instant("run.begin")
        dump = tracer.flight_dump("TestFault", pc="0x400000",
                                  mode="bbt")
        assert dump["reason"] == "TestFault"
        assert dump["context"] == {"mode": "bbt", "pc": "0x400000"}
        assert dump["events"][0]["name"] == "run.begin"

    def test_every_event_name_has_a_phase_type(self):
        assert set(EVENT_TYPES.values()) <= {"X", "i"}


# -- traced end-to-end runs ---------------------------------------------------

def _traced_vm(program="checksum", hot_threshold=10):
    vm = CoDesignedVM(vm_soft().with_(trace=True),
                      hot_threshold=hot_threshold)
    vm.load(assemble(PROGRAMS[program]))
    vm.run()
    return vm


@pytest.fixture(scope="module")
def traced_doc():
    return _traced_vm().export_trace()


class TestTraceExport:
    def test_schema_validation_passes(self, traced_doc):
        assert validate_trace(traced_doc) == []

    def test_jsonschema_backend_is_available(self):
        # the fallback validator covers a subset; make sure the real
        # schema engine is what actually gates exports in this tree
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.Draft7Validator.check_schema(load_trace_schema())

    def test_missing_dur_fails_validation(self, traced_doc):
        import copy
        doc = copy.deepcopy(traced_doc)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices, "expected at least one translate slice"
        del slices[0]["dur"]
        assert validate_trace(doc) != []

    def test_leaked_cycles_fail_validation(self, traced_doc):
        import copy
        doc = copy.deepcopy(traced_doc)
        doc["phase_cycles"]["bbt_translation"] += 123.0
        problems = validate_trace(doc)
        assert any("leaked" in problem for problem in problems)

    def test_attribution_embedded_and_conserved(self, traced_doc):
        assert traced_doc["conserved"] is True
        assert sum(traced_doc["phase_cycles"].values()) == \
            pytest.approx(traced_doc["total_cycles"])
        assert set(traced_doc["eq1"]) <= \
            set(EQ1_PHASES.values()) | {"other"}

    def test_determinism_byte_identical(self):
        first = serialize_trace(_traced_vm().export_trace())
        second = serialize_trace(_traced_vm().export_trace())
        assert first == second

    def test_export_requires_tracing(self):
        vm = CoDesignedVM(vm_soft())
        vm.load(assemble(PROGRAMS["checksum"]))
        vm.run()
        assert vm.tracer is None
        with pytest.raises(RuntimeError, match="trace=True"):
            vm.export_trace()


# -- flight recorder ----------------------------------------------------------

class TestFlightRecorder:
    def test_vm_runtime_error_carries_dump(self):
        vm = CoDesignedVM(vm_soft().with_(trace=True), hot_threshold=10)
        vm.load(assemble(PROGRAMS["bubble_sort"]))
        with pytest.raises(VMRuntimeError) as excinfo:
            vm.run(max_uops=50)          # budget far too small
        recording = excinfo.value.flight_recording
        assert recording is not None
        assert recording["reason"] == type(excinfo.value).__name__
        assert recording["context"]["pc"].startswith("0x")
        assert recording["context"]["mode"]
        assert "dispatches" in recording["context"]

    def test_untraced_error_has_no_dump(self):
        vm = CoDesignedVM(vm_soft(), hot_threshold=10)
        vm.load(assemble(PROGRAMS["bubble_sort"]))
        with pytest.raises(VMRuntimeError) as excinfo:
            vm.run(max_uops=50)
        assert excinfo.value.flight_recording is None

    def test_chaos_harness_attaches_dump_on_escape(self, tmp_path,
                                                   monkeypatch):
        baseline = prepare_baseline("checksum", PROGRAMS["checksum"],
                                    str(tmp_path), hot_threshold=10)
        original_run = CoDesignedVM.run

        def exploding_run(self, *args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(CoDesignedVM, "run", exploding_run)
        outcome = run_faulted(baseline, ["bbt-fault"], seed=1,
                              workdir=str(tmp_path), warm=False)
        monkeypatch.setattr(CoDesignedVM, "run", original_run)
        assert not outcome.ok
        assert outcome.flight_recording is not None
        assert outcome.flight_recording["reason"] == \
            "chaos-exception:RuntimeError"

    def test_surviving_chaos_run_has_no_dump(self, tmp_path):
        baseline = prepare_baseline("checksum", PROGRAMS["checksum"],
                                    str(tmp_path), hot_threshold=10)
        outcome = run_faulted(baseline, ["bbt-fault"], seed=2,
                              workdir=str(tmp_path), warm=False)
        assert outcome.ok
        assert outcome.flight_recording is None


# -- timing-simulator ledger --------------------------------------------------

class TestStartupSimLedger:
    def test_ledger_matches_sampler_clock(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=5_000_000, seed=3)
        result = simulate_startup(vm_soft(), workload)
        assert result.ledger is not None
        assert result.conserved
        assert result.ledger.total == pytest.approx(result.total_cycles)
        # the ledger mirrors the legacy breakdown dict exactly (for the
        # categories that charged nonzero cycles)
        totals = result.ledger.totals()
        for category, cycles in result.breakdown.items():
            if cycles > 0:
                assert totals[category] == pytest.approx(cycles)
