"""Overload-protection control plane (docs/overload.md): deadline
propagation, retry budgets, admission control / shedding, hedged reads.

Live-socket pieces use a real :class:`CacheServer` (or a 1x2
:class:`LocalCluster`) on loopback; pure-logic pieces (the deadline
arithmetic, the token bucket, jitter decorrelation, the admission
check) run against injectable clocks so nothing here waits out a real
backoff.
"""

from __future__ import annotations

import socket

import pytest

from repro.cacheserver import CacheServer, protocol
from repro.cluster import ClusterRepository, LocalCluster
from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults.injector import FaultInjector
from repro.faults.plane import injecting
from repro.fleet import FleetEngine, FleetScenario
from repro.isa.x86lite import assemble
from repro.lint import LintEngine
from repro.persist.deadline import Deadline, RetryBudget
from repro.persist.remote import (RemoteRejected, RemoteRepository,
                                  RemoteUnavailable)
from repro.workloads.programs import PROGRAMS


def dead_address() -> str:
    """A loopback port guaranteed to refuse connections."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def dead_client(**kwargs):
    kwargs.setdefault("retries", 1)
    kwargs.setdefault("timeout", 0.5)
    kwargs.setdefault("sleep", lambda _s: None)
    return RemoteRepository(dead_address(), local=None, **kwargs)


# -- deadline + retry budget primitives ---------------------------------------


class TestDeadline:
    def test_remaining_tracks_injected_clock(self):
        clock = [10.0]
        deadline = Deadline.after(2.0, lambda: clock[0])
        assert deadline.remaining() == pytest.approx(2.0)
        clock[0] = 11.5
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired
        clock[0] = 12.5
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_remaining_ms_rounds_up(self):
        clock = [0.0]
        deadline = Deadline.after(0.0004, lambda: clock[0])
        # a tiny positive budget must not wire as 0 (the server would
        # treat it as already expired)
        assert deadline.remaining_ms() == 1

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0, lambda: 0.0)


class TestRetryBudget:
    def test_spend_and_earn(self):
        budget = RetryBudget(capacity=4.0, earn_rate=0.5, initial=1.0)
        assert budget.spend()
        assert not budget.spend()          # bucket empty
        assert budget.exhaustions == 1
        budget.earn()
        budget.earn()
        assert budget.spend()              # two successes bought one
        assert budget.spent == 2

    def test_earn_caps_at_capacity(self):
        budget = RetryBudget(capacity=1.0, earn_rate=0.5, initial=1.0)
        budget.earn()
        assert budget.tokens == 1.0

    def test_amplification_bounded_under_total_failure(self):
        # the metastability property: a client hammered by failures
        # can never retry more than initial + earned tokens
        budget = RetryBudget(capacity=8.0, earn_rate=0.5, initial=3.0)
        retries = sum(budget.spend() for _ in range(100))
        assert retries == 3


# -- error-category classification (satellite 1) ------------------------------


class TestErrorClassification:
    def test_category_sets_are_disjoint(self):
        assert not (protocol.RETRYABLE_ERRORS
                    & protocol.CLIENT_FAULT_ERRORS)
        assert "overloaded" in protocol.RETRYABLE_ERRORS
        assert "bad-request" in protocol.CLIENT_FAULT_ERRORS
        assert "deadline-exceeded" in protocol.CLIENT_FAULT_ERRORS

    def test_malformed_push_fails_fast_without_burning_retries(
            self, tmp_path):
        """Regression: a malformed push used to burn the full retry
        schedule on an error no retry can fix."""
        with CacheServer(tmp_path / "repo") as server:
            client = RemoteRepository(server.address, local=None,
                                      retries=3,
                                      sleep=lambda _s: None)
            with pytest.raises(RemoteRejected):
                client.request("push", {"records": [],
                                        "config_fp": 123,
                                        "image_fp": None})
            stats = client.remote_stats
            assert stats.retries == 0
            assert stats.rejected_fast == 1
            assert not client.breaker.is_open
            # the connection survives a fail-fast rejection
            assert client.ping()
            client.close()

    def test_retryable_categories_still_retry(self, tmp_path):
        client = dead_client(retries=2)
        with pytest.raises(RemoteUnavailable):
            client.request("pull", {"config_fp": "c", "image_fp": "i"})
        assert client.remote_stats.retries == 2
        client.close()


# -- jitter decorrelation (satellite 2) ---------------------------------------


class TestJitterDecorrelation:
    def test_backoff_deterministic_for_same_inputs(self):
        one = dead_client(jitter_seed=3)
        two = dead_client(jitter_seed=3)
        assert one._backoff("pull", 1, endpoint="a:1") == \
            two._backoff("pull", 1, endpoint="a:1")
        one.close(), two.close()

    def test_backoff_decorrelates_across_endpoints_and_seeds(self):
        client = dead_client(jitter_seed=0)
        other = dead_client(jitter_seed=1)
        by_endpoint = {client._backoff("pull", 1, endpoint=ep)
                       for ep in ("a:1", "b:2", "c:3")}
        assert len(by_endpoint) == 3      # per-endpoint decorrelation
        assert client._backoff("pull", 1, endpoint="a:1") != \
            other._backoff("pull", 1, endpoint="a:1")
        client.close(), other.close()

    def test_backoff_grows_with_attempt_and_respects_cap(self):
        client = dead_client(backoff_base=0.1, backoff_cap=0.3)
        values = [client._backoff("pull", attempt, endpoint="a:1")
                  for attempt in range(8)]
        assert all(value <= 0.3 for value in values)
        assert values[-1] == 0.3          # cap reached
        client.close()


# -- deadline propagation -----------------------------------------------------


class TestDeadlinePropagation:
    def test_client_stops_retrying_past_deadline(self):
        clock = [0.0]
        client = dead_client(
            retries=10, request_budget=1.0,
            retry_budget_initial=8.0,
            clock=lambda: clock[0],
            sleep=lambda s: clock.__setitem__(0, clock[0] + s))
        with pytest.raises(RemoteUnavailable) as excinfo:
            client.request("pull", {"config_fp": "c", "image_fp": "i"})
        assert "deadline" in str(excinfo.value)
        assert client.remote_stats.deadline_exceeded == 1
        # the deadline indicts the budget, not the endpoint: the
        # breaker must not have eaten the exhaustion as a failure spree
        assert client.remote_stats.retries < 10
        client.close()

    def test_server_rejects_expired_deadline(self, tmp_path):
        with CacheServer(tmp_path / "repo") as server:
            response = server.dispatch({"op": "pull",
                                        "config_fp": "c",
                                        "image_fp": "i",
                                        "deadline_ms": 0})
            assert response["error"] == "deadline-exceeded"
            assert server.stats.deadline_rejected == 1

    def test_server_ignores_malformed_deadline(self, tmp_path):
        with CacheServer(tmp_path / "repo") as server:
            for bogus in ("soon", True, None, [1]):
                response = server.dispatch({"op": "pull",
                                            "config_fp": "c",
                                            "image_fp": "i",
                                            "deadline_ms": bogus})
                assert response.get("error") != "deadline-exceeded"
            assert server.stats.deadline_rejected == 0

    def test_requests_carry_deadline_ms(self, tmp_path):
        seen = {}
        with CacheServer(tmp_path / "repo") as server:
            original = server.dispatch

            def spy(request):
                seen.setdefault("deadline_ms",
                                request.get("deadline_ms"))
                return original(request)

            server.dispatch = spy
            client = RemoteRepository(server.address, local=None,
                                      request_budget=5.0)
            client.ping()
            client.close()
        assert isinstance(seen["deadline_ms"], int)
        assert 0 < seen["deadline_ms"] <= 5000


# -- admission control & shedding ---------------------------------------------


class TestAdmissionControl:
    def test_queue_depth_shed_carries_retry_after(self, tmp_path):
        server = CacheServer(tmp_path / "repo", max_queue_depth=1,
                             shed_retry_after=0.1)
        response = server._admission_check(
            "pull", {"op": "pull"}, depth=4)
        assert response["error"] == "overloaded"
        assert response["retry_after"] == pytest.approx(0.3)
        assert server.stats.requests_shed == 1

    def test_observability_ops_never_shed(self, tmp_path):
        server = CacheServer(tmp_path / "repo", max_queue_depth=1)
        for op in ("health", "metrics", "ping"):
            assert server._admission_check(
                op, {"op": op}, depth=100) is None
        assert server.stats.requests_shed == 0

    def test_unbounded_server_never_sheds(self, tmp_path):
        server = CacheServer(tmp_path / "repo")
        assert server._admission_check(
            "pull", {"op": "pull"}, depth=10_000) is None

    def test_client_honors_retry_after_hint(self, tmp_path):
        """Injected sheds: the client must sleep at least the server's
        hint (not just its own backoff) before the next attempt."""
        sleeps = []
        with CacheServer(tmp_path / "repo") as server:
            client = RemoteRepository(server.address, local=None,
                                      retries=2, backoff_base=0.001,
                                      sleep=sleeps.append)
            injector = FaultInjector(5, ["server-overloaded"],
                                     rate=1.0)
            with injecting(injector):
                with pytest.raises(RemoteUnavailable):
                    client.request("pull", {"config_fp": "c",
                                            "image_fp": "i"})
            assert client.remote_stats.sheds >= 1
            # injected sheds advertise retry_after = backoff_base
            assert sleeps and all(s >= 0.001 for s in sleeps)
            client.close()

    def test_budget_exhaustion_degrades_immediately(self):
        client = dead_client(retries=10, retry_budget_initial=1.0,
                             retry_budget_earn=0.0)
        with pytest.raises(RemoteUnavailable) as excinfo:
            client.request("pull", {"config_fp": "c", "image_fp": "i"})
        assert "retry budget" in str(excinfo.value)
        assert client.remote_stats.retries == 1
        assert client.remote_stats.budget_exhausted == 1
        client.close()


# -- hedged reads -------------------------------------------------------------


def _primed_cluster_client(tmp_path, **kwargs):
    grid = LocalCluster(tmp_path / "grid", shards=1, replicas=2)
    spec = grid.start()
    primer = ClusterRepository(spec, local=None, retries=2,
                               breaker_cooldown=0.0,
                               sleep=lambda _s: None)
    vm = CoDesignedVM(vm_soft(), hot_threshold=20)
    vm.load(assemble(PROGRAMS["fibonacci"]))
    vm.run()
    vm.save_translations(primer)
    primer.close()
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("breaker_cooldown", 0.0)
    kwargs.setdefault("sleep", lambda _s: None)
    client = ClusterRepository(spec, local=None, **kwargs)
    return grid, client, vm


class TestHedgedReads:
    def test_forced_hedge_wins_on_sibling(self, tmp_path):
        grid, client, gold = _primed_cluster_client(tmp_path)
        try:
            injector = FaultInjector(7, ["hedge-trigger"], rate=1.0)
            with injecting(injector):
                vm = CoDesignedVM(vm_soft(), hot_threshold=20)
                vm.load(assemble(PROGRAMS["fibonacci"]))
                load = vm.warm_start(client)
                vm.run()
            assert client.cluster_stats.hedges >= 1
            assert client.cluster_stats.hedge_wins >= 1
            assert load.loaded > 0
            assert vm.state.exit_code == gold.state.exit_code
            assert list(vm.state.output) == list(gold.state.output)
        finally:
            client.close()
            grid.stop()

    def test_threshold_hedge_abandons_dead_primary(self, tmp_path):
        """An explicit hedge threshold arms the single-attempt primary
        probe; a primary that cannot answer inside it (here: down) is
        abandoned and the sibling answers — without burning the
        probe's own retry schedule."""
        grid, client, gold = _primed_cluster_client(
            tmp_path, hedge_threshold=0.25)
        try:
            grid.stop_replica(grid.group_name(0), 0)
            records = client.load(*_fingerprints(gold))
            assert records
            assert client.cluster_stats.hedges >= 1
            assert client.cluster_stats.hedge_wins >= 1
        finally:
            client.close()
            grid.stop()

    def test_no_hedge_without_siblings_or_samples(self, tmp_path):
        grid = LocalCluster(tmp_path / "solo", shards=1, replicas=1)
        spec = grid.start()
        client = ClusterRepository(spec, local=None, retries=1,
                                   sleep=lambda _s: None)
        try:
            client.load("cfg", "img")
            assert client.cluster_stats.hedges == 0
        finally:
            client.close()
            grid.stop()


def _fingerprints(vm):
    from repro.persist import config_fingerprint, image_fingerprint
    return (config_fingerprint(vm.config), image_fingerprint(vm._image))


# -- thundering herd (satellite 3) --------------------------------------------


class TestThunderingHerd:
    def test_cold_herd_through_undersized_server(self, tmp_path):
        """16 cold boots, all at once, through one undersized server
        with a slow-server cocktail: amplification stays within the 2x
        budget, nothing is accepted past its deadline, and every
        instance byte-matches the fault-free architected baseline."""
        scenario = FleetScenario(
            n=16, boot_policy="all_at_once", image_policy="one",
            config="soft", warm=False, workload="fibonacci", seed=0,
            faults=("slow-server",), max_queue_depth=2,
            hot_threshold=20)
        result = FleetEngine(workdir=tmp_path).run(scenario)

        assert result.arch_ok, \
            [p for i in result.instances for p in i.problems]
        requests = sum(i.remote.get("requests", 0)
                       for i in result.instances)
        retries = sum(i.remote.get("retries", 0)
                      for i in result.instances)
        late = sum(i.remote.get("late_responses", 0)
                   for i in result.instances)
        assert requests > 0
        amplification = (requests + retries) / requests
        assert amplification <= 2.0, \
            f"retry amplification {amplification:.2f} over bound"
        assert late == 0, f"{late} response(s) accepted past deadline"


# -- TMO001 lint rule ---------------------------------------------------------

SITES = {"overload.shed", "overload.deadline", "overload.hedge",
         "net.connect"}


def lint_one(path, source, rule, **registries):
    engine = LintEngine(rules=[rule], **registries)
    return engine.lint_sources({path: source})


def hits(report, rule_id):
    return [v for v in report.violations if v.rule_id == rule_id]


class TestTimeoutRule:
    def test_flags_literal_settimeout(self):
        report = lint_one("repro/persist/remote.py",
                          "def f(sock):\n    sock.settimeout(2.0)\n",
                          "TMO001")
        assert hits(report, "TMO001")

    def test_flags_literal_timeout_keyword_on_request_path(self):
        report = lint_one(
            "repro/cluster/client.py",
            "def f(client):\n"
            "    client.request('pull', {}, timeout=1.5)\n",
            "TMO001")
        assert hits(report, "TMO001")

    def test_allows_deadline_derived_timeouts(self):
        report = lint_one(
            "repro/persist/remote.py",
            "def f(self, sock, deadline):\n"
            "    sock.settimeout(min(self.timeout,"
            " deadline.remaining()))\n",
            "TMO001")
        assert not hits(report, "TMO001")

    def test_ignores_lock_waits_and_config_knobs(self):
        report = lint_one(
            "repro/cacheserver/server.py",
            "def f(self, cond, lease, cls):\n"
            "    cond.wait_for(lambda: True, timeout=1.0)\n"
            "    lease.acquire(timeout=2.0)\n"
            "    cls(addr, timeout=2.0)\n",
            "TMO001")
        assert not hits(report, "TMO001")

    def test_out_of_scope_packages_unchecked(self):
        report = lint_one("repro/faults/harness.py",
                          "def f(sock):\n    sock.settimeout(2.0)\n",
                          "TMO001")
        assert not hits(report, "TMO001")

    def test_project_check_catches_unregistered_overload_site(self):
        sources = {
            "repro/persist/remote.py":
                "def f():\n    fault_point('overload.bogus')\n"
                "    fault_point('overload.shed')\n"
                "    fault_point('overload.deadline')\n",
            "repro/cluster/client.py":
                "def g():\n    fault_point('overload.hedge')\n",
        }
        engine = LintEngine(rules=["TMO001"], fault_sites=SITES)
        report = engine.lint_sources(sources)
        messages = [v.message for v in hits(report, "TMO001")]
        assert any("overload.bogus" in m for m in messages)

    def test_project_check_catches_unvisited_overload_site(self):
        sources = {
            "repro/persist/remote.py":
                "def f():\n    fault_point('overload.shed')\n"
                "    fault_point('overload.deadline')\n",
            "repro/cluster/client.py":
                "def g():\n    fault_point('net.connect')\n",
        }
        engine = LintEngine(rules=["TMO001"], fault_sites=SITES)
        report = engine.lint_sources(sources)
        messages = [v.message for v in hits(report, "TMO001")]
        assert any("overload.hedge" in m for m in messages)

    def test_live_tree_is_clean(self):
        from pathlib import Path

        from repro.faults.classes import FAULT_CLASSES, make_fault
        sites = set()
        for name in FAULT_CLASSES:
            sites.update(make_fault(name).sites)
        engine = LintEngine(rules=["TMO001"], fault_sites=sites)
        repo = Path(__file__).resolve().parents[1]
        report = engine.lint_paths([repo / "src" / "repro"])
        assert report.ok, report.format()


# -- fleet knob plumbing ------------------------------------------------------


class TestFleetKnobs:
    def test_execution_knobs_stay_out_of_canonical_dict(self):
        scenario = FleetScenario(request_budget=3.0, max_queue_depth=2)
        doc = scenario.to_dict()
        assert "request_budget" not in doc
        assert "max_queue_depth" not in doc
