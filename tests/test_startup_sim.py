"""Startup simulator tests: conservation, config semantics, scenarios,
and reproduction of the paper's headline startup relationships."""

import pytest

from repro.core import (
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.timing import Scenario, simulate_startup
from repro.timing.sampler import crossover_cycles, interpolate_at
from repro.workloads import generate_workload, winstone_app

DYN = 50_000_000  # enough dynamics for shape tests, fast to simulate


@pytest.fixture(scope="module")
def workload():
    return generate_workload(winstone_app("Word"), dyn_instrs=DYN, seed=3)


@pytest.fixture(scope="module")
def results(workload):
    return {factory().mode: simulate_startup(factory(), workload)
            for factory in (ref_superscalar, vm_soft, vm_be, vm_fe,
                            interp_sbt)}


class TestConservation:
    def test_all_instructions_executed(self, workload, results):
        for result in results.values():
            assert result.total_instrs == pytest.approx(
                workload.total_dynamic_instrs)

    def test_cycles_positive_and_monotone(self, results):
        for result in results.values():
            series = result.series
            assert all(a <= b for a, b in zip(series.cycles,
                                              series.cycles[1:]))
            assert all(a <= b + 1e-6
                       for a, b in zip(series.instructions,
                                       series.instructions[1:]))

    def test_breakdown_sums_to_total(self, results):
        for result in results.values():
            assert sum(result.breakdown.values()) == pytest.approx(
                result.total_cycles)

    def test_deterministic(self, workload):
        first = simulate_startup(vm_soft(), workload)
        second = simulate_startup(vm_soft(), workload)
        assert first.total_cycles == second.total_cycles
        assert first.series.instructions == second.series.instructions


class TestConfigurationSemantics:
    def test_reference_never_translates(self, results):
        ref = results["ref"]
        assert ref.m_bbt_instrs == 0 and ref.m_sbt_instrs == 0
        assert "bbt_translation" not in ref.breakdown
        assert ref.hotspot_coverage == 0.0

    def test_vm_fe_has_no_bbt(self, results):
        fe = results["fe"]
        assert fe.m_bbt_instrs == 0
        assert "bbt_translation" not in fe.breakdown
        assert "x86_mode" in fe.breakdown

    def test_bbt_configs_translate_whole_working_set(self, workload,
                                                     results):
        for mode in ("soft", "be"):
            assert results[mode].m_bbt_instrs == workload.static_instrs

    def test_soft_and_be_differ_only_in_translation_cost(self, results):
        soft, be = results["soft"], results["be"]
        assert soft.breakdown["bbt_translation"] == pytest.approx(
            be.breakdown["bbt_translation"] * 83 / 20)
        assert soft.breakdown["bbt_emulation"] == pytest.approx(
            be.breakdown["bbt_emulation"])
        assert soft.m_sbt_instrs == be.m_sbt_instrs

    def test_interp_uses_low_threshold_and_optimizes_more(self, results):
        assert results["interp"].m_sbt_instrs > \
            results["soft"].m_sbt_instrs

    def test_identical_hot_detection_across_vm_bbt_modes(self, results):
        assert results["soft"].promotions == results["be"].promotions

    def test_coverage_between_zero_and_one(self, results):
        for result in results.values():
            assert 0.0 <= result.hotspot_coverage <= 1.0


class TestPaperRelationships:
    """The paper's qualitative startup results must hold."""

    def test_total_time_ordering(self, results):
        # interpretation-based startup is the slowest strategy
        assert results["interp"].total_cycles > \
            results["soft"].total_cycles
        # hardware assists strictly reduce VM time
        assert results["soft"].total_cycles > \
            results["be"].total_cycles > results["fe"].total_cycles

    def test_breakeven_ordering(self, results):
        ref = results["ref"].series
        soft = crossover_cycles(results["soft"].series, ref, start=1e4)
        be = crossover_cycles(results["be"].series, ref, start=1e4)
        fe = crossover_cycles(results["fe"].series, ref, start=1e4)
        assert fe <= be <= soft

    def test_vm_soft_early_deficit(self, results):
        # paper: at 1M cycles the software VM has executed only about a
        # quarter of the reference's instructions
        ref = interpolate_at(results["ref"].series, 1e6)
        soft = interpolate_at(results["soft"].series, 1e6)
        assert soft < ref / 2

    def test_vm_fe_tracks_reference_early(self, results):
        # paper: VM.fe follows virtually the same startup curve
        ref = interpolate_at(results["ref"].series, 1e6)
        fe = interpolate_at(results["fe"].series, 1e6)
        assert fe == pytest.approx(ref, rel=0.15)

    def test_bbt_is_major_translation_overhead_for_soft(self, results):
        # Section 3.2 / Eq. 1: BBT dominates translation overhead
        soft = results["soft"].breakdown
        assert soft["bbt_translation"] > soft["sbt_translation"]

    def test_interp_aggregate_far_behind_reference(self, results):
        # paper: about half at 500M instructions; at this test's shorter
        # 50M-instruction scale the deficit is even larger
        ratio = results["interp"].aggregate_ipc / \
            results["ref"].aggregate_ipc
        assert 0.1 <= ratio <= 0.8

    def test_activity_semantics(self, results):
        # superscalar decoders always on; VM.soft has none; the assists
        # sit in between, VM.fe staying active longer than VM.be
        def final_activity(result):
            return result.series.aux[-1] / result.total_cycles
        assert final_activity(results["ref"]) == pytest.approx(1.0,
                                                               abs=0.02)
        assert final_activity(results["soft"]) == 0.0
        be, fe = final_activity(results["be"]), \
            final_activity(results["fe"])
        assert 0.0 < be < fe < 1.0

    def test_activity_decays_over_time(self, results):
        aux = results["fe"].series
        early = _activity_at(aux, 1e6)
        late = _activity_at(aux, aux.cycles[-1])
        assert late < early


def _activity_at(series, cycles):
    from repro.analysis.activity import _interpolate
    busy = _interpolate(series.cycles, series.aux, cycles)
    return busy / cycles


class TestScenarios:
    @pytest.fixture(scope="class")
    def scenario_results(self, workload):
        return {scenario: simulate_startup(vm_soft(), workload, scenario)
                for scenario in Scenario}

    def test_scenario_time_ordering(self, scenario_results):
        # disk slower than memory startup; persistent warm start beats
        # memory startup but pays its boot-time load vs the in-memory
        # warm code cache; steady state fastest (Section 3.1 plus the
        # repository-backed warm start)
        disk = scenario_results[Scenario.DISK_STARTUP].total_cycles
        memory = scenario_results[Scenario.MEMORY_STARTUP].total_cycles
        persist = scenario_results[Scenario.PERSISTENT_WARM].total_cycles
        warm = scenario_results[Scenario.CODE_CACHE_WARM].total_cycles
        steady = scenario_results[Scenario.STEADY_STATE].total_cycles
        assert disk > memory > persist > warm > steady

    def test_no_translation_in_warm_scenarios(self, scenario_results):
        for scenario in (Scenario.PERSISTENT_WARM,
                         Scenario.CODE_CACHE_WARM,
                         Scenario.STEADY_STATE):
            result = scenario_results[scenario]
            assert "bbt_translation" not in result.breakdown
            assert "sbt_translation" not in result.breakdown

    def test_persistent_warm_load_charge(self, scenario_results):
        persist = scenario_results[Scenario.PERSISTENT_WARM]
        warm = scenario_results[Scenario.CODE_CACHE_WARM]
        assert persist.persist_loaded_instrs > 0
        assert persist.breakdown["persist_load"] > 0
        # the load pass is exactly what separates it from the in-memory
        # warm cache scenario
        assert persist.total_cycles == pytest.approx(
            warm.total_cycles + persist.breakdown["persist_load"])

    def test_persistent_warm_noop_for_reference(self, workload):
        ref = simulate_startup(ref_superscalar(), workload,
                               Scenario.PERSISTENT_WARM)
        mem = simulate_startup(ref_superscalar(), workload,
                               Scenario.MEMORY_STARTUP)
        assert ref.persist_loaded_instrs == 0
        assert "persist_load" not in ref.breakdown
        assert ref.total_cycles == pytest.approx(mem.total_cycles)

    def test_persistent_warm_fe_loads_only_hotspots(self, workload):
        # VM.fe has no BBT: only SBT copies of hot regions are persisted
        fe = simulate_startup(vm_fe(), workload,
                              Scenario.PERSISTENT_WARM)
        soft = simulate_startup(vm_soft(), workload,
                                Scenario.PERSISTENT_WARM)
        assert 0 < fe.persist_loaded_instrs < soft.persist_loaded_instrs

    def test_steady_state_has_no_cold_misses(self, scenario_results):
        steady = scenario_results[Scenario.STEADY_STATE]
        assert steady.cold_miss_cycles == 0

    def test_steady_state_ipc_matches_model(self, scenario_results,
                                            workload):
        steady = scenario_results[Scenario.STEADY_STATE]
        app = workload.app
        # mixture of SBT-covered and BBT-resident code, both warm
        assert steady.aggregate_ipc > app.ipc_ref

    def test_disk_load_time_additive(self, scenario_results):
        disk = scenario_results[Scenario.DISK_STARTUP]
        memory = scenario_results[Scenario.MEMORY_STARTUP]
        assert disk.breakdown["disk_load"] > 0
        assert disk.total_cycles == pytest.approx(
            memory.total_cycles + disk.breakdown["disk_load"])

    def test_relative_slowdown_smaller_in_disk_scenario(self, workload):
        # Section 3.1: the disk load dominates, so the VM's relative
        # slowdown is much smaller in scenario 1 than in scenario 2
        ref_mem = simulate_startup(ref_superscalar(), workload,
                                   Scenario.MEMORY_STARTUP)
        soft_mem = simulate_startup(vm_soft(), workload,
                                    Scenario.MEMORY_STARTUP)
        ref_disk = simulate_startup(ref_superscalar(), workload,
                                    Scenario.DISK_STARTUP)
        soft_disk = simulate_startup(vm_soft(), workload,
                                     Scenario.DISK_STARTUP)
        at = 20e6
        mem_ratio = interpolate_at(ref_mem.series, at) / \
            max(interpolate_at(soft_mem.series, at), 1)
        disk_ratio = interpolate_at(ref_disk.series, at) / \
            max(interpolate_at(soft_disk.series, at), 1)
        assert disk_ratio < mem_ratio
