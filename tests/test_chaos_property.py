"""Property test: random fault cocktails never change architected results.

Hypothesis samples (workload, fault subset, seed) triples and asserts
the chaos invariant end-to-end: the faulted run completes — warm-started
from a mangled repository and/or cold with runtime faults armed — with
architected state identical to the fault-free baseline.  The
deterministic per-class matrix lives in ``tests/test_faults.py`` and
``make chaos``; this test explores the *combinations* those sweeps
don't enumerate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    all_fault_names,
    modes_for,
    prepare_baseline,
    run_faulted,
)
from repro.workloads.programs import PROGRAMS

#: small, fast seed workloads with distinct control-flow shapes
WORKLOADS = ("fibonacci", "checksum", "bubble_sort")

_BASELINES = {}


def _baseline(name: str, tmp_path_factory):
    if name not in _BASELINES:
        _BASELINES[name] = prepare_baseline(
            name, PROGRAMS[name],
            tmp_path_factory.mktemp(f"chaos-{name}"), hot_threshold=20)
    return _BASELINES[name]


@settings(max_examples=20, deadline=None)
@given(
    workload=st.sampled_from(WORKLOADS),
    faults=st.lists(st.sampled_from(all_fault_names()),
                    min_size=1, max_size=4, unique=True),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_fault_cocktails_are_survivable(workload, faults, seed,
                                               tmp_path_factory):
    baseline = _baseline(workload, tmp_path_factory)
    for warm in modes_for(faults):
        outcome = run_faulted(baseline, faults, seed, warm=warm)
        assert outcome.ok, outcome.format()
        # graceful degradation is observable, never silent: whatever
        # fired is accounted for in the recovery counters
        stats = outcome.stats
        if outcome.injected.get("bbt-fault") or \
                outcome.injected.get("sbt-fault"):
            assert stats["translation_faults"] > 0
        if outcome.injected.get("hotspot-misfire"):
            assert stats["hotspot_misfires"] > 0
        # (cache-corruption is not asserted on: an injection attempt
        # counts even when no translation was installed to corrupt)
