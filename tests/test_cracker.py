"""Cracker tests: structure of cracked sequences and differential
equivalence between x86lite reference semantics and cracked micro-op
execution on the native machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.fusible import FusibleMachine, UOp
from repro.isa.fusible.registers import R_EXIT_TARGET
from repro.isa.x86lite import (
    ImmOperand,
    Instruction,
    MemOperand,
    Op,
    Reg,
    RegOperand,
    X86State,
    decode,
    execute,
)
from repro.memory import AddressSpace
from repro.translator import crack, is_crackable
from repro.vmm import copy_arch_to_native, copy_native_to_arch
from tests.strategies import instructions

# A safe data region for randomized memory operands.
DATA_BASE = 0x0050_0000
DATA_SIZE = 0x1_0000


class TestCrackStructure:
    def test_nop(self):
        result = crack(decode(b"\x90"))
        assert [uop.op for uop in result.uops] == [UOp.NOP2]

    def test_mov_reg_reg_is_one_uop(self):
        result = crack(decode(b"\x89\xd8"))  # mov eax, ebx
        assert result.uop_count == 1
        assert result.uops[0].op is UOp.MOV2

    def test_add_reg_reg_uses_short_form(self):
        result = crack(decode(b"\x01\xd8"))  # add eax, ebx
        (uop,) = result.uops
        assert uop.op is UOp.ADD2 and uop.setflags
        assert uop.length == 2

    def test_load_is_one_uop_with_small_disp(self):
        result = crack(decode(b"\x8b\x43\x08"))  # mov eax, [ebx+8]
        (uop,) = result.uops
        assert uop.op is UOp.LDW and uop.imm == 8

    def test_rmw_is_load_op_store(self):
        result = crack(decode(b"\x01\x03"))  # add [ebx], eax
        ops = [uop.op for uop in result.uops]
        assert ops == [UOp.LDW, UOp.ADD2, UOp.STW]

    def test_scaled_index_addressing(self):
        # mov eax, [ebx+ecx*4+8]
        instr = Instruction(Op.MOV, (RegOperand(Reg.EAX),
                                     MemOperand(Reg.EBX, Reg.ECX, 4, 8)))
        result = crack(instr)
        ops = [uop.op for uop in result.uops]
        assert ops == [UOp.SHLI, UOp.ADD2, UOp.LDW]

    def test_cmp_imm_is_single_uop(self):
        result = crack(decode(b"\x83\xf8\x05"))  # cmp eax, 5
        (uop,) = result.uops
        assert uop.op is UOp.SUBI and uop.setflags
        assert uop.dest() is None  # discarded result

    def test_push_reg(self):
        result = crack(decode(b"\x50"))  # push eax
        ops = [uop.op for uop in result.uops]
        assert ops == [UOp.SUBI, UOp.STW]

    def test_large_immediate_uses_lui_ori(self):
        result = crack(decode(b"\xb8\x78\x56\x34\x12"))
        ops = [uop.op for uop in result.uops]
        assert ops == [UOp.LUI, UOp.ORI]

    def test_small_immediate_single_uop(self):
        result = crack(decode(b"\xb8\x05\x00\x00\x00"))
        assert result.uop_count == 1

    def test_uops_tagged_with_x86_addr(self):
        result = crack(decode(b"\x01\x03", addr=0x401234))
        assert all(uop.x86_addr == 0x401234 for uop in result.uops)

    def test_metadata_counts(self):
        result = crack(decode(b"\x01\x03"))
        assert result.byte_count == sum(u.length for u in result.uops)


class TestComplexClassification:
    @pytest.mark.parametrize("raw", [
        b"\xf3\xa5",               # rep movsd
        b"\xf7\xf3",               # div ebx
        b"\xf7\xfb",               # idiv ebx
        b"\xcd\x80",               # int 0x80
        b"\xf4",                   # hlt
        b"\x0f\xa2",               # cpuid
        b"\x66\x01\xd8",           # 16-bit add
    ])
    def test_complex(self, raw):
        instr = decode(raw)
        assert not is_crackable(instr)
        result = crack(instr)
        assert result.cmplx and not result.uops

    def test_simple_is_crackable(self):
        assert is_crackable(decode(b"\x01\xd8"))


class TestCtiCracking:
    def test_direct_jmp_has_empty_body(self):
        result = crack(decode(b"\xeb\x10"))
        assert result.cti and not result.uops

    def test_call_pushes_return_address(self):
        result = crack(decode(b"\xe8\x10\x00\x00\x00", addr=0x400000))
        assert result.cti
        ops = [uop.op for uop in result.uops]
        assert UOp.STW in ops and UOp.SUBI in ops

    def test_indirect_jmp_materializes_target(self):
        result = crack(decode(b"\xff\xe0"))  # jmp eax
        assert result.cti
        assert result.uops[-1].rd == R_EXIT_TARGET

    def test_ret_pops_into_exit_target(self):
        result = crack(decode(b"\xc3"))
        assert result.cti
        assert result.uops[0].op is UOp.LDW
        assert result.uops[0].rd == R_EXIT_TARGET

    def test_ret_imm_adjusts_esp(self):
        result = crack(decode(b"\xc2\x08\x00"))
        add = result.uops[-1]
        assert add.op is UOp.ADDI and add.imm == 12  # 4 + 8


def _random_state(draw_regs, memory_words) -> X86State:
    state = X86State(memory=AddressSpace())
    state.regs = list(draw_regs)
    # Clamp pointer-ish registers into the data region so memory operands
    # land somewhere harmless.
    for index in range(8):
        state.regs[index] = DATA_BASE + (state.regs[index] % DATA_SIZE)
    state.regs[Reg.ESP] = DATA_BASE + 0x8000 - \
        (state.regs[Reg.ESP] % 0x100) * 4
    for offset, word in enumerate(memory_words):
        state.memory.write_u32(DATA_BASE + offset * 4, word)
    return state


def _constrain_memory_operands(instr: Instruction) -> Instruction:
    """Rewrite memory operands to stay inside the data region."""
    new_operands = []
    for operand in instr.operands:
        if isinstance(operand, MemOperand):
            disp = operand.disp % 0x1000
            if operand.base is None and operand.index is None:
                disp += DATA_BASE
            new_operands.append(MemOperand(operand.base, None, 1, disp,
                                           operand.size))
        else:
            new_operands.append(operand)
    return Instruction(op=instr.op, operands=tuple(new_operands),
                       width=instr.width, cond=instr.cond,
                       target=instr.target, rep=instr.rep,
                       length=instr.length, addr=instr.addr)


class TestDifferentialEquivalence:
    """crack(instr) executed natively == execute(instr) on the reference."""

    @given(instr=instructions,
           regs=st.lists(st.integers(0, 0xFFFFFFFF), min_size=8,
                         max_size=8),
           memory_words=st.lists(st.integers(0, 0xFFFFFFFF), min_size=8,
                                 max_size=8),
           flags=st.tuples(st.booleans(), st.booleans(), st.booleans(),
                           st.booleans()))
    @settings(max_examples=400, deadline=None)
    def test_equivalence(self, instr, regs, memory_words, flags):
        instr = _constrain_memory_operands(instr)
        if not is_crackable(instr) or instr.is_control_transfer:
            return
        result = crack(instr)

        # reference path
        ref = _random_state(regs, memory_words)
        ref.cf, ref.zf, ref.sf, ref.of = flags
        ref.eip = instr.addr

        # native path on an identical twin
        native_state = ref.copy_architected(memory=ref.memory.snapshot())
        machine = FusibleMachine(native_state.memory)
        copy_arch_to_native(native_state, machine)

        execute(instr, ref)
        machine.execute_uops(result.uops)
        copy_native_to_arch(machine, native_state)

        assert native_state.regs == ref.regs, \
            f"regs diverged for {instr}: cracked to " \
            f"{[str(u) for u in result.uops]}"
        if instr.writes_flags:
            assert (native_state.cf, native_state.zf, native_state.sf,
                    native_state.of) == (ref.cf, ref.zf, ref.sf, ref.of), \
                f"flags diverged for {instr}"
        # memory effects must match over the data region
        assert native_state.memory.read(DATA_BASE, DATA_SIZE) == \
            ref.memory.read(DATA_BASE, DATA_SIZE), \
            f"memory diverged for {instr}"
