"""Hardware-assist tests: XLTx86 unit, dual-mode decoder, BBB detector."""

import pytest
from hypothesis import given, settings

from repro.hwassist import (
    BranchBehaviorBuffer,
    DualModeDecoder,
    XLTX86_LATENCY,
    XLTx86Unit,
)
from repro.isa.x86lite import assemble_to_bytes, decode, encode
from repro.memory import AddressSpace
from repro.translator import crack
from tests.strategies import instructions


class TestXLTx86:
    def test_simple_decode(self):
        unit = XLTx86Unit()
        result = unit.translate(b"\x01\xd8")  # add eax, ebx
        assert result.x86_ilen == 2
        assert not result.flag_cmplx and not result.flag_cti
        assert result.uop_byte_count == len(result.uop_bytes)
        assert len(result.uop_bytes_padded) == 16

    def test_matches_software_cracker(self):
        unit = XLTx86Unit()
        raw = b"\x8b\x44\x8b\x10"  # mov eax, [ebx+ecx*4+0x10]
        instr = decode(raw, addr=0x400000)
        software = crack(instr)
        hardware = unit.translate(raw, addr=0x400000)
        assert [str(u) for u in hardware.uops] == \
            [str(u) for u in software.uops]

    def test_cti_flag(self):
        unit = XLTx86Unit()
        result = unit.translate(b"\xc3")  # ret
        assert result.flag_cti and not result.flag_cmplx

    def test_complex_flag_for_div(self):
        unit = XLTx86Unit()
        result = unit.translate(b"\xf7\xf3")  # div ebx
        assert result.flag_cmplx
        assert unit.complex_punts == 1

    def test_complex_flag_for_rep_string(self):
        unit = XLTx86Unit()
        assert unit.translate(b"\xf3\xa5").flag_cmplx

    def test_complex_flag_for_bad_bytes(self):
        unit = XLTx86Unit()
        result = unit.translate(b"\x06\x00")
        assert result.flag_cmplx
        assert result.x86_ilen == 0

    def test_oversized_crack_punts(self):
        # large-displacement RMW cracks to > 16 bytes of micro-ops
        raw = encode(decode(assemble_to_bytes(
            "add [ebx+ecx*4+0x12345678], eax")))
        result = XLTx86Unit().translate(raw)
        assert result.flag_cmplx
        assert result.x86_ilen == len(raw)

    def test_latency_constant(self):
        assert XLTX86_LATENCY == 4  # Section 4.2

    @given(instr=instructions)
    @settings(max_examples=150, deadline=None)
    def test_hardware_equals_software_property(self, instr):
        raw = encode(instr, addr=0x400000)
        decoded = decode(raw, addr=0x400000)
        software = crack(decoded)
        result = XLTx86Unit().translate(raw, addr=0x400000)
        if result.flag_cmplx:
            # only legitimate punts: truly complex or oversized body
            assert software.cmplx or software.byte_count > 16
        else:
            assert [str(u) for u in result.uops] == \
                [str(u) for u in software.uops]
            assert result.x86_ilen == decoded.length


class TestDualModeDecoder:
    def test_x86_mode_decodes_and_cracks(self):
        memory = AddressSpace()
        memory.write(0x400000, b"\x01\xd8")
        decoder = DualModeDecoder()
        group = decoder.decode_x86(memory, 0x400000)
        assert group.instr.length == 2
        assert group.uops and not group.cmplx
        assert decoder.x86_mode_instructions == 1

    def test_complex_traps_counted(self):
        memory = AddressSpace()
        memory.write(0x400000, b"\xcd\x80")
        decoder = DualModeDecoder()
        group = decoder.decode_x86(memory, 0x400000)
        assert group.cmplx
        assert decoder.complex_traps == 1

    def test_native_mode_bypass(self):
        decoder = DualModeDecoder()
        uops = [object(), object()]
        assert decoder.pass_native(uops) is uops
        assert decoder.native_mode_uops == 2
        assert decoder.x86_mode_instructions == 0


class TestBranchBehaviorBuffer:
    def test_detects_hot_block(self):
        bbb = BranchBehaviorBuffer(hot_threshold=5, entries=16)
        for _ in range(5):
            bbb.record_entry(0x400000)
        assert bbb.take_hot() == 0x400000
        assert bbb.take_hot() is None

    def test_reports_each_hot_block_once(self):
        bbb = BranchBehaviorBuffer(hot_threshold=2, entries=16)
        for _ in range(10):
            bbb.record_entry(0x400000)
        assert bbb.take_hot() == 0x400000
        assert bbb.take_hot() is None

    def test_finite_capacity_replacement(self):
        bbb = BranchBehaviorBuffer(hot_threshold=100, entries=4)
        for addr in range(8):
            bbb.record_entry(0x400000 + addr * 16)
        assert bbb.occupancy == 4
        assert bbb.replacements == 4

    def test_replacement_loses_cold_counts(self):
        # the approximation the hardware makes: evicted entries restart
        bbb = BranchBehaviorBuffer(hot_threshold=3, entries=1)
        bbb.record_entry(0x1000)
        bbb.record_entry(0x1000)
        bbb.record_entry(0x2000)   # evicts 0x1000
        bbb.record_entry(0x1000)   # starts over at 1
        assert bbb.take_hot() is None

    def test_recency_protects_entries(self):
        bbb = BranchBehaviorBuffer(hot_threshold=3, entries=2)
        bbb.record_entry(0x1000)
        bbb.record_entry(0x2000)
        bbb.record_entry(0x1000)   # refreshes 0x1000
        bbb.record_entry(0x3000)   # evicts 0x2000 (least recent)
        bbb.record_entry(0x1000)   # third hit -> hot
        assert bbb.take_hot() == 0x1000

    def test_forget_and_reset(self):
        bbb = BranchBehaviorBuffer(hot_threshold=2, entries=8)
        bbb.record_entry(0x1000)
        bbb.record_entry(0x1000)
        bbb.forget(0x1000)
        assert not bbb.is_hot(0x1000)
        bbb.reset()
        assert bbb.occupancy == 0

    def test_record_edge_is_noop(self):
        bbb = BranchBehaviorBuffer(hot_threshold=2)
        bbb.record_edge(0x1000, 0x2000)  # must not raise

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BranchBehaviorBuffer(hot_threshold=2, entries=0)
