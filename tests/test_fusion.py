"""Macro-op fusion tests: pairing rules, legality, and semantic
preservation under reordering."""

from hypothesis import given, settings, strategies as st

from repro.isa.fusible import FusibleMachine, MicroOp, UOp
from repro.isa.fusible.opcodes import FUSIBLE_HEAD_OPS
from repro.isa.fusible.registers import R_ZERO
from repro.isa.x86lite.registers import Cond
from repro.memory import AddressSpace
from repro.translator import fuse_microops
from repro.translator.sbt import eliminate_dead_flags


def uop(op, **kwargs):
    return MicroOp(op, **kwargs)


class TestPairing:
    def test_adjacent_dependent_pair_fuses(self):
        uops = [uop(UOp.SHLI, rd=8, rs1=1, imm=2),
                uop(UOp.ADD, rd=9, rs1=8, rs2=2)]
        fused, stats = fuse_microops(uops)
        assert stats.pairs == 1
        assert fused[0].fused and not fused[1].fused

    def test_independent_ops_do_not_fuse(self):
        uops = [uop(UOp.ADDI, rd=1, rs1=R_ZERO, imm=1),
                uop(UOp.ADDI, rd=2, rs1=R_ZERO, imm=2)]
        _fused, stats = fuse_microops(uops)
        assert stats.pairs == 0

    def test_tail_hoisted_past_independent_uop(self):
        uops = [uop(UOp.SHLI, rd=8, rs1=1, imm=2),       # head
                uop(UOp.ADDI, rd=5, rs1=R_ZERO, imm=7),  # independent
                uop(UOp.ADD, rd=9, rs1=8, rs2=2)]        # consumer
        fused, stats = fuse_microops(uops)
        assert stats.pairs == 1
        assert stats.tails_hoisted == 1
        assert fused[0].op is UOp.SHLI and fused[0].fused
        assert fused[1].op is UOp.ADD
        assert fused[2].op is UOp.ADDI

    def test_hoist_blocked_by_dependence(self):
        # the consumer also reads r5, which is written in between: the
        # tail cannot be hoisted up to the SHLI; instead it pairs in
        # place with the ADDI (a genuine dependence through r5), and the
        # original order is preserved.
        uops = [uop(UOp.SHLI, rd=8, rs1=1, imm=2),
                uop(UOp.ADDI, rd=5, rs1=R_ZERO, imm=7),
                uop(UOp.ADD, rd=9, rs1=8, rs2=5)]
        fused, stats = fuse_microops(uops)
        assert stats.tails_hoisted == 0
        assert [u.op for u in fused] == [UOp.SHLI, UOp.ADDI, UOp.ADD]
        assert not fused[0].fused  # the blocked pair did not form
        assert stats.pairs == 1 and fused[1].fused

    def test_long_latency_head_rejected(self):
        uops = [uop(UOp.MULL, rd=8, rs1=1, rs2=2),
                uop(UOp.ADD, rd=9, rs1=8, rs2=2)]
        _fused, stats = fuse_microops(uops)
        assert stats.pairs == 0  # multiply is not single-cycle

    def test_load_tail_allowed(self):
        uops = [uop(UOp.ADDI, rd=8, rs1=3, imm=4),
                uop(UOp.LDW, rd=9, rs1=8, imm=0)]
        _fused, stats = fuse_microops(uops)
        assert stats.pairs == 1

    def test_source_port_limit(self):
        # head reads r1,r2; tail adds r3,r4 -> 4 distinct sources
        uops = [uop(UOp.ADD, rd=8, rs1=1, rs2=2),
                uop(UOp.ADD, rd=9, rs1=8, rs2=3),   # 3 sources: ok
                uop(UOp.ADD, rd=10, rs1=3, rs2=4),
                uop(UOp.ADD, rd=11, rs1=10, rs2=10)]
        fused, stats = fuse_microops(uops)
        assert stats.pairs == 2

    def test_over_port_limit_rejected(self):
        uops = [uop(UOp.ADD, rd=8, rs1=1, rs2=2),
                uop(UOp.ADC, rd=9, rs1=8, rs2=3)]
        # ADC reads flags... use plain chain with too many sources
        uops = [uop(UOp.ADD, rd=8, rs1=1, rs2=2),
                uop(UOp.SEL, rd=9, rs1=8, cond=Cond.E)]
        # SEL reads rd (r9) too: sources {1,2,9} = 3 -> allowed
        _fused, stats = fuse_microops(uops)
        assert stats.pairs <= 1

    def test_compare_branch_fusion(self):
        uops = [uop(UOp.SUBI, rd=R_ZERO, rs1=1, imm=0, setflags=True),
                uop(UOp.BC, cond=Cond.E, imm=12)]
        fused, stats = fuse_microops(uops)
        assert stats.pairs == 1
        assert fused[0].fused

    def test_no_fusion_across_branch(self):
        uops = [uop(UOp.ADDI, rd=8, rs1=1, imm=1),
                uop(UOp.JMP, imm=4),
                uop(UOp.ADD, rd=9, rs1=8, rs2=1)]
        _fused, stats = fuse_microops(uops)
        assert stats.pairs == 0

    def test_no_fusion_across_vmcall(self):
        uops = [uop(UOp.ADDI, rd=8, rs1=1, imm=1),
                uop(UOp.VMCALL, imm=0),
                uop(UOp.ADD, rd=9, rs1=8, rs2=1)]
        _fused, stats = fuse_microops(uops)
        assert stats.pairs == 0

    def test_branch_positions_never_move(self):
        uops = [uop(UOp.ADDI, rd=8, rs1=1, imm=1),
                uop(UOp.BC, cond=Cond.E, imm=24),
                uop(UOp.ADDI, rd=9, rs1=2, imm=1),
                uop(UOp.JMP, imm=-16)]
        fused, _stats = fuse_microops(uops)
        assert [u.op for u in fused if u.op in (UOp.BC, UOp.JMP)] == \
            [UOp.BC, UOp.JMP]
        assert fused[1].op is UOp.BC
        assert fused[3].op is UOp.JMP


class TestDeadFlagElimination:
    def test_overwritten_flags_cleared(self):
        uops = [uop(UOp.ADDI, rd=1, rs1=1, imm=1, setflags=True),
                uop(UOp.ADDI, rd=2, rs1=2, imm=1, setflags=True)]
        out, eliminated = eliminate_dead_flags(uops)
        assert eliminated == 1
        assert not out[0].setflags and out[1].setflags

    def test_flags_before_branch_kept(self):
        uops = [uop(UOp.SUBI, rd=1, rs1=1, imm=1, setflags=True),
                uop(UOp.BC, cond=Cond.NE, imm=12)]
        out, eliminated = eliminate_dead_flags(uops)
        assert eliminated == 0
        assert out[0].setflags

    def test_dead_compare_dropped(self):
        uops = [uop(UOp.CMP2, rd=1, rs1=2),
                uop(UOp.ADDI, rd=3, rs1=3, imm=1, setflags=True)]
        out, eliminated = eliminate_dead_flags(uops)
        assert eliminated == 1
        assert [u.op for u in out] == [UOp.ADDI]

    def test_live_out_flags_kept(self):
        uops = [uop(UOp.ADDI, rd=1, rs1=1, imm=1, setflags=True)]
        out, eliminated = eliminate_dead_flags(uops)
        assert eliminated == 0 and out[0].setflags

    def test_flags_at_exit_kept(self):
        uops = [uop(UOp.ADDI, rd=1, rs1=1, imm=1, setflags=True),
                uop(UOp.VMEXIT, rs1=29),
                ]
        out, eliminated = eliminate_dead_flags(uops)
        assert eliminated == 0

    def test_flag_reader_keeps_nearest_writer_only(self):
        uops = [uop(UOp.ADDI, rd=1, rs1=1, imm=1, setflags=True),  # dead
                uop(UOp.ADDI, rd=2, rs1=2, imm=1, setflags=True),  # live
                uop(UOp.SEL, rd=3, rs1=4, cond=Cond.E)]
        out, eliminated = eliminate_dead_flags(uops)
        assert eliminated == 1
        assert not out[0].setflags and out[1].setflags


# -- semantic preservation under fusion ------------------------------------------

_ALU_R = [UOp.ADD, UOp.SUB, UOp.AND, UOp.OR, UOp.XOR]
_regs = st.integers(0, 10)


@st.composite
def random_straightline(draw):
    count = draw(st.integers(2, 14))
    uops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["r", "i", "mov"]))
        if kind == "r":
            uops.append(MicroOp(draw(st.sampled_from(_ALU_R)),
                                rd=draw(_regs), rs1=draw(_regs),
                                rs2=draw(_regs),
                                setflags=draw(st.booleans())))
        elif kind == "i":
            uops.append(MicroOp(UOp.ADDI, rd=draw(_regs), rs1=draw(_regs),
                                imm=draw(st.integers(-100, 100)),
                                setflags=draw(st.booleans())))
        else:
            uops.append(MicroOp(UOp.MOV2, rd=draw(_regs),
                                rs1=draw(_regs)))
    return uops


def run_uops(uops, seed_regs):
    machine = FusibleMachine(AddressSpace())
    machine.regs[:11] = seed_regs
    machine.execute_uops(uops)
    return list(machine.regs), (machine.cf, machine.zf, machine.sf,
                                machine.of)


class TestSemanticPreservation:
    @given(uops=random_straightline(),
           seed=st.lists(st.integers(0, 0xFFFFFFFF), min_size=11,
                         max_size=11))
    @settings(max_examples=200, deadline=None)
    def test_fusion_preserves_register_state(self, uops, seed):
        fused, _stats = fuse_microops(uops)
        plain_regs, plain_flags = run_uops(uops, seed)
        fused_regs, fused_flags = run_uops(fused, seed)
        assert plain_regs == fused_regs
        assert plain_flags == fused_flags

    @given(uops=random_straightline())
    @settings(max_examples=100, deadline=None)
    def test_fusion_structural_invariants(self, uops):
        fused, stats = fuse_microops(uops)
        assert len(fused) == len(uops)  # reorder only, no drop/add
        assert sorted(str(u.op) for u in fused) == \
            sorted(str(u.op) for u in uops)
        # every fused head is followed by its consumer
        for index, head in enumerate(fused):
            if head.fused:
                assert index + 1 < len(fused)
                tail = fused[index + 1]
                assert head.op in FUSIBLE_HEAD_OPS
                assert not tail.fused  # no chained pairs
                assert head.dest() in tail.sources() or tail.op is UOp.BC
