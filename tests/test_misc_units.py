"""Unit tests for small supporting pieces: emission helpers, reports,
loader symbols, and the one-shot runner."""

import pytest

from repro.core import ExecutionReport, ref_superscalar, vm_soft
from repro.core.vm import run_program
from repro.isa.fusible import UOp, decode_stream, encode_stream
from repro.isa.fusible.registers import R_EXIT_TARGET
from repro.isa.x86lite import assemble
from repro.translator.emit import (
    EXIT_STUB_BYTES,
    PROFILE_PROLOGUE_BYTES,
    direct_exit_stub,
    indirect_exit,
    profile_prologue,
    vmcall_complex,
)


class TestEmitHelpers:
    def test_exit_stub_is_fixed_size(self):
        for target in (0, 0x400000, 0xFFFFFFF0):
            stub = direct_exit_stub(target, 0)
            assert sum(u.length for u in stub) == EXIT_STUB_BYTES

    def test_exit_stub_builds_exact_target(self):
        from repro.isa.fusible import FusibleMachine
        from repro.memory import AddressSpace
        for target in (0x400000, 0x00401337, 0x89ABCDEF):
            machine = FusibleMachine(AddressSpace())
            machine.memory.write(0x1000,
                                 encode_stream(direct_exit_stub(target,
                                                                0)))
            event = machine.run(0x1000)
            assert event.kind == "vmexit"
            assert event.value == target

    def test_stub_roundtrips(self):
        stub = direct_exit_stub(0x400123, 0x400000)
        decoded = decode_stream(encode_stream(stub))
        assert [u.op for u in decoded] == [UOp.LUI, UOp.ORI, UOp.VMEXIT]
        assert decoded[0].rd == R_EXIT_TARGET

    def test_indirect_exit(self):
        (uop,) = indirect_exit(0x400000)
        assert uop.op is UOp.VMEXIT and uop.rs1 == R_EXIT_TARGET

    def test_vmcall_complex_tags_address(self):
        (uop,) = vmcall_complex(0x401234)
        assert uop.op is UOp.VMCALL and uop.x86_addr == 0x401234

    def test_prologue_size_constant_matches(self):
        for counter in (0x28000000, 0x28001FFC):
            uops = profile_prologue(counter, 0x400000)
            assert sum(u.length for u in uops) == PROFILE_PROLOGUE_BYTES

    def test_prologue_restores_flags(self):
        ops = [u.op for u in profile_prologue(0x28000000, 0)]
        assert ops[0] is UOp.RDFLG and ops[-1] is UOp.WRFLG


class TestExecutionReport:
    def test_fused_fraction_bounds(self):
        report = ExecutionReport("x", 0, uops_executed=100,
                                 fused_pairs_executed=20)
        assert report.fused_uop_fraction == pytest.approx(0.4)

    def test_fused_fraction_zero_uops(self):
        assert ExecutionReport("x", 0).fused_uop_fraction == 0.0

    def test_summary_mentions_xlt_only_when_used(self):
        without = ExecutionReport("a", 0)
        with_ = ExecutionReport("a", 0, xltx86_invocations=5)
        assert "XLTx86" not in without.summary()
        assert "XLTx86" in with_.summary()


class TestLoaderSymbols:
    def test_labels_exposed_on_image(self):
        image = assemble("start:\nnop\nmiddle:\nhlt")
        assert image.labels["middle"] == image.labels["start"] + 1

    def test_entry_prefers_start(self):
        image = assemble("first:\nnop\nstart:\nhlt")
        assert image.entry == image.labels["start"]


class TestRunProgram:
    SOURCE = """
    start:
        mov eax, 1
        mov ebx, 777
        int 0x80
        mov eax, 0
        mov ebx, 0
        int 0x80
    """

    def test_run_from_source(self):
        report = run_program(self.SOURCE, ref_superscalar())
        assert report.output == [777]

    def test_run_from_image(self):
        report = run_program(assemble(self.SOURCE), vm_soft(),
                             hot_threshold=5)
        assert report.output == [777]

    def test_default_config_is_vm(self):
        report = run_program(self.SOURCE)
        assert report.config_name == "VM.soft"
