"""Distributed telemetry: trace-context codec, span buffer, the wire
``telemetry`` op, exact snapshot merging, SLOs and the bench
trajectory gate.

The propagation test is the load-bearing one: a client span id stamped
into a protocol frame must come back as the ``parent`` of a server
span scraped over a real LocalCluster — that parent/child seam is what
the fleet exporter turns into Perfetto flow arrows.
"""

import json

import pytest

from repro.cacheserver import CacheServer, protocol
from repro.cluster import ClusterRepository, LocalCluster
from repro.obs.collector import ClusterCollector
from repro.obs.metrics import Histogram
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLORule,
    evaluate,
    load_slo_file,
    worst_status,
)
from repro.obs.telemetry import (
    TELEMETRY_VERSION,
    SpanBuffer,
    TraceContext,
    derive_span_id,
    histogram_percentile,
    merge_histogram,
    merge_snapshots,
    telemetry_request,
)
from repro.obs.trajectory import bench_diff, history_row


class TestTraceContextCodec:
    def test_wire_round_trip(self):
        ctx = TraceContext.for_boot(1234, 3).child(7, ts=42.5)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_round_trip_through_protocol_frame(self):
        ctx = TraceContext.for_boot(9, 0, lane="publish")
        frame = protocol.encode_frame({"op": "ping",
                                       "trace_ctx": ctx.to_wire()})
        decoded = protocol.decode_frame(frame)
        assert TraceContext.from_wire(decoded["trace_ctx"]) == ctx

    def test_unknown_version_parses_to_none(self):
        wire = TraceContext.for_boot(1, 0).to_wire()
        wire["v"] = TELEMETRY_VERSION + 1
        assert TraceContext.from_wire(wire) is None

    @pytest.mark.parametrize("mangle", [
        lambda w: w.pop("trace"),
        lambda w: w.__setitem__("trace", 5),
        lambda w: w.__setitem__("span", None),
        lambda w: w.__setitem__("rank", "zero"),
        lambda w: w.__setitem__("rank", True),
        lambda w: w.__setitem__("ts", "now"),
    ])
    def test_malformed_payloads_parse_to_none(self, mangle):
        wire = TraceContext.for_boot(1, 0).to_wire()
        mangle(wire)
        assert TraceContext.from_wire(wire) is None

    def test_non_dict_payloads_parse_to_none(self):
        for payload in (None, [], "ctx", 7):
            assert TraceContext.from_wire(payload) is None

    def test_ids_are_pure_functions_of_inputs(self):
        assert TraceContext.for_boot(5, 2) == TraceContext.for_boot(5, 2)
        assert derive_span_id("t", "p", 3) == derive_span_id("t", "p", 3)
        assert derive_span_id("t", "p", 3) != derive_span_id("t", "p", 4)

    def test_boot_and_publish_lanes_share_a_trace(self):
        boot = TraceContext.for_boot(5, 2)
        publish = TraceContext.for_boot(5, 2, lane="publish")
        assert boot.trace_id == publish.trace_id
        assert boot.span_id != publish.span_id

    def test_child_derives_under_parent_span(self):
        root = TraceContext.for_boot(5, 2)
        child = root.child(11, ts=8.0)
        assert child.trace_id == root.trace_id
        assert child.span_id == derive_span_id(root.trace_id,
                                               root.span_id, 11)
        assert child.ts == 8.0


class TestSpanBuffer:
    def test_span_closes_ok_on_normal_exit(self):
        buffer = SpanBuffer()
        ctx = TraceContext.for_boot(1, 0)
        with buffer.span("server.op", ctx, op="pull") as span:
            span["extra"] = 1
        entries, truncated = buffer.entries()
        assert truncated == 0 and len(entries) == 1
        record = entries[0]
        assert record["status"] == "ok"
        assert record["parent"] == ctx.span_id
        assert record["span"] == derive_span_id(ctx.trace_id,
                                                ctx.span_id, "server")

    def test_span_closes_error_on_exception(self):
        buffer = SpanBuffer()
        with pytest.raises(RuntimeError):
            with buffer.span("server.op", TraceContext.for_boot(1, 0)):
                raise RuntimeError("handler blew up")
        entries, _ = buffer.entries()
        assert entries[0]["status"] == "error"

    def test_non_slice_names_are_rejected(self):
        buffer = SpanBuffer()
        ctx = TraceContext.for_boot(1, 0)
        # "remote.request" is an instant ("i") event, not a slice
        for name in ("remote.request", "no.such.event"):
            with pytest.raises(ValueError):
                with buffer.span(name, ctx):
                    pass
        assert buffer.opened == 0

    def test_capacity_evicts_oldest(self):
        buffer = SpanBuffer(capacity=3)
        root = TraceContext.for_boot(1, 0)
        for seq in range(5):
            with buffer.span("server.op", root.child(seq), op=str(seq)):
                pass
        entries, _ = buffer.entries()
        assert [e["op"] for e in entries] == ["2", "3", "4"]
        assert buffer.opened == 5 and buffer.dropped == 2

    def test_to_wire_truncates_to_newest(self):
        buffer = SpanBuffer(capacity=10)
        root = TraceContext.for_boot(1, 0)
        for seq in range(6):
            with buffer.span("server.op", root.child(seq), op=str(seq)):
                pass
        wire = buffer.to_wire(max_spans=2)
        assert wire["truncated"] == 4
        assert [e["op"] for e in wire["entries"]] == ["4", "5"]
        assert wire["opened"] == 6 and wire["dropped"] == 0


class TestTelemetryWireOp:
    def test_round_trip_over_frames(self, tmp_path):
        server = CacheServer(tmp_path / "repo")
        ctx = TraceContext.for_boot(3, 1).child(0)
        server.dispatch({"op": "ping", "trace_ctx": ctx.to_wire()})
        frame = protocol.encode_frame(
            dict(telemetry_request(), op="telemetry"))
        response = server.dispatch(protocol.decode_frame(frame))
        # the response must itself survive the codec
        response = protocol.decode_frame(protocol.encode_frame(response))
        assert response["ok"]
        assert response["version"] == TELEMETRY_VERSION
        assert response["shard_id"] == server.shard_id
        assert "server_requests" in json.dumps(response["metrics"])
        spans = response["spans"]["entries"]
        assert [s["parent"] for s in spans] == [ctx.span_id]

    def test_unknown_version_is_rejected(self, tmp_path):
        server = CacheServer(tmp_path / "repo")
        response = server.dispatch(
            {"op": "telemetry", "v": TELEMETRY_VERSION + 1})
        assert not response["ok"]
        assert response["error"] == "bad-request"

    def test_oversized_buffer_truncates_in_answer(self, tmp_path):
        server = CacheServer(tmp_path / "repo")
        root = TraceContext.for_boot(3, 1)
        for seq in range(8):
            server.dispatch({"op": "ping",
                             "trace_ctx": root.child(seq).to_wire()})
        request = dict(telemetry_request(max_spans=3), op="telemetry")
        response = server.dispatch(request)
        assert response["spans"]["truncated"] == 5
        assert len(response["spans"]["entries"]) == 3
        # bad max_spans values are rejected, not clamped silently
        for bad in (-1, True, "all"):
            answer = server.dispatch({"op": "telemetry",
                                      "v": TELEMETRY_VERSION,
                                      "max_spans": bad})
            assert not answer["ok"]

    def test_malformed_context_is_ignored_not_fatal(self, tmp_path):
        server = CacheServer(tmp_path / "repo")
        response = server.dispatch({"op": "ping",
                                    "trace_ctx": {"v": 99}})
        assert response["ok"]
        entries, _ = server.spans.entries()
        assert entries == []


class TestClusterPropagation:
    def test_client_span_id_is_server_span_parent(self, tmp_path):
        with LocalCluster(tmp_path / "grid", shards=2,
                          replicas=1) as grid:
            spec = grid.spec()
            client = ClusterRepository(spec, timeout=2.0, retries=1,
                                       sleep=lambda _s: None)
            root = TraceContext.for_boot(77, 0)
            client.bind_trace_context(root)
            try:
                client.load("cfgfp", "imgfp")    # pulls every shard
            finally:
                client.close()
            collector = ClusterCollector(spec, timeout=2.0)
            try:
                collector.scrape()
                spans = collector.span_entries()
            finally:
                collector.close()
        pulls = [s for s in spans if s.get("op") == "pull"]
        assert pulls, "no server pull spans scraped"
        # every server span sits in the client's trace, parented under
        # a span *derived from* the bound root (group lane -> request)
        assert {s["trace"] for s in spans} == {root.trace_id}
        for span in pulls:
            assert span["parent"] != root.span_id
            assert span["span"] == derive_span_id(
                span["trace"], span["parent"], "server")
        # distinct shard groups must not reuse request span ids
        assert len({s["parent"] for s in pulls}) == len(pulls)


class TestExactMerging:
    SAMPLES = [0.5, 1.0, 3.0, 9.0, 17.0, 40.0, 100.0, 900.0]

    def test_merge_matches_single_observer(self):
        whole = Histogram("lat", {})
        parts = [Histogram("lat", {}) for _ in range(3)]
        for index, value in enumerate(self.SAMPLES):
            whole.observe(value)
            parts[index % 3].observe(value)
        merged = merge_histogram([p.snapshot() for p in parts])
        assert merged == whole.snapshot()

    def test_percentile_parity_after_json_round_trip(self):
        whole = Histogram("lat", {})
        for value in self.SAMPLES:
            whole.observe(value)
        snapshot = json.loads(json.dumps(whole.snapshot()))
        for q in (50, 90, 99):
            assert histogram_percentile(snapshot, q) == \
                whole.percentile(q)

    def test_empty_merge_is_empty(self):
        merged = merge_histogram([{}, {"count": 0, "buckets": {}}])
        assert merged["count"] == 0
        assert histogram_percentile(merged, 99) is None

    def test_snapshot_merge_sums_counters_and_merges_histograms(self):
        histogram = Histogram("h", {})
        histogram.observe(4.0)
        merged = merge_snapshots([
            {"requests": 2, "h": histogram.snapshot()},
            {"requests": 3, "errors": 1, "h": histogram.snapshot()},
        ])
        assert merged["requests"] == 5 and merged["errors"] == 1
        assert merged["h"]["count"] == 2


class TestSLOs:
    def test_thresholds_partition_statuses(self):
        rules = [SLORule("r", "x", warn=1.0, fail=4.0)]
        for value, status in ((0.5, "pass"), (2.0, "warn"),
                              (9.0, "fail")):
            verdict = evaluate({"x": value}, rules)[0]
            assert verdict["status"] == status
            assert verdict["burn"] == round(value / 4.0, 4)

    def test_missing_indicator_passes_vacuously(self):
        verdicts = evaluate({}, DEFAULT_SLOS)
        assert worst_status(verdicts) == "pass"
        assert all(v["value"] is None for v in verdicts)

    def test_worst_status_ordering(self):
        assert worst_status([{"status": "pass"},
                             {"status": "fail"},
                             {"status": "warn"}]) == "fail"
        assert worst_status([]) == "pass"

    def test_inverted_thresholds_are_rejected(self):
        with pytest.raises(ValueError):
            SLORule("bad", "x", warn=2.0, fail=1.0)

    def test_load_slo_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([
            {"name": "a", "indicator": "x", "warn": 1, "fail": 2},
        ]))
        rules = load_slo_file(path)
        assert rules[0] == SLORule("a", "x", warn=1.0, fail=2.0)
        path.write_text(json.dumps([{"name": "a"}]))
        with pytest.raises(ValueError):
            load_slo_file(path)


class TestBenchTrajectory:
    @staticmethod
    def rows(*metric_dicts, config=None):
        return [history_row("bench", metrics, config or {"seed": 0})
                for metrics in metric_dicts]

    def test_lower_is_better_regression_trips(self):
        rows = self.rows({"warm_cycles": 100}, {"warm_cycles": 120})
        regressions, _ = bench_diff(rows)
        assert len(regressions) == 1
        assert "warm_cycles" in regressions[0]

    def test_higher_is_better_direction(self):
        rows = self.rows({"loaded": 100}, {"loaded": 80})
        regressions, _ = bench_diff(rows)
        assert regressions
        improved = self.rows({"loaded": 100}, {"loaded": 120})
        assert not bench_diff(improved)[0]

    def test_within_tolerance_passes(self):
        rows = self.rows({"cycles": 100}, {"cycles": 104})
        regressions, comparisons = bench_diff(rows, tolerance=5.0)
        assert not regressions
        assert comparisons[0]["metrics"]["cycles"]["change_pct"] == 4.0

    def test_fingerprint_change_starts_fresh_baseline(self):
        old = self.rows({"cycles": 100}, config={"seed": 0})
        new = self.rows({"cycles": 500}, config={"seed": 1})
        regressions, comparisons = bench_diff(old + new)
        assert not regressions
        assert comparisons[0]["baseline"] is None

    def test_against_first_measures_cumulative_drift(self):
        rows = self.rows({"cycles": 100}, {"cycles": 104},
                         {"cycles": 108})
        assert not bench_diff(rows, against="last")[0]
        assert bench_diff(rows, against="first")[0]
        with pytest.raises(ValueError):
            bench_diff(rows, against="median")
