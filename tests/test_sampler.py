"""Log sampler and breakeven-math tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.timing.sampler import (
    LogSampler,
    SampledSeries,
    crossover_cycles,
    interpolate_at,
)


class TestLogSampler:
    def test_log_spacing(self):
        sampler = LogSampler(first=100, per_decade=1, max_cycles=1e5)
        sampler.advance(1e5, 1e5)
        series = sampler.finish()
        assert series.cycles[:4] == [100, 1000, 10000, 100000]

    def test_linear_interpolation_within_segment(self):
        sampler = LogSampler(first=100, per_decade=1)
        sampler.advance(1000, 500)  # IPC 0.5 throughout
        series = sampler.finish()
        # at the 100-cycle point, 50 instructions
        index = series.cycles.index(100)
        assert series.instructions[index] == pytest.approx(50)

    def test_zero_instruction_segments(self):
        sampler = LogSampler(first=100, per_decade=1)
        sampler.advance(150, 0)      # pure stall (e.g. translation)
        sampler.advance(850, 850)
        series = sampler.finish()
        index = series.cycles.index(100)
        assert series.instructions[index] == 0

    def test_aux_channel(self):
        sampler = LogSampler(first=100, per_decade=1)
        sampler.advance(200, 100, delta_aux=200)
        sampler.advance(800, 800, delta_aux=0)
        series = sampler.finish()
        fractions = series.aux_fraction()
        assert fractions[-1] == pytest.approx(200 / 1000)

    def test_aggregate_ipc(self):
        sampler = LogSampler(first=100, per_decade=1)
        sampler.advance(1000, 250)
        series = sampler.finish()
        assert series.aggregate_ipc()[-1] == pytest.approx(0.25)

    def test_negative_advance_rejected(self):
        sampler = LogSampler()
        with pytest.raises(ValueError):
            sampler.advance(-1, 0)

    def test_finish_appends_endpoint(self):
        sampler = LogSampler(first=100, per_decade=1)
        sampler.advance(550, 300)
        series = sampler.finish()
        assert series.cycles[-1] == 550
        assert series.instructions[-1] == 300

    @given(segments=st.lists(
        st.tuples(st.floats(0, 1e6), st.floats(0, 1e6)),
        min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_monotone_series(self, segments):
        sampler = LogSampler(first=100, per_decade=4)
        for cycles, instrs in segments:
            sampler.advance(cycles, instrs)
        series = sampler.finish()
        assert all(a <= b for a, b in zip(series.cycles,
                                          series.cycles[1:]))
        assert all(a <= b + 1e-6 for a, b in zip(series.instructions,
                                                 series.instructions[1:]))


class TestInterpolation:
    def make_series(self):
        return SampledSeries(cycles=[100.0, 1000.0, 10000.0],
                             instructions=[10.0, 400.0, 9000.0])

    def test_exact_points(self):
        series = self.make_series()
        assert interpolate_at(series, 1000) == 400

    def test_between_points(self):
        series = self.make_series()
        assert interpolate_at(series, 5500) == pytest.approx(
            400 + 0.5 * 8600)

    def test_before_first_point(self):
        series = self.make_series()
        assert interpolate_at(series, 50) == pytest.approx(5)

    def test_after_last_point_saturates(self):
        series = self.make_series()
        assert interpolate_at(series, 1e9) == 9000

    def test_empty(self):
        assert interpolate_at(SampledSeries(), 100) == 0


class TestCrossover:
    def test_simple_crossover(self):
        slow_start = SampledSeries(cycles=[1e3, 1e4, 1e5, 1e6],
                                   instructions=[10, 5000, 9e4, 1.1e6])
        steady = SampledSeries(cycles=[1e3, 1e4, 1e5, 1e6],
                               instructions=[900, 9000, 9e4 + 1, 1e6])
        point = crossover_cycles(slow_start, steady, start=1e3)
        assert 1e5 < point <= 1e6

    def test_never_crosses(self):
        behind = SampledSeries(cycles=[1e3, 1e6],
                               instructions=[1, 100])
        ahead = SampledSeries(cycles=[1e3, 1e6],
                              instructions=[10, 1000])
        assert math.isinf(crossover_cycles(behind, ahead))

    def test_always_ahead(self):
        ahead = SampledSeries(cycles=[1e3, 1e6],
                              instructions=[10, 1000])
        behind = SampledSeries(cycles=[1e3, 1e6],
                               instructions=[1, 100])
        point = crossover_cycles(ahead, behind, start=1e3)
        assert point == 1e3

    def test_transient_lead_ignored(self):
        # first leads early, falls behind, then catches up permanently:
        # breakeven is the FINAL catch-up
        first = SampledSeries(cycles=[1e3, 1e4, 1e5, 1e6],
                              instructions=[20, 50, 600, 2000])
        second = SampledSeries(cycles=[1e3, 1e4, 1e5, 1e6],
                               instructions=[10, 100, 1000, 1500])
        point = crossover_cycles(first, second, start=1e3)
        assert point > 1e5
