"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import os

import pytest

from repro.interp import Interpreter
from repro.isa.x86lite import X86State, assemble
from repro.memory import AddressSpace, load_image
from repro.memory.loader import DEFAULT_STACK_TOP
from repro.verify import sanitizer


@pytest.fixture(autouse=True)
def translation_sanitizer():
    """Arm the translation verifier for every test, sanitizer-style.

    Every ``TranslationDirectory.install`` anywhere in the suite runs the
    full rule-pack (:mod:`repro.verify`) and raises on the first invariant
    violation, so each end-to-end test doubles as a translator-correctness
    test.  Set ``REPRO_VERIFY=0`` to switch it off (e.g. when bisecting a
    functional failure separately from a verifier finding).
    """
    if os.environ.get("REPRO_VERIFY", "1") == "0":
        yield
        return
    with sanitizer.raising():
        yield


def make_state(image=None) -> X86State:
    """Fresh architected state, optionally with an image loaded."""
    state = X86State(memory=AddressSpace())
    state.regs[4] = DEFAULT_STACK_TOP  # ESP
    if image is not None:
        state.eip = load_image(image, state.memory)
    return state


def run_source(source: str, max_instructions: int = 1_000_000) -> X86State:
    """Assemble, load and interpret a program; returns final state."""
    image = assemble(source)
    state = make_state(image)
    Interpreter(state).run(max_instructions)
    return state


@pytest.fixture
def fresh_state() -> X86State:
    return make_state()
