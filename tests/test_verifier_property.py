"""Property tests: translator outputs always satisfy the verifier.

Random x86lite basic blocks go through the real BBT (via memory and the
translation directory), through crack+fuse directly, and through a whole
VM run with hot loops; in every case the emitted fusible code must pass
the full rule-pack and fusion accounting must stay within bounds.
"""

from hypothesis import given, settings

from repro.core import CoDesignedVM, vm_soft
from repro.isa.x86lite import assemble
from repro.isa.x86lite.encoder import encode
from repro.isa.x86lite.instruction import Instruction
from repro.isa.x86lite.opcodes import Op
from repro.memory import AddressSpace
from repro.translator import crack, is_crackable
from repro.translator.bbt import BasicBlockTranslator
from repro.translator.code_cache import TranslationDirectory
from repro.translator.fusion import fuse_microops
from repro.verify import verify_directory, verify_translation, verify_uops
from tests.strategies import basic_blocks, loop_programs

ENTRY = 0x40_0000


def _write_block(memory: AddressSpace, block) -> None:
    addr = ENTRY
    for instr in block:
        data = encode(instr, addr=addr)
        memory.write(addr, data)
        addr += len(data)
    memory.write(addr, encode(Instruction(Op.RET), addr=addr))


class TestTranslatorOutputsVerify:
    @given(block=basic_blocks())
    @settings(max_examples=40, deadline=None)
    def test_bbt_translations_pass_the_rule_pack(self, block):
        memory = AddressSpace()
        _write_block(memory, block)
        directory = TranslationDirectory(memory)
        bbt = BasicBlockTranslator(directory, memory, hot_threshold=50)
        translation = bbt.translate(ENTRY)
        report = verify_translation(translation, memory=memory,
                                    directory=directory)
        assert report.ok, report.format()

    @given(block=basic_blocks())
    @settings(max_examples=40, deadline=None)
    def test_fusion_passes_rule_pack_and_fraction_is_bounded(self, block):
        body = []
        for instr in block:
            if is_crackable(instr):
                body.extend(crack(instr).uops)
        fused, stats = fuse_microops(body)
        assert 0.0 <= stats.fused_fraction <= 1.0
        report = verify_uops(fused)
        assert report.ok, report.format()

    @given(source=loop_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_hot_loops_verify_clean_end_to_end(self, source):
        vm = CoDesignedVM(vm_soft(), hot_threshold=2)
        vm.load(assemble(source))
        report = vm.run()
        assert report.superblocks_translated >= 1
        directory = vm.runtime.directory
        swept = verify_directory(directory)
        assert swept.ok, swept.format()
        for cache in (directory.bbt_cache, directory.sbt_cache):
            for translation in cache.translations:
                assert 0.0 <= translation.fused_fraction <= 1.0
