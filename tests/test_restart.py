"""Warm/cold restart tests — the functional analogue of scenarios 2/3."""

import pytest

from repro.core import CoDesignedVM, ref_superscalar, vm_soft
from repro.isa.x86lite import assemble
from repro.workloads.programs import PROGRAMS

PROGRAM = PROGRAMS["fibonacci"]


def make_vm():
    vm = CoDesignedVM(vm_soft(), hot_threshold=8)
    vm.load(assemble(PROGRAM))
    return vm


class TestWarmRestart:
    def test_same_results_on_second_run(self):
        vm = make_vm()
        first = vm.run()
        vm.restart(warm=True)
        second = vm.run()
        assert second.output == first.output
        assert second.exit_code == first.exit_code

    def test_no_retranslation_when_warm(self):
        vm = make_vm()
        vm.run()
        translated_once = vm.runtime.bbt.blocks_translated
        optimized_once = vm.runtime.sbt.superblocks_translated
        vm.restart(warm=True)
        vm.run()
        assert vm.runtime.bbt.blocks_translated == translated_once
        assert vm.runtime.sbt.superblocks_translated == optimized_once

    def test_warm_run_uses_existing_chains(self):
        vm = make_vm()
        vm.run()
        chains = vm.runtime.directory.chains_made
        exits_first = vm.runtime.vm_exits
        vm.restart(warm=True)
        vm.run()
        # second run re-enters chained/optimized code: fewer exits added
        assert vm.runtime.vm_exits - exits_first <= exits_first
        assert vm.runtime.directory.chains_made == chains

    def test_data_segments_restored(self):
        source = """
        start:
            mov eax, [counter]
            inc eax
            mov [counter], eax
            mov ebx, eax
            mov eax, 1
            int 0x80
            mov eax, 0
            mov ebx, 0
            int 0x80
        counter: .dd 100
        """
        vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm.load(assemble(source))
        first = vm.run()
        vm.restart(warm=True)
        second = vm.run()
        assert first.output == second.output == [101]


class TestColdRestart:
    def test_cold_restart_retranslates(self):
        vm = make_vm()
        vm.run()
        translated_once = vm.runtime.bbt.blocks_translated
        vm.restart(warm=False)
        vm.run()
        # a fresh runtime starts its own translation counters
        assert vm.runtime.bbt.blocks_translated == translated_once

    def test_reference_restart(self):
        vm = CoDesignedVM(ref_superscalar())
        vm.load(assemble(PROGRAM))
        first = vm.run()
        vm.restart()
        second = vm.run()
        assert first.output == second.output

    def test_restart_requires_load(self):
        vm = CoDesignedVM(vm_soft())
        with pytest.raises(RuntimeError):
            vm.restart()
