"""SBT translation tests: layout, side exits, loop-back, optimization."""

from repro.isa.fusible import UOp, decode_stream
from repro.isa.x86lite import assemble
from repro.memory import AddressSpace, load_image
from repro.translator import (
    SuperblockTranslator,
    TranslationDirectory,
    form_superblock,
    invert_cond,
)
from repro.translator.emit import scan_block
from repro.vmm.profiling import EdgeProfile
from repro.isa.x86lite.registers import Cond


def setup(source):
    image = assemble(source)
    memory = AddressSpace()
    load_image(image, memory)
    directory = TranslationDirectory(memory)
    sbt = SuperblockTranslator(directory, memory)
    return sbt, directory, memory, image.labels, image.entry


LOOP = """
start:
    mov ecx, 100
loop:
    add eax, ecx
    dec ecx
    jnz loop
    ret
"""


def loop_edges(memory, labels):
    edges = EdgeProfile()
    edges.record(labels["loop"], labels["loop"], 99)
    edges.record(labels["loop"], scan_block(memory,
                                            labels["loop"])[-1].next_addr, 1)
    return edges


class TestInvertCond:
    def test_inversion_pairs(self):
        assert invert_cond(Cond.E) is Cond.NE
        assert invert_cond(Cond.NE) is Cond.E
        assert invert_cond(Cond.L) is Cond.NL
        assert invert_cond(Cond.NBE) is Cond.BE

    def test_involution(self):
        for cond in Cond:
            assert invert_cond(invert_cond(cond)) is cond


class TestLoopTranslation:
    def test_loop_ends_with_backward_jmp(self):
        sbt, _dir, memory, labels, _entry = setup(LOOP)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        jmps = [u for u in translation.uops if u.op is UOp.JMP]
        assert len(jmps) == 1
        assert jmps[0].imm < 0  # backward

    def test_loop_side_exit_inverted(self):
        sbt, _dir, memory, labels, _entry = setup(LOOP)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        # followed direction is taken (loop): the BC tests the INVERTED
        # condition (Z) to leave the loop
        bcs = [u for u in translation.uops if u.op is UOp.BC]
        assert len(bcs) == 1
        assert bcs[0].cond is Cond.E

    def test_side_exit_stub_targets_fallthrough(self):
        sbt, _dir, memory, labels, _entry = setup(LOOP)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        exit_addr = scan_block(memory, labels["loop"])[-1].next_addr
        assert [stub.x86_target for stub in translation.exits] == \
            [exit_addr]

    def test_installed_bytes_decode_back(self):
        sbt, _dir, memory, labels, _entry = setup(LOOP)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        raw = memory.read(translation.native_addr, translation.native_len)
        decoded = decode_stream(raw)
        assert len(decoded) == translation.uop_count

    def test_bc_displacement_lands_on_stub(self):
        sbt, _dir, memory, labels, _entry = setup(LOOP)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        offset = 0
        for uop in translation.uops:
            if uop.op is UOp.BC:
                landing = translation.native_addr + offset + uop.length \
                    + uop.imm
                assert landing == translation.exits[0].stub_addr
            offset += uop.length

    def test_optimization_happened(self):
        sbt, _dir, memory, labels, _entry = setup(LOOP)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        assert translation.fused_pairs >= 1

    def test_dead_flags_eliminated_in_translation(self):
        # the first ADD's flags are fully shadowed by the second ADD
        # (DEC preserves CF, so only a full writer in between kills them)
        source = """
        start:
            mov ecx, 100
        loop:
            add eax, ecx
            add ebx, eax
            dec ecx
            jnz loop
            ret
        """
        sbt, _dir, memory, labels, _entry = setup(source)
        translation = sbt.translate(labels["loop"],
                                    loop_edges(memory, labels))
        assert sbt.flags_eliminated >= 1
        add_eax = [u for u in translation.uops
                   if u.op is UOp.ADD2 and u.rd == 0]
        assert all(not u.setflags for u in add_eax)

    def test_fusion_can_be_disabled(self):
        image_src = LOOP
        image = assemble(image_src)
        memory = AddressSpace()
        load_image(image, memory)
        directory = TranslationDirectory(memory)
        sbt = SuperblockTranslator(directory, memory, enable_fusion=False)
        translation = sbt.translate(image.labels["loop"],
                                    loop_edges(memory, image.labels))
        assert translation.fused_pairs == 0


class TestTailShapes:
    def test_fallthrough_tail_stub_first(self):
        # unfollowed JCC: fall-through stub must directly follow the body
        source = """
        check:
            cmp eax, 0
            je somewhere
            ret
        somewhere:
            ret
        """
        sbt, _dir, memory, labels, _entry = setup(source)
        translation = sbt.translate(labels["check"], EdgeProfile())
        kinds = [stub.kind for stub in translation.exits]
        assert kinds[0] == "fallthrough"
        assert "taken" in kinds

    def test_indirect_tail(self):
        sbt, _dir, _memory, labels, entry = setup("start:\nret")
        translation = sbt.translate(entry, EdgeProfile())
        assert translation.uops[-1].op is UOp.VMEXIT
        assert not translation.exits  # no patchable stubs

    def test_complex_tail_vmcall(self):
        sbt, _dir, _memory, _labels, entry = setup(
            "start:\nmov eax, 0\nint 0x80")
        translation = sbt.translate(entry, EdgeProfile())
        assert translation.uops[-1].op is UOp.VMCALL
        assert translation.side_table

    def test_call_tail_exits_to_callee(self):
        source = """
        caller:
            mov eax, 1
            call fn
            ret
        fn:
            ret
        """
        sbt, _dir, _memory, labels, _entry = setup(source)
        translation = sbt.translate(labels["caller"], EdgeProfile())
        assert translation.exits[0].x86_target == labels["fn"]
        # the return-address push survived in the body
        assert any(u.op is UOp.STW for u in translation.uops)

    def test_multi_block_trace_straightens_jumps(self):
        source = """
        a:
            mov eax, 1
            jmp b
        pad: .zero 32
        b:
            add eax, 2
            jmp c
        pad2: .zero 32
        c:
            ret
        """
        sbt, _dir, _memory, labels, _entry = setup(source)
        translation = sbt.translate(labels["a"], EdgeProfile())
        assert translation.x86_addrs == [labels["a"], labels["b"],
                                         labels["c"]]
        # straightened: no JMP micro-ops in the body
        assert not any(u.op is UOp.JMP for u in translation.uops)

    def test_lookup_registered_for_head_only(self):
        source = """
        a:
            mov eax, 1
            jmp b
        pad: .zero 32
        b:
            ret
        """
        sbt, directory, _memory, labels, _entry = setup(source)
        sbt.translate(labels["a"], EdgeProfile())
        assert directory.has_sbt(labels["a"])
        assert not directory.has_sbt(labels["b"])
