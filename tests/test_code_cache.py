"""Code cache, lookup table and chaining tests."""

import pytest

from repro.isa.fusible import MicroOp, UOp, decode_uop, encode_stream
from repro.isa.fusible.registers import R_EXIT_TARGET
from repro.memory import AddressSpace
from repro.translator import (
    CodeCacheFull,
    ExitStub,
    Translation,
    TranslationDirectory,
)
from repro.translator.emit import direct_exit_stub


def make_directory(bbt_capacity=4096, sbt_capacity=4096):
    memory = AddressSpace()
    return TranslationDirectory(memory,
                                bbt_base=0x2000_0000,
                                bbt_capacity=bbt_capacity,
                                sbt_base=0x2000_0000 + bbt_capacity,
                                sbt_capacity=sbt_capacity), memory


def install_simple(directory, entry, kind="bbt", x86_target=0x400100):
    """Install a minimal translation: a direct exit stub."""
    cache = directory.cache_for(kind)
    native = cache.reserve()
    uops = direct_exit_stub(x86_target, entry)
    translation = Translation(entry=entry, kind=kind, native_addr=native,
                              x86_addrs=[entry], uop_count=len(uops),
                              uops=uops)
    translation.exits.append(ExitStub(stub_addr=native, kind="jump",
                                      x86_target=x86_target))
    directory.install(encode_stream(uops), translation)
    return translation


class TestCodeCache:
    def test_install_and_lookup(self):
        directory, _memory = make_directory()
        translation = install_simple(directory, 0x400000)
        assert directory.lookup(0x400000) is translation
        assert directory.has_translation(0x400000)

    def test_lookup_miss_counted(self):
        directory, _memory = make_directory()
        assert directory.lookup(0x400000) is None
        assert directory.lookup_misses == 1

    def test_sbt_preferred_over_bbt(self):
        directory, _memory = make_directory()
        bbt = install_simple(directory, 0x400000, "bbt")
        sbt = install_simple(directory, 0x400000, "sbt")
        assert directory.lookup(0x400000) is sbt
        assert bbt is not sbt

    def test_capacity_enforced(self):
        directory, _memory = make_directory(bbt_capacity=24)
        install_simple(directory, 0x400000)  # 12 bytes
        install_simple(directory, 0x400010)  # 12 bytes - exactly full
        with pytest.raises(CodeCacheFull):
            install_simple(directory, 0x400020)

    def test_flush_clears_lookup_and_space(self):
        directory, _memory = make_directory(bbt_capacity=24)
        install_simple(directory, 0x400000)
        install_simple(directory, 0x400010)
        evicted = directory.flush("bbt")
        assert len(evicted) == 2
        assert not directory.has_translation(0x400000)
        assert directory.bbt_cache.free_bytes == 24
        install_simple(directory, 0x400020)  # fits again

    def test_used_bytes_accounting(self):
        directory, _memory = make_directory()
        install_simple(directory, 0x400000)
        assert directory.bbt_cache.used_bytes == 12
        assert directory.bbt_cache.bytes_installed_total == 12


class TestChaining:
    def test_chain_patches_stub_with_jmp(self):
        directory, memory = make_directory()
        source = install_simple(directory, 0x400000, x86_target=0x400100)
        target = install_simple(directory, 0x400100)
        stub = source.exits[0]
        assert directory.request_chain(stub)
        assert stub.chained_to == target.native_addr
        patched = decode_uop(memory.read(stub.stub_addr, 4))
        assert patched.op is UOp.JMP
        # the JMP must land exactly on the target translation
        landing = stub.stub_addr + 4 + patched.imm
        assert landing == target.native_addr

    def test_chain_deferred_until_target_exists(self):
        directory, memory = make_directory()
        source = install_simple(directory, 0x400000, x86_target=0x400100)
        stub = source.exits[0]
        assert not directory.request_chain(stub)  # queued
        assert stub.chained_to is None
        target = install_simple(directory, 0x400100)
        assert stub.chained_to == target.native_addr  # auto-resolved

    def test_indirect_stub_never_chains(self):
        directory, _memory = make_directory()
        source = install_simple(directory, 0x400000)
        stub = ExitStub(stub_addr=source.native_addr + 8, kind="indirect",
                        x86_target=None)
        assert not directory.request_chain(stub)
        assert stub.chained_to is None

    def test_flush_unchains_incoming_stubs(self):
        directory, memory = make_directory()
        source = install_simple(directory, 0x400000, "bbt",
                                x86_target=0x400100)
        install_simple(directory, 0x400100, "sbt")
        stub = source.exits[0]
        directory.request_chain(stub)
        assert stub.chained_to is not None
        directory.flush("sbt")
        assert stub.chained_to is None
        restored = decode_uop(memory.read(stub.stub_addr, 4))
        assert restored.op is UOp.LUI
        assert restored.rd == R_EXIT_TARGET

    def test_flush_unchains_cross_cache_both_directions(self):
        """Regression: stubs in the *other* cache chained into a flushed
        region must be unlinked, in both directions."""
        directory, memory = make_directory()
        # bbt stub chained into the sbt cache
        bbt_source = install_simple(directory, 0x400000, "bbt",
                                    x86_target=0x400100)
        install_simple(directory, 0x400100, "sbt")
        # sbt stub chained into the bbt cache
        sbt_source = install_simple(directory, 0x400200, "sbt",
                                    x86_target=0x400300)
        bbt_target = install_simple(directory, 0x400300, "bbt")
        directory.request_chain(bbt_source.exits[0])
        directory.request_chain(sbt_source.exits[0])
        assert bbt_source.exits[0].chained_to is not None
        assert sbt_source.exits[0].chained_to is not None

        directory.flush("bbt")
        # the surviving sbt stub no longer jumps into freed bbt space
        stub = sbt_source.exits[0]
        assert stub.chained_to is None
        restored = decode_uop(memory.read(stub.stub_addr, 4))
        assert restored.op is UOp.LUI
        assert restored.rd == R_EXIT_TARGET
        # re-translating the target lets the stub re-chain correctly
        bbt_target = install_simple(directory, 0x400300, "bbt")
        assert directory.request_chain(stub)
        patched = decode_uop(memory.read(stub.stub_addr, 4))
        assert stub.stub_addr + 4 + patched.imm == bbt_target.native_addr

    def test_flush_keeps_other_cache_chains_outside_region(self):
        """Chains between survivors are left intact by a flush."""
        directory, _memory = make_directory()
        sbt_source = install_simple(directory, 0x400000, "sbt",
                                    x86_target=0x400100)
        sbt_target = install_simple(directory, 0x400100, "sbt")
        directory.request_chain(sbt_source.exits[0])
        directory.flush("bbt")  # unrelated cache
        assert sbt_source.exits[0].chained_to == sbt_target.native_addr

    def test_flush_drops_pending_chains_from_dead_stubs(self):
        """A pending chain whose stub died in the flush must never fire:
        patching freed code-cache space would corrupt whatever is
        installed there next."""
        directory, _memory = make_directory()
        source = install_simple(directory, 0x400000, "bbt",
                                x86_target=0x400100)
        stub = source.exits[0]
        assert not directory.request_chain(stub)  # target absent: queued
        directory.flush("bbt")
        # installing the target later must not patch the dead stub
        install_simple(directory, 0x400100, "sbt")
        assert stub.chained_to is None

    def test_flush_keeps_pending_chains_from_survivors(self):
        directory, _memory = make_directory()
        source = install_simple(directory, 0x400000, "sbt",
                                x86_target=0x400100)
        stub = source.exits[0]
        assert not directory.request_chain(stub)
        directory.flush("bbt")  # stub lives in sbt: request survives
        target = install_simple(directory, 0x400100, "bbt")
        assert stub.chained_to == target.native_addr

    def test_find_stub(self):
        directory, _memory = make_directory()
        source = install_simple(directory, 0x400000)
        stub, owner = directory.find_stub(source.exits[0].stub_addr)
        assert owner is source

    def test_chain_counter(self):
        directory, _memory = make_directory()
        source = install_simple(directory, 0x400000, x86_target=0x400100)
        install_simple(directory, 0x400100)
        directory.request_chain(source.exits[0])
        assert directory.chains_made == 1


class TestRedirection:
    def test_sbt_install_redirects_bbt_entry(self):
        directory, memory = make_directory()
        bbt = install_simple(directory, 0x400000, "bbt")
        original = memory.read(bbt.native_addr, 4)
        sbt = install_simple(directory, 0x400000, "sbt")
        patched = decode_uop(memory.read(bbt.native_addr, 4))
        assert patched.op is UOp.JMP
        assert bbt.native_addr + 4 + patched.imm == sbt.native_addr
        assert directory.redirects_made == 1
        # flushing the SBT cache restores the BBT entry
        directory.flush("sbt")
        assert memory.read(bbt.native_addr, 4) == original

    def test_no_redirect_without_bbt_copy(self):
        directory, _memory = make_directory()
        install_simple(directory, 0x400000, "sbt")
        assert directory.redirects_made == 0

    def test_bbt_flush_drops_redirect_records(self):
        directory, _memory = make_directory()
        install_simple(directory, 0x400000, "bbt")
        install_simple(directory, 0x400000, "sbt")
        directory.flush("bbt")
        assert not directory._redirects


class TestSideTable:
    def test_side_table_resolution(self):
        directory, _memory = make_directory()
        cache = directory.bbt_cache
        native = cache.reserve()
        uops = [MicroOp(UOp.VMCALL, imm=0, x86_addr=0x400123)]
        translation = Translation(entry=0x400120, kind="bbt",
                                  native_addr=native, uops=uops,
                                  side_table={native: 0x400123})
        directory.install(encode_stream(uops), translation)
        x86_addr, owner = directory.resolve_side_table(native)
        assert x86_addr == 0x400123
        assert owner is translation

    def test_side_table_cleared_on_flush(self):
        directory, _memory = make_directory()
        cache = directory.bbt_cache
        native = cache.reserve()
        uops = [MicroOp(UOp.VMCALL, imm=0, x86_addr=0x400123)]
        translation = Translation(entry=0x400120, kind="bbt",
                                  native_addr=native, uops=uops,
                                  side_table={native: 0x400123})
        directory.install(encode_stream(uops), translation)
        directory.flush("bbt")
        assert directory.resolve_side_table(native) is None
