"""Property test: random *branchy* programs agree across configurations.

Extends the straight-line-loop property of ``test_vm_end_to_end`` with
structured control flow — nested counted loops containing data-dependent
if/else diamonds and early-skip branches — which exercises superblock
formation with side exits, condition inversion, chaining across many
blocks, and multi-path profiling.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    CoDesignedVM,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.isa.x86lite import assemble

ALL = [ref_superscalar, vm_soft, vm_be, vm_fe, interp_sbt]

_REGS = ["eax", "ebx", "edx", "esi"]
_OPS = ["add", "sub", "xor", "or", "and"]
_CONDS = ["jz", "jnz", "js", "jns", "jl", "jge"]


@st.composite
def branchy_program(draw):
    label_counter = [0]

    def fresh(prefix):
        label_counter[0] += 1
        return f"{prefix}{label_counter[0]}"

    def straight_line(depth):
        lines = []
        for _ in range(draw(st.integers(1, 4))):
            reg = draw(st.sampled_from(_REGS))
            op = draw(st.sampled_from(_OPS))
            if draw(st.booleans()):
                other = draw(st.sampled_from(_REGS))
                lines.append(f"    {op} {reg}, {other}")
            else:
                lines.append(f"    {op} {reg}, "
                             f"{draw(st.integers(-500, 500))}")
        return lines

    def diamond(depth):
        """if/else on a data-dependent condition."""
        else_label = fresh("else")
        end_label = fresh("end")
        reg = draw(st.sampled_from(_REGS))
        cond = draw(st.sampled_from(_CONDS))
        lines = [f"    test {reg}, {draw(st.integers(1, 255))}",
                 f"    {cond} {else_label}"]
        lines += block(depth + 1)
        lines += [f"    jmp {end_label}", f"{else_label}:"]
        lines += block(depth + 1)
        lines += [f"{end_label}:"]
        return lines

    def loop(depth):
        top = fresh("loop")
        iterations = draw(st.integers(1, 12))
        lines = [f"    push ecx",
                 f"    mov ecx, {iterations}",
                 f"{top}:"]
        lines += block(depth + 1)
        lines += ["    dec ecx", f"    jnz {top}", "    pop ecx"]
        return lines

    def block(depth):
        lines = []
        for _ in range(draw(st.integers(1, 3))):
            if depth >= 3:
                lines += straight_line(depth)
                continue
            kind = draw(st.sampled_from(["straight", "diamond", "loop"]))
            if kind == "straight":
                lines += straight_line(depth)
            elif kind == "diamond":
                lines += diamond(depth)
            else:
                lines += loop(depth)
        return lines

    body = ["start:"]
    for reg in _REGS:
        body.append(f"    mov {reg}, {draw(st.integers(0, 0xFFFF))}")
    body += loop(0)
    body += ["    mov eax, 1", "    mov ebx, esi", "    int 0x80",
             "    mov eax, 0", "    mov ebx, 0", "    int 0x80"]
    return "\n".join(body)


class TestBranchyEquivalence:
    @given(source=branchy_program(),
           threshold=st.sampled_from([2, 7]))
    @settings(max_examples=25, deadline=None)
    def test_branchy_programs_agree_everywhere(self, source, threshold):
        image = assemble(source)
        results = []
        for factory in ALL:
            vm = CoDesignedVM(factory(), hot_threshold=threshold)
            vm.load(image)
            vm.run(max_uops=200_000_000)
            results.append((vm.state.regs, vm.state.output,
                            vm.state.flags_tuple(), vm.state.exit_code))
        assert all(result == results[0] for result in results[1:])
