"""Robustness: fault injection, self-healing, quarantine and fsck.

The contract under test is the package docstring of :mod:`repro.faults`:
translation is an optimization over an always-correct emulation path,
so no failure in the translation stack — rotten persisted state, a
crashing translator, a flipped bit in a code cache — may change
architected results or kill the run.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults import (
    FaultInjector,
    all_fault_names,
    injecting,
    make_fault,
    modes_for,
    prepare_baseline,
    run_faulted,
)
from repro.isa.x86lite import assemble
from repro.persist import TranslationRepository
from repro.translator.code_cache import masked_digest
from repro.vmm.quarantine import TranslationQuarantine
from repro.vmm.runtime import (
    DispatchBudgetExhausted,
    VMRuntimeError,
)
from repro.workloads.programs import PROGRAMS

HOT = 20


@pytest.fixture(scope="module")
def fib_baseline(tmp_path_factory):
    """One fault-free fibonacci baseline shared by the chaos tests."""
    return prepare_baseline("fibonacci", PROGRAMS["fibonacci"],
                            tmp_path_factory.mktemp("chaos"),
                            hot_threshold=HOT)


def _fresh_vm(source: str, **config_overrides) -> CoDesignedVM:
    vm = CoDesignedVM(vm_soft().with_(**config_overrides),
                      hot_threshold=HOT)
    vm.load(assemble(source))
    return vm


# -- chaos invariant: every fault class, every mode --------------------------

@pytest.mark.parametrize("fault_name", all_fault_names())
def test_every_fault_class_is_survivable(fib_baseline, fault_name,
                                         tmp_path):
    """Forced-rate injection of each class leaves results unchanged."""
    for warm in modes_for([fault_name]):
        outcome = run_faulted(fib_baseline, [fault_name], seed=11,
                              workdir=tmp_path, warm=warm, rate=1.0)
        assert outcome.ok, outcome.format()


def test_all_fault_classes_together(fib_baseline, tmp_path):
    for seed in (0, 1, 2):
        for warm in (True, False):
            outcome = run_faulted(fib_baseline, all_fault_names(),
                                  seed=seed, workdir=tmp_path, warm=warm)
            assert outcome.ok, outcome.format()


def test_same_seed_replays_identical_fault_sequence(fib_baseline,
                                                    tmp_path):
    first = run_faulted(fib_baseline, all_fault_names(), seed=5,
                        workdir=tmp_path / "a")
    second = run_faulted(fib_baseline, all_fault_names(), seed=5,
                         workdir=tmp_path / "b")
    assert first.injected == second.injected
    assert first.disk_corruptions == second.disk_corruptions


def test_recovery_is_recorded_in_stats(fib_baseline, tmp_path):
    """Graceful degradation must be visible, not silent."""
    outcome = run_faulted(fib_baseline, ["bbt-fault"], seed=1,
                          workdir=tmp_path, warm=False, rate=1.0)
    assert outcome.ok, outcome.format()
    assert outcome.stats["translation_faults"] > 0
    assert outcome.stats["interpreted_fallback_instrs"] > 0


def test_verifier_false_positive_degrades_to_cold_boot(fib_baseline,
                                                       tmp_path):
    outcome = run_faulted(fib_baseline, ["verifier-false-positive"],
                          seed=2, workdir=tmp_path, rate=1.0)
    assert outcome.ok, outcome.format()
    persist = outcome.stats["persist"]
    assert persist["verifier_rejected"] == persist["attempted"]
    assert persist["loaded"] == 0


def test_hotspot_misfire_is_absorbed(fib_baseline, tmp_path):
    outcome = run_faulted(fib_baseline, ["hotspot-misfire"], seed=3,
                          workdir=tmp_path, warm=False, rate=1.0)
    assert outcome.ok, outcome.format()
    assert outcome.stats["hotspot_misfires"] > 0
    # the bogus entries failed into the quarantine, not into a crash
    assert outcome.stats["translation_faults"] > 0


def test_cache_corruption_detected_and_healed(fib_baseline, tmp_path):
    outcome = run_faulted(fib_baseline, ["cache-corruption"], seed=4,
                          workdir=tmp_path, warm=False, rate=1.0)
    assert outcome.ok, outcome.format()
    if outcome.total_injected:
        assert outcome.stats["integrity_faults_detected"] > 0


# -- quarantine unit behaviour ------------------------------------------------

def test_quarantine_backoff_schedule():
    quarantine = TranslationQuarantine(max_retries=3,
                                       backoff_dispatches=16)
    error = RuntimeError("boom")
    assert quarantine.may_translate(0x100, "bbt", dispatch=0)
    record = quarantine.record_failure(0x100, "bbt", 10, error)
    assert record.retry_at == 10 + 16
    assert not quarantine.may_translate(0x100, "bbt", dispatch=25)
    assert quarantine.may_translate(0x100, "bbt", dispatch=26)
    record = quarantine.record_failure(0x100, "bbt", 26, error)
    assert record.retry_at == 26 + 32          # doubled
    assert not record.degraded
    record = quarantine.record_failure(0x100, "bbt", 60, error)
    assert record.degraded                     # third strike
    assert not quarantine.may_translate(0x100, "bbt", dispatch=10**9)
    assert quarantine.degraded == 1 and quarantine.quarantined == 0


def test_quarantine_success_lifts_the_sentence():
    quarantine = TranslationQuarantine()
    quarantine.record_failure(0x100, "bbt", 0, RuntimeError("x"))
    assert quarantine.quarantined == 1
    quarantine.record_success(0x100, "bbt")
    assert quarantine.quarantined == 0
    assert quarantine.may_translate(0x100, "bbt", dispatch=0)


def test_quarantine_is_per_kind():
    quarantine = TranslationQuarantine(max_retries=1)
    quarantine.record_failure(0x100, "sbt", 0, RuntimeError("x"))
    assert not quarantine.may_translate(0x100, "sbt", 0)
    assert quarantine.may_translate(0x100, "bbt", 0)


# -- typed runtime errors -----------------------------------------------------

def test_dispatch_budget_error_carries_context():
    vm = _fresh_vm(PROGRAMS["fibonacci"])
    with pytest.raises(DispatchBudgetExhausted) as excinfo:
        vm.runtime.run(max_dispatches=2)
    error = excinfo.value
    assert isinstance(error, VMRuntimeError)
    assert error.pc == vm.state.eip
    assert error.mode == "bbt"
    assert error.dispatches == 2
    assert f"pc={vm.state.eip:#x}" in str(error)
    assert "mode=bbt" in str(error)


# -- code-cache integrity -----------------------------------------------------

def test_masked_digest_ignores_linkage_words():
    data = bytes(range(64))
    patched = bytearray(data)
    patched[8:12] = b"\xff\xff\xff\xff"        # inside the mask
    assert masked_digest(data, [8]) == masked_digest(bytes(patched), [8])
    patched[20] ^= 0xFF                        # outside the mask
    assert masked_digest(data, [8]) != masked_digest(bytes(patched), [8])


def test_integrity_sweep_evicts_corrupted_translation():
    vm = _fresh_vm(PROGRAMS["fibonacci"], integrity_check_interval=1)
    vm.run(max_instructions=200_000)
    runtime = vm.runtime
    translation = runtime.directory.bbt_cache.translations[0]
    assert runtime.directory.verify_integrity(translation)
    masked = set()
    for offset in translation.integrity_mask():
        masked.update(range(offset, offset + 4))
    offset = next(i for i in range(translation.native_len)
                  if i not in masked)
    addr = translation.native_addr + offset
    byte = runtime.memory.read(addr, 1)[0]
    runtime.memory.write(addr, bytes([byte ^ 0x01]))
    assert not runtime.directory.verify_integrity(translation)
    runtime._integrity_sweep()
    assert runtime.integrity_faults_detected == 1
    assert runtime.directory.lookup(translation.entry) is None


# -- crash-safe repository ----------------------------------------------------

def _populated_repo(tmp_path):
    vm = _fresh_vm(PROGRAMS["fibonacci"])
    vm.run(max_instructions=2_000_000)
    repo = TranslationRepository(tmp_path / "repo")
    saved = vm.save_translations(repo)
    assert saved > 0
    return repo


def test_torn_meta_rebuilds_from_objects(tmp_path):
    repo = _populated_repo(tmp_path)
    objects = len(repo._load_meta()["objects"])
    data = repo.meta_path.read_bytes()
    repo.meta_path.write_bytes(data[:len(data) // 2])    # torn write
    fresh = TranslationRepository(repo.root)
    meta = fresh._load_meta()
    assert len(meta["objects"]) == objects
    assert fresh.meta_recoveries == 1


def test_missing_meta_rebuilds_from_objects(tmp_path):
    repo = _populated_repo(tmp_path)
    objects = len(repo._load_meta()["objects"])
    repo.meta_path.unlink()          # crash between objects and meta
    fresh = TranslationRepository(repo.root)
    assert len(fresh._load_meta()["objects"]) == objects


def test_journaled_writes_leave_no_tmp_files(tmp_path):
    repo = _populated_repo(tmp_path)
    leftovers = list(repo.root.rglob("*.tmp"))
    assert leftovers == []


def test_io_errors_are_absorbed_not_raised(tmp_path):
    vm = _fresh_vm(PROGRAMS["fibonacci"])
    vm.run(max_instructions=2_000_000)
    repo = TranslationRepository(tmp_path / "repo")
    injector = FaultInjector(9, ["io-error"], rate=1.0)
    with injecting(injector):
        vm.save_translations(repo)   # every write fails: no exception
    assert repo.io_errors > 0
    # and a fault-free save afterwards fully recovers
    assert vm.save_translations(repo) > 0


# -- fsck ---------------------------------------------------------------------

def test_fsck_clean_repo_is_clean(tmp_path):
    repo = _populated_repo(tmp_path)
    report = repo.fsck()
    assert report.ok, report.format()


@pytest.mark.parametrize("fault_name", [
    name for name in all_fault_names() if make_fault(name).disk])
def test_fsck_detects_and_repairs_every_disk_fault(tmp_path, fault_name):
    repo = _populated_repo(tmp_path)
    injector = FaultInjector(13, [fault_name], rate=1.0)
    corruptions = injector.mangle_repository(repo.root)
    assert corruptions > 0
    dirty = repo.fsck(repair=False)
    if fault_name not in ("stale-record", "split-manifest"):
        # stale records are structurally valid; staleness is caught by
        # the loader's source re-fingerprinting, not by fsck — and
        # split-manifest only *drops* entries (a replica lagging its
        # siblings), damage anti-entropy repairs, not fsck
        assert not dirty.ok, (fault_name, dirty.format())
    repo.fsck(repair=True)
    clean = repo.fsck(repair=False)
    assert clean.ok, (fault_name, clean.format())


def test_fsck_repair_quarantines_corrupt_objects(tmp_path):
    repo = _populated_repo(tmp_path)
    victim = sorted(repo.objects_dir.glob("*.json"))[0]
    victim.write_text("{ not json")
    report = repo.fsck(repair=True)
    assert report.corrupt_objects == 1
    assert report.quarantined_objects == 1
    assert (repo.quarantine_dir / victim.name).exists()
    assert not victim.exists()
    assert repo.fsck().ok


def test_fsck_indexes_unindexed_object(tmp_path):
    repo = _populated_repo(tmp_path)
    meta = repo._load_meta()
    key = sorted(meta["objects"])[0]
    del meta["objects"][key]
    repo._write_meta(meta)
    dirty = repo.fsck()
    assert dirty.unindexed_objects == 1
    repo.fsck(repair=True)
    assert key in repo._load_meta()["objects"]
    assert repo.fsck().ok


def test_fsck_strips_dangling_manifest_refs(tmp_path):
    repo = _populated_repo(tmp_path)
    manifest_path = sorted(repo.manifests_dir.glob("*.json"))[0]
    manifest = json.loads(manifest_path.read_text())
    victim_key = manifest["entries"][0]
    (repo.objects_dir / f"{victim_key}.json").unlink()
    repo.fsck(repair=True)
    repaired = json.loads(manifest_path.read_text())
    assert victim_key not in repaired["entries"]
    assert repo.fsck().ok


def test_warm_start_works_after_fsck_repair(tmp_path):
    repo = _populated_repo(tmp_path)
    injector = FaultInjector(17, ["corrupt-object", "torn-meta"],
                             rate=0.5)
    injector.mangle_repository(repo.root)
    repo.fsck(repair=True)
    assert repo.fsck().ok
    vm = _fresh_vm(PROGRAMS["fibonacci"])
    report = vm.warm_start(repo)
    assert report.corrupt == 0       # damage already quarantined
    vm.run(max_instructions=2_000_000)
    assert vm.state.exit_code == 0


# -- loader hardening ---------------------------------------------------------

def test_loader_counts_undecodable_records(tmp_path, monkeypatch):
    repo = _populated_repo(tmp_path)
    import repro.persist.loader as loader_module
    real_encode = loader_module.encode_stream
    calls = []

    def explode_once(uops):
        if not calls:
            calls.append(1)
            raise RuntimeError("injected encoder meltdown")
        return real_encode(uops)

    monkeypatch.setattr(loader_module, "encode_stream", explode_once)
    vm = _fresh_vm(PROGRAMS["fibonacci"])
    report = vm.warm_start(repo)
    assert report.undecodable == 1
    assert report.dropped >= 1
    assert "undecodable 1" in report.format()
    vm.run(max_instructions=2_000_000)
    assert vm.state.exit_code == 0


def test_stats_surface_persist_breakdown(tmp_path):
    repo = _populated_repo(tmp_path)
    vm = _fresh_vm(PROGRAMS["fibonacci"])
    vm.warm_start(repo)
    vm.run(max_instructions=2_000_000)
    stats = vm.stats()
    persist = stats["persist"]
    assert persist["loaded"] > 0
    assert persist["dropped"] == 0
    for reason in ("stale_source", "corrupt", "verifier_rejected",
                   "undecodable", "missing_objects"):
        assert reason in persist
    for counter in ("translation_faults", "blocks_quarantined",
                    "blocks_degraded", "integrity_faults_detected",
                    "hotspot_misfires"):
        assert stats[counter] == 0   # healthy run


def test_stats_empty_before_load():
    vm = CoDesignedVM(vm_soft())
    assert vm.stats() == {}
