"""Semantics tests: flags, arithmetic, memory, stack, control transfer."""

import pytest

from repro.isa.x86lite import (
    ArchException,
    ImmOperand,
    Instruction,
    Op,
    Reg,
    RegOperand,
    decode,
    execute,
)
from tests.conftest import make_state, run_source


def run_flags(source: str):
    state = run_source(source + "\nhlt")
    return state


class TestArithmeticFlags:
    def test_add_carry_and_zero(self):
        state = run_flags("mov eax, 0xFFFFFFFF\nadd eax, 1")
        assert state.regs[Reg.EAX] == 0
        assert state.cf and state.zf and not state.sf and not state.of

    def test_add_signed_overflow(self):
        state = run_flags("mov eax, 0x7FFFFFFF\nadd eax, 1")
        assert state.of and state.sf and not state.cf

    def test_sub_borrow(self):
        state = run_flags("mov eax, 1\nsub eax, 2")
        assert state.regs[Reg.EAX] == 0xFFFFFFFF
        assert state.cf and state.sf and not state.zf and not state.of

    def test_cmp_does_not_write(self):
        state = run_flags("mov eax, 5\ncmp eax, 5")
        assert state.regs[Reg.EAX] == 5
        assert state.zf

    def test_adc_uses_carry(self):
        state = run_flags(
            "mov eax, 0xFFFFFFFF\nadd eax, 1\nmov ebx, 10\nadc ebx, 0")
        assert state.regs[Reg.EBX] == 11

    def test_sbb_uses_borrow(self):
        state = run_flags("mov eax, 0\nsub eax, 1\nmov ebx, 10\nsbb ebx, 0")
        assert state.regs[Reg.EBX] == 9

    def test_inc_preserves_carry(self):
        state = run_flags("mov eax, 0xFFFFFFFF\nadd eax, 1\ninc eax")
        assert state.cf  # carry survived the INC
        assert state.regs[Reg.EAX] == 1

    def test_dec_sets_zero(self):
        state = run_flags("mov eax, 1\ndec eax")
        assert state.zf

    def test_logic_clears_cf_of(self):
        state = run_flags("mov eax, 0xFFFFFFFF\nadd eax, 1\nand eax, 0")
        assert not state.cf and not state.of and state.zf

    def test_xor_self_zeroes(self):
        state = run_flags("mov eax, 123\nxor eax, eax")
        assert state.regs[Reg.EAX] == 0 and state.zf

    def test_test_sets_flags_without_write(self):
        state = run_flags("mov eax, 0x80000000\ntest eax, eax")
        assert state.sf and not state.zf
        assert state.regs[Reg.EAX] == 0x80000000

    def test_neg(self):
        state = run_flags("mov eax, 5\nneg eax")
        assert state.regs[Reg.EAX] == 0xFFFFFFFB
        assert state.cf

    def test_neg_zero_clears_cf(self):
        state = run_flags("mov eax, 0\nneg eax")
        assert not state.cf and state.zf

    def test_not_preserves_flags(self):
        state = run_flags("mov eax, 0\nadd eax, 0\nmov ebx, 5\nnot ebx")
        assert state.zf  # from the ADD, untouched by NOT
        assert state.regs[Reg.EBX] == 0xFFFFFFFA


class TestShifts:
    def test_shl_basic(self):
        state = run_flags("mov eax, 3\nshl eax, 4")
        assert state.regs[Reg.EAX] == 48

    def test_shl_carry_out(self):
        state = run_flags("mov eax, 0x80000000\nshl eax, 1")
        assert state.cf and state.zf

    def test_shr_logical(self):
        state = run_flags("mov eax, 0x80000000\nshr eax, 31")
        assert state.regs[Reg.EAX] == 1

    def test_sar_arithmetic(self):
        state = run_flags("mov eax, -8\nsar eax, 2")
        assert state.regs[Reg.EAX] == 0xFFFFFFFE

    def test_shift_by_cl(self):
        state = run_flags("mov eax, 1\nmov ecx, 5\nshl eax, cl"
                          .replace("cl", "ecx"))
        assert state.regs[Reg.EAX] == 32

    def test_shift_count_masked(self):
        state = run_flags("mov eax, 1\nmov ecx, 33\nshl eax, ecx")
        assert state.regs[Reg.EAX] == 2  # 33 & 31 == 1

    def test_zero_count_preserves_flags(self):
        state = run_flags("mov eax, 0\nadd eax, 0\nmov ecx, 32\n"
                          "mov ebx, 7\nshl ebx, ecx")
        assert state.zf  # untouched
        assert state.regs[Reg.EBX] == 7


class TestMultiplyDivide:
    def test_imul_two_operand(self):
        state = run_flags("mov eax, 7\nmov ebx, -3\nimul eax, ebx")
        assert state.regs[Reg.EAX] == 0xFFFFFFEB  # -21

    def test_imul_three_operand(self):
        state = run_flags("mov ebx, 10\nimul eax, ebx, 20")
        assert state.regs[Reg.EAX] == 200

    def test_imul_overflow_flag(self):
        state = run_flags("mov eax, 0x10000\nimul eax, eax")
        assert state.cf and state.of

    def test_imul_one_operand_widening(self):
        state = run_flags("mov eax, 0x80000000\nmov ebx, 2\nimul ebx")
        # -2^31 * 2 = -2^32 -> EDX:EAX = 0xFFFFFFFF:00000000
        assert state.regs[Reg.EAX] == 0
        assert state.regs[Reg.EDX] == 0xFFFFFFFF

    def test_mul_widening(self):
        state = run_flags("mov eax, 0xFFFFFFFF\nmov ebx, 2\nmul ebx")
        assert state.regs[Reg.EAX] == 0xFFFFFFFE
        assert state.regs[Reg.EDX] == 1
        assert state.cf and state.of

    def test_div(self):
        state = run_flags("mov edx, 0\nmov eax, 100\nmov ebx, 7\ndiv ebx")
        assert state.regs[Reg.EAX] == 14
        assert state.regs[Reg.EDX] == 2

    def test_idiv_truncates_toward_zero(self):
        state = run_flags("mov eax, -7\nmov edx, -1\nmov ebx, 2\nidiv ebx")
        assert state.regs[Reg.EAX] == 0xFFFFFFFD  # -3
        assert state.regs[Reg.EDX] == 0xFFFFFFFF  # -1

    def test_divide_by_zero_raises(self):
        with pytest.raises(ArchException, match="divide-error"):
            run_source("mov eax, 1\nmov ebx, 0\ndiv ebx\nhlt")

    def test_divide_overflow_raises(self):
        with pytest.raises(ArchException, match="divide-overflow"):
            run_source("mov edx, 2\nmov eax, 0\nmov ebx, 1\ndiv ebx\nhlt")

    def test_fault_eip_points_at_instruction(self):
        from repro.interp import Interpreter
        from repro.isa.x86lite import assemble
        image = assemble("mov eax, 1\nmov ebx, 0\ndiv ebx\nhlt")
        state = make_state(image)
        interp = Interpreter(state)
        with pytest.raises(ArchException) as excinfo:
            interp.run()
        assert state.eip == excinfo.value.addr


class TestDataMovement:
    def test_mov_memory_roundtrip(self):
        state = run_flags("mov ebx, 0x500000\nmov dword [ebx], 0xDEAD\n"
                          "mov eax, [ebx]")
        assert state.regs[Reg.EAX] == 0xDEAD

    def test_lea_computes_address(self):
        state = run_flags("mov ebx, 100\nmov ecx, 3\nlea eax, [ebx+ecx*8+5]")
        assert state.regs[Reg.EAX] == 129

    def test_lea_does_not_touch_memory_or_flags(self):
        state = run_flags("mov eax, 0\nadd eax, 0\nlea ebx, [eax+1]")
        assert state.zf

    def test_movzx_byte(self):
        state = run_flags("mov ebx, 0x500000\nmov dword [ebx], 0x000000FF\n"
                          "movzx eax, byte [ebx]")
        assert state.regs[Reg.EAX] == 0xFF

    def test_movsx_byte(self):
        state = run_flags("mov ebx, 0x500000\nmov dword [ebx], 0x00000080\n"
                          "movsx eax, byte [ebx]")
        assert state.regs[Reg.EAX] == 0xFFFFFF80

    def test_movsx_word(self):
        state = run_flags("mov ebx, 0x500000\nmov dword [ebx], 0x8000\n"
                          "movsx eax, word [ebx]")
        assert state.regs[Reg.EAX] == 0xFFFF8000

    def test_cmov_taken(self):
        state = run_flags("mov eax, 0\nmov ebx, 7\ncmp eax, 0\n"
                          "cmove ecx, ebx")
        assert state.regs[Reg.ECX] == 7

    def test_cmov_not_taken(self):
        state = run_flags("mov ecx, 1\nmov eax, 5\nmov ebx, 7\ncmp eax, 0\n"
                          "cmove ecx, ebx")
        assert state.regs[Reg.ECX] == 1

    def test_xchg(self):
        state = run_flags("mov eax, 1\nmov ebx, 2\nxchg eax, ebx")
        assert state.regs[Reg.EAX] == 2 and state.regs[Reg.EBX] == 1

    def test_16bit_mov_preserves_upper(self):
        state = run_flags("mov eax, 0x11112222\nmov ax, 0x3333")
        assert state.regs[Reg.EAX] == 0x11113333

    def test_16bit_add_flags(self):
        state = run_flags("mov eax, 0xFFFF\nmov bx, 1\nadd ax, bx")
        assert state.cf and state.zf
        assert state.regs[Reg.EAX] == 0x00000000 | 0x0000


class TestStackAndCalls:
    def test_push_pop(self):
        state = run_flags("mov eax, 42\npush eax\nmov eax, 0\npop ebx")
        assert state.regs[Reg.EBX] == 42

    def test_push_moves_esp_down(self):
        before = make_state().regs[Reg.ESP]
        state = run_flags("push 1\npush 2")
        assert state.regs[Reg.ESP] == before - 8

    def test_call_ret(self):
        state = run_source("""
        start:
            mov eax, 1
            call fn
            add eax, 100
            hlt
        fn:
            add eax, 10
            ret
        """)
        assert state.regs[Reg.EAX] == 111

    def test_ret_imm_pops_args(self):
        state = run_source("""
        start:
            push 5
            push 6
            call fn
            hlt
        fn:
            mov eax, [esp+4]
            add eax, [esp+8]
            ret 8
        """)
        assert state.regs[Reg.EAX] == 11
        assert state.regs[Reg.ESP] == make_state().regs[Reg.ESP]

    def test_indirect_call(self):
        state = run_source("""
        start:
            mov ebx, fn
            call ebx
            hlt
        fn:
            mov eax, 99
            ret
        """)
        assert state.regs[Reg.EAX] == 99


class TestStringOps:
    def test_movsd(self):
        state = run_flags(
            "mov esi, 0x500000\nmov edi, 0x600000\n"
            "mov dword [esi], 0xCAFE\nmovsd\nmov eax, [0x600000]")
        assert state.regs[Reg.EAX] == 0xCAFE
        assert state.regs[Reg.ESI] == 0x500004
        assert state.regs[Reg.EDI] == 0x600004

    def test_rep_movsd(self):
        state = run_source("""
        start:
            mov esi, src
            mov edi, 0x600000
            mov ecx, 3
            rep movsd
            hlt
        src: .dd 0x11, 0x22, 0x33
        """)
        for offset, value in ((0, 0x11), (4, 0x22), (8, 0x33)):
            assert state.memory.read_u32(0x600000 + offset) == value
        assert state.regs[Reg.ECX] == 0

    def test_rep_stosd(self):
        state = run_flags("mov eax, 0xAB\nmov edi, 0x600000\nmov ecx, 4\n"
                          "rep stosd\nmov ebx, [0x60000C]")
        assert state.regs[Reg.EBX] == 0xAB

    def test_lodsd(self):
        state = run_flags("mov esi, 0x500000\nmov dword [esi], 77\nlodsd")
        assert state.regs[Reg.EAX] == 77


class TestSystem:
    def test_exit_syscall(self):
        state = run_source("mov eax, 0\nmov ebx, 3\nint 0x80")
        assert state.halted and state.exit_code == 3

    def test_print_int_syscall(self):
        state = run_source("mov eax, 1\nmov ebx, -5\nint 0x80\nhlt")
        assert state.output == [-5]

    def test_print_str_syscall(self):
        state = run_source("""
        start:
            mov eax, 3
            mov ebx, msg
            mov ecx, 5
            int 0x80
            hlt
        msg: .db 'h', 'e', 'l', 'l', 'o'
        """)
        assert state.output == ["hello"]

    def test_unknown_int_vector_raises(self):
        with pytest.raises(ArchException, match="int-0x3"):
            run_source("int 3\nhlt")

    def test_cpuid(self):
        state = run_flags("cpuid")
        assert state.regs[Reg.EAX] == 1
        assert state.regs[Reg.EBX] == 0x6C697465

    def test_hlt_halts(self):
        state = run_source("hlt")
        assert state.halted and state.exit_code is None


class TestRawExecute:
    """Direct execute() calls (no assembler) for edge cases."""

    def test_default_eip_advance(self, fresh_state):
        instr = decode(b"\x90", addr=0x400000)
        fresh_state.eip = 0x400000
        execute(instr, fresh_state)
        assert fresh_state.eip == 0x400001

    def test_write_to_immediate_rejected(self, fresh_state):
        bad = Instruction(Op.MOV, (ImmOperand(1), RegOperand(Reg.EAX)))
        with pytest.raises(ArchException):
            execute(bad, fresh_state)
