"""Targeted architected edge cases through every execution path.

IA-32's stack-pointer corner semantics (PUSH ESP stores the *old* value,
POP ESP loads into ESP without the post-increment) are easy to get wrong
in a translator; these tests pin them down in the reference semantics and
differentially through the cracked/translated paths.
"""

from repro.core import CoDesignedVM, ref_superscalar, vm_be, vm_fe, \
    vm_soft
from repro.isa.x86lite import Reg, assemble

CONFIGS = [ref_superscalar, vm_soft, vm_be, vm_fe]


def run_everywhere(source):
    image = assemble(source)
    states = []
    for factory in CONFIGS:
        vm = CoDesignedVM(factory(), hot_threshold=50)
        vm.load(image)
        vm.run()
        states.append(vm.state)
    reference = states[0]
    for state in states[1:]:
        assert state.regs == reference.regs
        assert state.flags_tuple() == reference.flags_tuple()
    return reference


class TestPushPopEsp:
    def test_push_esp_stores_old_value(self):
        state = run_everywhere("""
        start:
            mov ebx, esp        ; remember original
            push esp
            pop eax             ; should be the ORIGINAL esp
            sub eax, ebx        ; zero if correct
            hlt
        """)
        assert state.regs[Reg.EAX] == 0

    def test_pop_esp_loads_value(self):
        state = run_everywhere("""
        start:
            mov eax, 0x700000
            push eax
            pop esp             ; ESP becomes 0x700000 (no post-adjust)
            mov ebx, esp
            hlt
        """)
        assert state.regs[Reg.EBX] == 0x700000

    def test_esp_relative_addressing(self):
        state = run_everywhere("""
        start:
            push 11
            push 22
            mov eax, [esp]      ; 22
            mov ebx, [esp+4]    ; 11
            add esp, 8
            hlt
        """)
        assert state.regs[Reg.EAX] == 22
        assert state.regs[Reg.EBX] == 11

    def test_push_memory_operand(self):
        state = run_everywhere("""
        start:
            mov ebx, 0x600000
            mov dword [ebx], 77
            push dword [ebx]
            pop eax
            hlt
        """)
        assert state.regs[Reg.EAX] == 77


class TestFlagCornerCases:
    def test_sbb_chain_borrow(self):
        # 64-bit subtraction via SUB/SBB pair
        state = run_everywhere("""
        start:
            mov eax, 0x00000000  ; low(a)
            mov edx, 0x00000002  ; high(a): a = 0x2_00000000
            sub eax, 1           ; a - 1
            sbb edx, 0
            hlt
        """)
        assert state.regs[Reg.EAX] == 0xFFFFFFFF
        assert state.regs[Reg.EDX] == 1

    def test_adc_chain_carry(self):
        state = run_everywhere("""
        start:
            mov eax, 0xFFFFFFFF
            mov edx, 0
            add eax, 1
            adc edx, 0
            hlt
        """)
        assert state.regs[Reg.EDX] == 1

    def test_cmp_chain_into_cmov(self):
        state = run_everywhere("""
        start:
            mov eax, 5
            mov ebx, 9
            mov ecx, 111
            mov edx, 222
            cmp eax, ebx
            cmovl ecx, edx       ; 5 < 9 -> taken
            hlt
        """)
        assert state.regs[Reg.ECX] == 222

    def test_dec_jnz_preserves_cf_for_adc(self):
        # a loop that relies on CF surviving DEC across iterations
        state = run_everywhere("""
        start:
            mov ecx, 4
            mov eax, 0xFFFFFFFE
            mov esi, 0
        loop:
            add eax, 1           ; sets CF on the second iteration
            adc esi, 0           ; accumulates carries
            dec ecx              ; must NOT clobber CF
            jnz loop
            hlt
        """)
        assert state.regs[Reg.ESI] == 1

    def test_neg_flag_consumers(self):
        state = run_everywhere("""
        start:
            mov eax, 5
            neg eax              ; CF set (operand nonzero)
            mov ebx, 0
            adc ebx, 0           ; picks up the CF
            hlt
        """)
        assert state.regs[Reg.EBX] == 1


class TestAddressingCornerCases:
    def test_negative_displacement(self):
        state = run_everywhere("""
        start:
            mov ebx, 0x600010
            mov dword [ebx-16], 42
            mov eax, [0x600000]
            hlt
        """)
        assert state.regs[Reg.EAX] == 42

    def test_scaled_index_times_eight(self):
        state = run_everywhere("""
        start:
            mov ecx, 3
            mov dword [0x600018], 99
            mov eax, [0x600000+ecx*8]
            hlt
        """)
        assert state.regs[Reg.EAX] == 99

    def test_same_register_base_and_index(self):
        state = run_everywhere("""
        start:
            mov ebx, 0x300000
            mov dword [0x600000], 7
            lea eax, [ebx+ebx*1]  ; 0x600000
            mov eax, [eax]
            hlt
        """)
        assert state.regs[Reg.EAX] == 7

    def test_large_displacement_rmw(self):
        # exceeds imm13; the cracker must materialize the address
        state = run_everywhere("""
        start:
            mov ebx, 8
            mov dword [0x612345], 100
            add [ebx+0x61233d], ebx
            mov eax, [0x612345]
            hlt
        """)
        assert state.regs[Reg.EAX] == 108

    def test_sixteen_bit_ops_fall_back_precisely(self):
        # width-16 forms are complex -> interpreted, still exact
        state = run_everywhere("""
        start:
            mov eax, 0xAAAA5555
            mov bx, 0x0F0F
            add ax, bx           ; 16-bit add: 0x5555+0x0F0F = 0x6464
            hlt
        """)
        assert state.regs[Reg.EAX] == 0xAAAA6464
