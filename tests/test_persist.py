"""Persistent translation repository and warm-start loader tests.

The sanitizer fixture (conftest) arms the full verifier rule-pack on
every ``TranslationDirectory.install``, so each warm start here is also
screened by the PR-1 static checks.
"""

import json

import pytest

from repro.core.config import interp_sbt, vm_be, vm_soft
from repro.core.vm import CoDesignedVM
from repro.isa.x86lite import assemble
from repro.persist import (
    TranslationRepository,
    WarmStartLoader,
    capture_translations,
    config_fingerprint,
    image_fingerprint,
    serialize_translation,
)
from repro.workloads.programs import PROGRAMS

LOOP = """
start:
    mov ecx, 200
    mov esi, 0
top:
    add esi, ecx
    dec ecx
    jnz top
    mov eax, 1
    mov ebx, esi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""


def cold_save(repo, source=LOOP, config=None, hot_threshold=50):
    vm = CoDesignedVM(config or vm_soft(), hot_threshold=hot_threshold)
    vm.load(assemble(source))
    report = vm.run()
    vm.save_translations(repo)
    return vm, report


def warm_boot(repo, source=LOOP, config=None, hot_threshold=50):
    vm = CoDesignedVM(config or vm_soft(), hot_threshold=hot_threshold)
    vm.load(assemble(source))
    load = vm.warm_start(repo)
    return vm, load


class TestRoundTrip:
    def test_warm_run_translates_nothing(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        _cold_vm, cold = cold_save(repo)
        warm_vm, load = warm_boot(repo)
        warm = warm_vm.run()
        assert load.loaded == load.attempted > 0
        assert load.dropped == 0
        assert warm.blocks_translated == 0
        assert warm.superblocks_translated == 0
        assert warm.output == cold.output
        assert warm.exit_code == cold.exit_code

    def test_sbt_copies_round_trip(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo, hot_threshold=20)
        warm_vm, load = warm_boot(repo, hot_threshold=20)
        assert load.sbt_loaded > 0
        warm = warm_vm.run()
        assert warm.superblocks_translated == 0
        # loaded SBT code actually executes (fused pairs observed)
        assert warm.fused_pairs_executed > 0

    def test_report_reaches_execution_stats(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        warm_vm, load = warm_boot(repo)
        warm = warm_vm.run()
        assert warm.persist_loaded == load.loaded
        assert warm.persist_dropped == 0
        assert warm.persist_chains_restored == load.chains_restored
        assert "warm-start loads" in warm.summary()

    def test_chains_restored_eagerly(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        _warm_vm, load = warm_boot(repo)
        assert load.chains_restored > 0

    def test_counter_rebound_to_fresh_allocation(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_vm, _ = cold_save(repo)
        old_counters = {t.counter_addr for t
                        in cold_vm.runtime.directory.bbt_cache.translations
                        if t.counter_addr is not None}
        warm_vm, load = warm_boot(repo)
        assert load.bbt_loaded > 0
        # warm profiling still works: a second hot run promotes as usual
        warm = warm_vm.run()
        assert warm.exit_code == 0
        for translation in \
                warm_vm.runtime.directory.bbt_cache.translations:
            assert translation.counter_addr is not None

    def test_works_under_vm_be_and_interp(self, tmp_path):
        for config in (vm_be(), interp_sbt()):
            repo = TranslationRepository(
                tmp_path / f"cache-{config.mode}")
            _, cold = cold_save(repo, config=config)
            warm_vm, load = warm_boot(repo, config=config)
            warm = warm_vm.run()
            assert load.dropped == 0
            assert warm.blocks_translated == 0
            assert warm.superblocks_translated == 0
            assert warm.output == cold.output

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_every_seed_workload_warm_starts_clean(self, tmp_path, name):
        repo = TranslationRepository(tmp_path / "cache")
        _, cold = cold_save(repo, source=PROGRAMS[name])
        warm_vm, load = warm_boot(repo, source=PROGRAMS[name])
        warm = warm_vm.run()
        assert load.dropped == 0
        assert warm.blocks_translated == 0
        assert warm.output == cold.output


class TestInvalidation:
    def test_changed_program_bytes_are_stale(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        # same layout, one mutated instruction: image fingerprint moves,
        # so the manifest simply does not match
        changed = LOOP.replace("mov ecx, 200", "mov ecx, 201")
        warm_vm, load = warm_boot(repo, source=changed)
        assert load.loaded == 0
        warm = warm_vm.run()
        assert warm.blocks_translated > 0  # translated from scratch

    def test_stale_source_dropped_at_record_level(self, tmp_path):
        """Even with a forged manifest match, per-record source
        fingerprints catch translations of different program bytes."""
        repo = TranslationRepository(tmp_path / "cache")
        vm, _ = cold_save(repo)
        records = capture_translations(vm.runtime.directory,
                                       vm.state.memory)
        changed_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        changed_vm.load(assemble(
            LOOP.replace("add esi, ecx", "sub esi, ecx")))
        load = WarmStartLoader(changed_vm.runtime).load_records(records)
        assert load.stale_source > 0
        assert load.loaded < load.attempted

    def test_config_fingerprint_separates_manifests(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo, hot_threshold=50)
        # a different hot threshold is a different config fingerprint
        warm_vm, load = warm_boot(repo, hot_threshold=51)
        assert load.attempted == 0
        assert config_fingerprint(vm_soft().with_(hot_threshold=50)) != \
            config_fingerprint(vm_soft().with_(hot_threshold=51))

    def test_corrupt_object_never_installs(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        # tamper every stored object: flip the micro-op payloads
        tampered = 0
        for path in (tmp_path / "cache" / "objects").glob("*.json"):
            record = json.loads(path.read_text())
            if record["uops"]:
                record["uops"][0][4] ^= 1  # imm bit-flip
                path.write_text(json.dumps(record))
                tampered += 1
        assert tampered > 0
        warm_vm, load = warm_boot(repo)
        # validation recomputes the content key: mismatch = corrupt,
        # filtered in the repository before the loader ever sees it
        assert load.loaded == 0
        assert load.missing_objects == tampered
        warm = warm_vm.run()
        assert warm.exit_code == 0  # falls back to cold translation

    def test_truncated_object_counts_missing(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        victim = next((tmp_path / "cache" / "objects").glob("*.json"))
        victim.write_text("{not json")
        _warm_vm, load = warm_boot(repo)
        assert load.missing_objects == 1
        assert load.loaded == load.attempted

    def test_verifier_rejects_bad_record(self, tmp_path):
        """A structurally valid record whose code breaks a verifier
        invariant is dropped before install."""
        repo = TranslationRepository(tmp_path / "cache")
        vm, _ = cold_save(repo)
        directory = vm.runtime.directory
        records = [serialize_translation(t, vm.state.memory)
                   for t in directory.bbt_cache.translations]
        records = [r for r in records if r is not None]
        fresh_vm = CoDesignedVM(vm_soft(), hot_threshold=50)
        fresh_vm.load(assemble(LOOP))
        # drop the terminating exit stub from one record: the verifier's
        # control-flow rule must reject a fall-through-into-nothing body
        victim = dict(records[0])
        victim["exits"] = []
        victim["uops"] = victim["uops"][:max(3, len(victim["uops"]) - 4)]
        report = WarmStartLoader(fresh_vm.runtime).load_records([victim])
        assert report.loaded == 0
        assert report.verifier_rejected + report.corrupt == 1


class TestRepositoryStore:
    def test_content_dedup_across_saves(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        _, _ = cold_save(repo)
        vm2 = CoDesignedVM(vm_soft(), hot_threshold=50)
        vm2.load(assemble(LOOP))
        vm2.run()
        written_again = vm2.save_translations(repo)
        assert written_again == 0  # identical content keys: reused

    def test_stats_reflect_contents(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        stats = repo.stats()
        assert stats.objects > 0
        assert stats.total_bytes > 0
        assert len(stats.manifests) == 1
        assert stats.manifests[0]["entries"] == stats.objects
        assert "repository" in stats.format()

    def test_gc_lru_evicts_oldest_first(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo, source=LOOP)
        first_keys = {p.stem for p
                      in (tmp_path / "cache" / "objects").glob("*.json")}
        # second program saved later: its objects are more recent
        cold_save(repo, source=PROGRAMS["checksum"])
        all_keys = {p.stem for p
                    in (tmp_path / "cache" / "objects").glob("*.json")}
        second_keys = all_keys - first_keys
        assert second_keys
        second_bytes = sum(
            (tmp_path / "cache" / "objects" / f"{k}.json").stat().st_size
            for k in second_keys)
        report = repo.gc(second_bytes)
        assert report.evicted_objects == len(first_keys)
        survivors = {p.stem for p
                     in (tmp_path / "cache" / "objects").glob("*.json")}
        assert survivors == second_keys

    def test_gc_strips_manifest_references(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        cold_save(repo)
        repo.gc(0)  # evict everything
        warm_vm, load = warm_boot(repo)
        assert load.attempted == 0
        assert load.loaded == 0

    def test_load_touch_protects_from_gc(self, tmp_path):
        repo = TranslationRepository(tmp_path / "cache")
        vm, _ = cold_save(repo, source=LOOP)
        cold_save(repo, source=PROGRAMS["checksum"])
        # touching the first manifest's objects makes *them* the MRU set
        config_fp = config_fingerprint(vm.config)
        image_fp = image_fingerprint(vm._image)
        records = repo.load(config_fp, image_fp)
        assert records
        keep_bytes = sum(
            repo._object_path(r["key"]).stat().st_size for r in records)
        repo.gc(keep_bytes)
        assert repo.load(config_fp, image_fp)


class TestFlushCounters:
    def test_flush_pressure_counters_surface(self):
        """Tiny caches force flushes; the new counters must record the
        lost work and the re-translations."""
        from repro.memory import AddressSpace
        from repro.memory.loader import DEFAULT_STACK_TOP, load_image
        from repro.isa.x86lite.registers import Reg
        from repro.isa.x86lite.state import X86State
        from repro.translator import TranslationDirectory
        from repro.vmm.runtime import VMRuntime

        state = X86State(memory=AddressSpace())
        state.regs[Reg.ESP] = DEFAULT_STACK_TOP
        state.eip = load_image(assemble(PROGRAMS["quicksort"]),
                               state.memory)
        # keep the caches adjacent (chain JMP offsets are imm24-limited)
        directory = TranslationDirectory(state.memory,
                                         bbt_base=0x2000_0000,
                                         bbt_capacity=1024,
                                         sbt_base=0x2000_0000 + 1024,
                                         sbt_capacity=16384)
        runtime = VMRuntime(state, hot_threshold=50,
                            directory=directory)
        runtime.run()
        stats = runtime.stats()
        assert stats["bbt_flushes"] > 0
        assert stats["translations_lost_in_flushes"] > 0
        assert stats["bbt_retranslations"] > 0
        # the CLI-facing report prints them
        from repro.core.stats import ExecutionReport
        report = ExecutionReport(
            config_name="t", exit_code=0, output=[],
            bbt_flushes=stats["bbt_flushes"],
            translations_lost_in_flushes=stats[
                "translations_lost_in_flushes"],
            bbt_retranslations=stats["bbt_retranslations"])
        text = report.summary()
        assert "cache flushes" in text
        assert "translations lost" in text
        assert "re-translations" in text
