"""VMM runtime tests: dispatch, hot promotion, code-cache pressure,
profiling plumbing."""

import pytest

from repro.core import CoDesignedVM, vm_soft
from repro.isa.x86lite import assemble, Reg, X86State
from repro.memory import AddressSpace, load_image
from repro.memory.loader import DEFAULT_STACK_TOP
from repro.translator import TranslationDirectory
from repro.vmm import SoftwareProfiler, VMRuntime
from repro.vmm.profiling import EdgeProfile

LOOP = """
start:
    mov ecx, 60
loop:
    add edi, ecx
    dec ecx
    jnz loop
    mov eax, 0
    mov ebx, 0
    int 0x80
"""


def make_runtime(source, hot_threshold=5, **kwargs):
    image = assemble(source)
    state = X86State(memory=AddressSpace())
    state.regs[Reg.ESP] = DEFAULT_STACK_TOP
    state.eip = load_image(image, state.memory)
    runtime = VMRuntime(state, hot_threshold=hot_threshold, **kwargs)
    return runtime, image.labels


class TestDispatch:
    def test_program_runs_to_halt(self):
        runtime, _labels = make_runtime(LOOP)
        runtime.run()
        assert runtime.state.halted
        assert runtime.state.regs[Reg.EDI] == sum(range(1, 61))

    def test_loop_block_promoted_to_sbt(self):
        runtime, labels = make_runtime(LOOP, hot_threshold=5)
        runtime.run()
        assert runtime.directory.has_sbt(labels["loop"])
        assert runtime.profile_calls >= 1

    def test_no_promotion_below_threshold(self):
        runtime, labels = make_runtime(LOOP, hot_threshold=1000)
        runtime.run()
        assert not runtime.directory.has_sbt(labels["loop"])
        assert runtime.sbt.superblocks_translated == 0

    def test_chaining_can_be_disabled(self):
        runtime, _labels = make_runtime(LOOP, enable_chaining=False)
        runtime.run()
        assert runtime.directory.chains_made == 0
        # block exits return to the VMM until the SBT loop takes over
        assert runtime.vm_exits >= 5

    def test_chaining_reduces_vm_exits(self):
        chained, _ = make_runtime(LOOP)
        chained.run()
        unchained, _ = make_runtime(LOOP, enable_chaining=False)
        unchained.run()
        assert chained.vm_exits < unchained.vm_exits

    def test_stats_snapshot(self):
        runtime, _labels = make_runtime(LOOP)
        runtime.run()
        stats = runtime.stats()
        assert stats["blocks_translated"] == \
            runtime.bbt.blocks_translated
        assert stats["uops_executed"] > 0
        assert stats["dispatches"] >= 1

    def test_edges_recorded_for_superblock_formation(self):
        runtime, labels = make_runtime(LOOP, hot_threshold=5)
        runtime.run()
        successors = runtime.profiler.edges.successors(labels["loop"])
        assert labels["loop"] in successors


class TestCodeCachePressure:
    def test_tiny_bbt_cache_forces_flushes(self):
        image = assemble(LOOP)
        state = X86State(memory=AddressSpace())
        state.regs[Reg.ESP] = DEFAULT_STACK_TOP
        state.eip = load_image(image, state.memory)
        directory = TranslationDirectory(
            state.memory, bbt_capacity=160, sbt_capacity=1 << 20,
            sbt_base=0x2000_0000 + 4096)
        runtime = VMRuntime(state, hot_threshold=1000,
                            directory=directory)
        runtime.run()
        assert state.halted
        assert directory.bbt_cache.flushes >= 1
        # flushed blocks were re-translated on re-entry
        assert runtime.bbt.blocks_translated > len(
            set(t.entry for t in directory.bbt_cache.translations))

    def test_tiny_sbt_cache_forces_retranslation(self):
        source = """
        start:
            mov ecx, 40
        loopa:
            add eax, 1
            dec ecx
            jnz loopa
            mov ecx, 40
        loopb:
            add ebx, 2
            dec ecx
            jnz loopb
            mov ecx, 40
        loopc:
            add edx, 3
            dec ecx
            jnz loopc
            mov eax, 0
            mov ebx, 0
            int 0x80
        """
        image = assemble(source)
        state = X86State(memory=AddressSpace())
        state.regs[Reg.ESP] = DEFAULT_STACK_TOP
        state.eip = load_image(image, state.memory)
        directory = TranslationDirectory(
            state.memory, bbt_capacity=1 << 20,
            sbt_base=0x2010_0000, sbt_capacity=48)
        runtime = VMRuntime(state, hot_threshold=5, directory=directory)
        runtime.run()
        assert state.halted
        assert directory.sbt_cache.flushes >= 1
        assert runtime.sbt_retranslations >= 1


class TestProfileService:
    def test_profile_fires_at_threshold(self):
        runtime, labels = make_runtime(LOOP, hot_threshold=7)
        runtime.run()
        assert runtime.profile_calls >= 1
        assert runtime.profiler.is_hot(labels["loop"])

    def test_counter_disabled_after_promotion(self):
        runtime, labels = make_runtime(LOOP, hot_threshold=5)
        runtime.run()
        translation = runtime.directory._bbt_lookup[labels["loop"]]
        counter = runtime.state.memory.read_u32(translation.counter_addr)
        assert counter > 0x1000_0000  # parked at the disabled value

    def test_interp_one_counts(self):
        runtime, _labels = make_runtime(LOOP)
        runtime.run()
        assert runtime.interp_one_calls >= 1  # the INT 0x80 at the end


class TestErrors:
    def test_bad_initial_emulation_rejected(self):
        state = X86State(memory=AddressSpace())
        with pytest.raises(ValueError):
            VMRuntime(state, initial_emulation="bogus")

    def test_uop_budget_enforced(self):
        runtime, _labels = make_runtime("start: jmp start")
        from repro.vmm import VMRuntimeError
        with pytest.raises(VMRuntimeError):
            runtime.run(max_uops=1000)


class TestEdgeProfile:
    def test_biased_successor(self):
        edges = EdgeProfile()
        edges.record(1, 2, 90)
        edges.record(1, 3, 10)
        assert edges.biased_successor(1) == 2

    def test_no_bias_returns_none(self):
        edges = EdgeProfile()
        edges.record(1, 2, 50)
        edges.record(1, 3, 50)
        assert edges.biased_successor(1, bias=0.6) is None

    def test_unknown_source(self):
        assert EdgeProfile().biased_successor(42) is None

    def test_successors_accumulate(self):
        edges = EdgeProfile()
        edges.record(1, 2)
        edges.record(1, 2)
        assert edges.successors(1) == {2: 2}


class TestSoftwareProfiler:
    def test_hot_watermark(self):
        profiler = SoftwareProfiler(hot_threshold=3)
        profiler.record_entry(0x400000, count=2)
        assert profiler.take_hot() is None
        profiler.record_entry(0x400000)
        assert profiler.take_hot() == 0x400000
        assert profiler.take_hot() is None  # reported once

    def test_forget(self):
        profiler = SoftwareProfiler(hot_threshold=2)
        profiler.record_entry(0x1000, 2)
        profiler.take_hot()
        profiler.forget(0x1000)
        assert not profiler.is_hot(0x1000)
        profiler.record_entry(0x1000, 2)
        assert profiler.take_hot() == 0x1000  # can re-report after forget

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SoftwareProfiler(hot_threshold=0)


class TestVMFacade:
    def test_requires_load(self):
        vm = CoDesignedVM(vm_soft())
        with pytest.raises(RuntimeError):
            vm.run()

    def test_report_summary_renders(self):
        vm = CoDesignedVM(vm_soft(), hot_threshold=5)
        vm.load(assemble(LOOP))
        report = vm.run()
        text = report.summary()
        assert "VM.soft" in text
        assert "fused pair fraction" in text
