"""Consistency-metric tests."""

import pytest

from repro.analysis.consistency import consistency_report, interval_ipcs
from repro.core import ref_superscalar, vm_soft
from repro.timing import simulate_startup
from repro.timing.sampler import SampledSeries
from repro.timing.startup_sim import StartupResult
from repro.workloads import generate_workload, winstone_app


def make_result(cycles, instructions, name="x"):
    result = StartupResult(config_name=name, app_name="a",
                           scenario=None,
                           series=SampledSeries(cycles=list(cycles),
                                                instructions=list(
                                                    instructions)))
    result.total_cycles = cycles[-1]
    result.total_instrs = instructions[-1]
    return result


class TestIntervalIpcs:
    def test_constant_rate_gives_constant_intervals(self):
        result = make_result([100, 200, 400], [50, 100, 200])
        points = interval_ipcs(result)
        assert [ipc for _c, ipc in points] == pytest.approx([0.5, 0.5])

    def test_min_cycles_filter(self):
        result = make_result([100, 200, 400], [50, 100, 200])
        points = interval_ipcs(result, min_cycles=300)
        assert len(points) == 1

    def test_zero_span_skipped(self):
        result = make_result([100, 100, 200], [50, 50, 100])
        points = interval_ipcs(result)
        assert len(points) == 1


class TestConsistencyReport:
    def test_steady_run_has_zero_cv(self):
        result = make_result([1e5, 2e5, 4e5, 8e5],
                             [1e5, 2e5, 4e5, 8e5])
        report = consistency_report(result, skip_cycles=0)
        assert report.cv == pytest.approx(0.0)
        assert report.worst_interval_fraction == pytest.approx(1.0)

    def test_erratic_run_has_high_cv(self):
        result = make_result([1e5, 2e5, 3e5, 4e5],
                             [1e5, 1.01e5, 2e5, 2.01e5])
        report = consistency_report(result, skip_cycles=0)
        assert report.cv > 0.5

    def test_empty_window(self):
        result = make_result([10.0], [10.0])
        report = consistency_report(result, skip_cycles=1e9)
        assert report.cv == 0.0

    def test_vm_less_consistent_than_reference(self):
        workload = generate_workload(winstone_app("Word"),
                                     dyn_instrs=30_000_000, seed=0)
        ref = consistency_report(
            simulate_startup(ref_superscalar(), workload))
        soft = consistency_report(simulate_startup(vm_soft(), workload))
        assert soft.cv > ref.cv
