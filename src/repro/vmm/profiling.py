"""Software profiling for hotspot detection and superblock formation.

In the software VM configurations (VM.soft, VM.be), profiling code is
embedded in BBT translations: each block entry bumps an execution counter,
and block exits record taken/fall-through edges.  When a counter crosses
the hot threshold, the VMM invokes the SBT on the detected region (Fig. 1b).

The profiler also doubles as the data source for superblock formation: the
SBT follows the most-biased successor edges recorded here (the paper's
"dynamic superblocks").

The VM.fe configuration cannot embed profiling in translations (there are
none for cold code); it uses the hardware branch-behavior buffer in
:mod:`repro.hwassist.hotspot_detector` instead.  Both expose the same
``record_entry``/``take_hot`` surface so the runtime is agnostic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class EdgeProfile:
    """Directed control-flow edge counts between basic-block entries."""

    def __init__(self) -> None:
        self._edges: Dict[int, Dict[int, int]] = defaultdict(dict)

    def record(self, source: int, target: int, count: int = 1) -> None:
        successors = self._edges[source]
        successors[target] = successors.get(target, 0) + count

    def successors(self, source: int) -> Dict[int, int]:
        return dict(self._edges.get(source, {}))

    def biased_successor(self, source: int,
                         bias: float = 0.6) -> Optional[int]:
        """The dominant successor if it exceeds ``bias`` of outgoing flow."""
        successors = self._edges.get(source)
        if not successors:
            return None
        total = sum(successors.values())
        target, count = max(successors.items(), key=lambda item: item[1])
        if total and count / total >= bias:
            return target
        return None


class SoftwareProfiler:
    """Block execution counters with a hot-threshold watermark."""

    def __init__(self, hot_threshold: int) -> None:
        if hot_threshold < 1:
            raise ValueError("hot threshold must be >= 1")
        self.hot_threshold = hot_threshold
        self.counters: Dict[int, int] = defaultdict(int)
        self.edges = EdgeProfile()
        self._hot_pending: List[int] = []
        self._hot_reported: set = set()

    def record_entry(self, block_addr: int, count: int = 1) -> None:
        """Count one (or ``count``) executions of a block entry."""
        new_value = self.counters[block_addr] + count
        self.counters[block_addr] = new_value
        if new_value >= self.hot_threshold and \
                block_addr not in self._hot_reported:
            self._hot_reported.add(block_addr)
            self._hot_pending.append(block_addr)

    def record_edge(self, source: int, target: int, count: int = 1) -> None:
        self.edges.record(source, target, count)

    def take_hot(self) -> Optional[int]:
        """Pop one newly-hot block entry, if any."""
        if self._hot_pending:
            return self._hot_pending.pop(0)
        return None

    def is_hot(self, block_addr: int) -> bool:
        return self.counters.get(block_addr, 0) >= self.hot_threshold

    def forget(self, block_addr: int) -> None:
        """Drop state for an evicted block (re-translation starts fresh)."""
        self.counters.pop(block_addr, None)
        self._hot_reported.discard(block_addr)

    def reset(self) -> None:
        self.counters.clear()
        self.edges = EdgeProfile()
        self._hot_pending.clear()
        self._hot_reported.clear()
