"""Quarantine for blocks whose translation keeps failing.

A translator failure (a real codegen bug, an injected fault, garbage
reached through a hotspot-detector misfire) must never kill the VM:
the interpreter can always execute the block.  But retrying the broken
translation on every dispatch would melt the startup budget the paper
is about, so failures are metered:

* each failure quarantines the (entry, kind) pair with **exponential
  backoff**, measured in dispatches — the natural clock of the runtime
  and deterministic across runs;
* while quarantined, the block is emulated (BBT misses fall back to the
  interpreter; SBT misses simply keep the BBT copy running);
* after ``max_retries`` failures the block is **degraded
  permanently**: interpretation (or the BBT copy) forever, translation
  never attempted again.

This is graceful degradation in the paper's sense — the staged pipeline
sheds an optimization stage per-block instead of crashing, and the
stats record exactly what was shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class QuarantineEntry:
    """One quarantined (entry, kind) pair."""

    entry: int
    kind: str                       # 'bbt' | 'sbt'
    failures: int = 0
    #: dispatch count at which the next retry is allowed
    retry_at: int = 0
    degraded: bool = False          # permanently given up
    last_error: str = ""


@dataclass
class TranslationQuarantine:
    """Bounded-retry ledger with exponential backoff."""

    max_retries: int = 3
    #: backoff after the first failure, in dispatches (doubles per
    #: failure: 16, 32, 64, ...)
    backoff_dispatches: int = 16
    _entries: Dict[Tuple[int, str], QuarantineEntry] = \
        field(default_factory=dict)

    def may_translate(self, entry: int, kind: str, dispatch: int) -> bool:
        """Whether a translation attempt is currently allowed."""
        record = self._entries.get((entry, kind))
        if record is None:
            return True
        if record.degraded:
            return False
        return dispatch >= record.retry_at

    def record_failure(self, entry: int, kind: str, dispatch: int,
                       error: BaseException) -> QuarantineEntry:
        """Register one failed attempt; escalates to degradation."""
        record = self._entries.setdefault(
            (entry, kind), QuarantineEntry(entry=entry, kind=kind))
        record.failures += 1
        record.last_error = f"{type(error).__name__}: {error}"
        if record.failures >= self.max_retries:
            record.degraded = True
        else:
            backoff = self.backoff_dispatches * \
                (1 << (record.failures - 1))
            record.retry_at = dispatch + backoff
        return record

    def record_success(self, entry: int, kind: str) -> None:
        """A retry succeeded: lift the quarantine."""
        self._entries.pop((entry, kind), None)

    def get(self, entry: int, kind: str) -> Optional[QuarantineEntry]:
        return self._entries.get((entry, kind))

    @property
    def quarantined(self) -> int:
        """Pairs currently under backoff (not yet degraded)."""
        return sum(1 for record in self._entries.values()
                   if not record.degraded)

    @property
    def degraded(self) -> int:
        """Pairs permanently degraded to the emulation fallback."""
        return sum(1 for record in self._entries.values()
                   if record.degraded)

    def entries(self):
        return list(self._entries.values())
