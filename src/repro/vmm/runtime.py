"""The VMM runtime system — the staged-emulation controller of Fig. 1b.

Responsibilities, mirroring the paper's component (4):

* select between BBT and SBT for translation;
* dispatch through the translation lookup table and run the native
  machine inside the code caches;
* service VM exits: chain exit stubs, interpret complex instructions
  precisely, apply the hot-threshold policy when embedded profiling
  fires;
* manage code-cache pressure (flush and re-translate);
* recover precise architected state at exceptions.

Two execution strategies cover the paper's configurations:

* **translated** (VM.soft, VM.be): cold code runs via BBT translations
  with embedded software profiling.
* **interpretive** (VM.fe in x86-mode, and the Interp+SBT configuration
  of Fig. 2): cold code is emulated instruction-at-a-time — by the
  dual-mode decoder's x86-mode in VM.fe, by the software interpreter in
  Interp+SBT — while a hotspot detector watches block entries.

Both converge to SBT superblocks for hotspots; the functional behaviour
of hot code is identical across configurations, which the cross-
configuration equivalence tests pin down.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.interp.interpreter import Interpreter
from repro.isa.fusible.machine import (
    ExitEvent,
    FusibleMachine,
    NativeMachineError,
)
from repro.isa.fusible.opcodes import VMService
from repro.isa.x86lite.state import X86State
from repro.hwassist.hotspot_detector import BranchBehaviorBuffer
from repro.translator.bbt import BasicBlockTranslator
from repro.translator.code_cache import (
    CodeCacheFull,
    TranslationDirectory,
    Translation,
)
from repro.translator.sbt import SuperblockTranslator
from repro.vmm.precise_state import copy_arch_to_native, copy_native_to_arch
from repro.vmm.profiling import SoftwareProfiler

#: Counter value used to disable an already-promoted block's profiling.
_COUNTER_DISABLED = 0x4000_0000


class VMRuntimeError(Exception):
    """Raised on budget exhaustion or inconsistent VM state."""


class VMRuntime:
    """Orchestrates staged emulation over one architected machine state."""

    def __init__(self, state: X86State,
                 hot_threshold: int = 8000,
                 initial_emulation: str = "bbt",
                 profiler: Union[SoftwareProfiler, BranchBehaviorBuffer,
                                 None] = None,
                 directory: Optional[TranslationDirectory] = None,
                 superblock_bias: float = 0.6,
                 max_superblock_instrs: int = 200,
                 enable_fusion: bool = True,
                 enable_chaining: bool = True,
                 max_block_instrs: int = 64,
                 verify_translations: bool = False) -> None:
        if initial_emulation not in ("bbt", "interp", "x86-mode"):
            raise ValueError(f"bad initial emulation {initial_emulation!r}")
        self.state = state
        self.memory = state.memory
        self.hot_threshold = hot_threshold
        self.initial_emulation = initial_emulation
        self.enable_chaining = enable_chaining

        self.machine = FusibleMachine(self.memory)
        self.directory = directory if directory is not None \
            else TranslationDirectory(self.memory)
        if verify_translations:
            # debug hook: statically verify translations as installed
            self.directory.verify_on_install = True
        self.profiler = profiler if profiler is not None \
            else SoftwareProfiler(hot_threshold)
        self.bbt = BasicBlockTranslator(
            self.directory, self.memory,
            embed_profiling=(initial_emulation == "bbt"),
            hot_threshold=hot_threshold,
            max_block_instrs=max_block_instrs,
            verify=verify_translations)
        self.sbt = SuperblockTranslator(
            self.directory, self.memory, bias=superblock_bias,
            max_instrs=max_superblock_instrs, enable_fusion=enable_fusion,
            verify=verify_translations)
        self.interp = Interpreter(state)

        # statistics
        self.dispatches = 0
        self.vm_exits = 0
        self.interp_one_calls = 0
        self.profile_calls = 0
        self.bbt_full_flushes = 0
        self.sbt_full_flushes = 0
        self.sbt_retranslations = 0
        self.instructions_interpreted = 0
        self.total_uops_executed = 0
        #: translations evicted by wholesale flushes (work thrown away)
        self.translations_lost_in_flushes = 0
        #: blocks translated again after their copy was lost to a flush
        self.bbt_retranslations = 0
        #: hotspots that had to be re-optimized after an SBT flush
        self.hotspot_retranslations = 0
        self._bbt_entries_ever: set = set()
        self._sbt_entries_ever: set = set()
        #: warm-start outcome, set by the persist loader (None = cold)
        self.persist_report = None

    # -- top-level run loops ------------------------------------------------

    def run(self, max_uops: int = 50_000_000,
            max_dispatches: int = 1_000_000) -> None:
        """Emulate until the architected program halts."""
        if self.initial_emulation == "bbt":
            self._run_translated(max_uops, max_dispatches)
        else:
            self._run_interpretive(max_uops, max_dispatches)

    def _run_translated(self, max_uops: int, max_dispatches: int) -> None:
        """VM.soft / VM.be style: everything runs out of the code caches."""
        budget = max_uops
        for _ in range(max_dispatches):
            if self.state.halted:
                return
            self.dispatches += 1
            translation = self._lookup_or_translate(self.state.eip)
            copy_arch_to_native(self.state, self.machine)
            try:
                event = self.machine.run(translation.native_addr,
                                         max_uops=budget)
            except NativeMachineError as exc:
                raise VMRuntimeError(str(exc)) from exc
            budget -= self._service(event, budget)
            if budget <= 0:
                raise VMRuntimeError("micro-op budget exhausted")
        raise VMRuntimeError("dispatch budget exhausted")

    def _run_interpretive(self, max_uops: int,
                          max_dispatches: int) -> None:
        """VM.fe x86-mode / Interp+SBT: emulate cold code one instruction
        at a time, watching block entries for hotspots."""
        budget = max_uops
        for _ in range(max_dispatches):
            if self.state.halted:
                return
            self.dispatches += 1
            entry = self.state.eip
            sbt_translation = self.directory.lookup(entry)
            if sbt_translation is not None:
                copy_arch_to_native(self.state, self.machine)
                try:
                    event = self.machine.run(sbt_translation.native_addr,
                                             max_uops=budget)
                except NativeMachineError as exc:
                    raise VMRuntimeError(str(exc)) from exc
                budget -= self._service(event, budget)
                if budget <= 0:
                    raise VMRuntimeError("micro-op budget exhausted")
                continue
            self.profiler.record_entry(entry)
            self._maybe_optimize_hotspots()
            # emulate one basic block (up to and including its CTI)
            while not self.state.halted:
                instr = self.interp.step()
                self.instructions_interpreted += 1
                if instr.is_control_transfer:
                    self.profiler.record_edge(entry, self.state.eip)
                    break
                # non-CTI block boundary: a translated successor exists
                if self.directory.has_translation(self.state.eip):
                    break
        else:
            raise VMRuntimeError("dispatch budget exhausted")

    # -- translation policy ----------------------------------------------------

    def _lookup_or_translate(self, entry: int) -> Translation:
        translation = self.directory.lookup(entry)
        if translation is not None:
            return translation
        try:
            translation = self.bbt.translate(entry)
        except CodeCacheFull:
            evicted = self.directory.flush("bbt")
            self.translations_lost_in_flushes += len(evicted)
            self.bbt_full_flushes += 1
            translation = self.bbt.translate(entry)
        if entry in self._bbt_entries_ever:
            self.bbt_retranslations += 1
        self._bbt_entries_ever.add(entry)
        return translation

    def _optimize(self, entry: int) -> Optional[Translation]:
        """Run the SBT on a newly hot region."""
        if self.directory.has_sbt(entry):
            return None
        edges = getattr(self.profiler, "edges", _NO_EDGES)
        try:
            translation = self.sbt.translate(entry, edges)
        except CodeCacheFull:
            evicted = self.directory.flush("sbt")
            self.translations_lost_in_flushes += len(evicted)
            self.sbt_full_flushes += 1
            self.sbt_retranslations += 1
            translation = self.sbt.translate(entry, edges)
        if entry in self._sbt_entries_ever:
            self.hotspot_retranslations += 1
        self._sbt_entries_ever.add(entry)
        return translation

    def _maybe_optimize_hotspots(self) -> None:
        while True:
            hot_entry = self.profiler.take_hot()
            if hot_entry is None:
                return
            self._optimize(hot_entry)

    # -- VM exit servicing --------------------------------------------------------

    def _service(self, event: ExitEvent, budget: int = 10_000_000) -> int:
        """Handle one VM exit; returns micro-ops consumed by the episode."""
        consumed = self.machine.uops_executed
        self.machine.uops_executed = 0
        self.total_uops_executed += consumed
        copy_native_to_arch(self.machine, self.state)
        self.vm_exits += 1

        if event.kind == "halt":
            self.state.halted = True
            return consumed

        if event.kind == "vmexit":
            target = event.value
            self.state.eip = target
            self._note_exit_edge(event, target)
            return consumed

        # vmcall
        service = VMService(event.value)
        if service is VMService.PROFILE:
            self.profile_calls += 1
            self._service_profile(event)
            # resume inside the BBT prologue (machine state is intact)
            remaining = max(budget - consumed, 1)
            try:
                resumed = self.machine.run(event.resume_pc,
                                           max_uops=remaining)
            except NativeMachineError as exc:
                raise VMRuntimeError(str(exc)) from exc
            return consumed + self._service(resumed, remaining)
        if service is VMService.INTERP_ONE:
            self.interp_one_calls += 1
            self._service_interp_one(event)
            return consumed
        raise VMRuntimeError(f"unknown VMCALL service {event.value}")

    def _note_exit_edge(self, event: ExitEvent, target: int) -> None:
        """Record the control edge and chain the exiting stub."""
        found = self.directory.find_stub(event.native_pc)
        if found is None:
            found = self.directory.find_stub(event.native_pc - 8)
        if found is None:
            return  # exit from non-directory code (bare-metal demos)
        stub, owner = found
        self.profiler.record_edge(owner.entry, target)
        if self.enable_chaining:
            self.directory.request_chain(stub)
        self._maybe_optimize_hotspots()

    def _service_profile(self, event: ExitEvent) -> None:
        """A BBT block's countdown counter hit zero: apply hot policy."""
        resolved = self.directory.resolve_side_table(event.native_pc)
        if resolved is None:
            raise VMRuntimeError(
                f"PROFILE vmcall without side-table entry at "
                f"{event.native_pc:#x}")
        entry, translation = resolved
        self.profiler.record_entry(entry, self.hot_threshold)
        self._maybe_optimize_hotspots()
        # disable further countdowns on the (now superseded) BBT copy
        self.bbt.reset_counter(translation, _COUNTER_DISABLED)

    def _service_interp_one(self, event: ExitEvent) -> None:
        """Precisely emulate one complex instruction in VMM software.

        This is also the precise-exception path: any architected
        exception (e.g. divide error) propagates from here with exact
        architected state, reconstructed from the native registers.
        """
        resolved = self.directory.resolve_side_table(event.native_pc)
        if resolved is None:
            raise VMRuntimeError(
                f"INTERP_ONE vmcall without side-table entry at "
                f"{event.native_pc:#x}")
        x86_addr, _translation = resolved
        self.state.eip = x86_addr
        self.interp.step()
        self.instructions_interpreted += 1

    # -- aggregate statistics ------------------------------------------------------

    def stats(self) -> dict:
        """Snapshot of runtime counters across all components."""
        return {
            "dispatches": self.dispatches,
            "vm_exits": self.vm_exits,
            "interp_one_calls": self.interp_one_calls,
            "profile_calls": self.profile_calls,
            "instructions_interpreted": self.instructions_interpreted,
            "blocks_translated": self.bbt.blocks_translated,
            "bbt_instrs_translated": self.bbt.instrs_translated,
            "superblocks_translated": self.sbt.superblocks_translated,
            "sbt_instrs_translated": self.sbt.instrs_translated,
            "pairs_fused": self.sbt.pairs_fused,
            "uops_executed": self.total_uops_executed,
            "fused_pairs_seen": self.machine.fused_pairs_seen,
            "chains_made": self.directory.chains_made,
            "lookups": self.directory.lookups,
            "bbt_flushes": self.directory.bbt_cache.flushes,
            "sbt_flushes": self.directory.sbt_cache.flushes,
            "sbt_retranslations": self.sbt_retranslations,
            "translations_lost_in_flushes":
                self.translations_lost_in_flushes,
            "bbt_retranslations": self.bbt_retranslations,
            "hotspot_retranslations": self.hotspot_retranslations,
            "persist_loaded": (self.persist_report.loaded
                               if self.persist_report else 0),
            "persist_dropped": (self.persist_report.dropped
                                if self.persist_report else 0),
            "persist_chains_restored": (
                self.persist_report.chains_restored
                if self.persist_report else 0),
        }


class _StaticEdges:
    """Edge-profile stand-in when only hardware detection exists (VM.fe)."""

    def biased_successor(self, source: int, bias: float = 0.6):
        return None


_NO_EDGES = _StaticEdges()
