"""The VMM runtime system — the staged-emulation controller of Fig. 1b.

Responsibilities, mirroring the paper's component (4):

* select between BBT and SBT for translation;
* dispatch through the translation lookup table and run the native
  machine inside the code caches;
* service VM exits: chain exit stubs, interpret complex instructions
  precisely, apply the hot-threshold policy when embedded profiling
  fires;
* manage code-cache pressure (flush and re-translate);
* recover precise architected state at exceptions.

Two execution strategies cover the paper's configurations:

* **translated** (VM.soft, VM.be): cold code runs via BBT translations
  with embedded software profiling.
* **interpretive** (VM.fe in x86-mode, and the Interp+SBT configuration
  of Fig. 2): cold code is emulated instruction-at-a-time — by the
  dual-mode decoder's x86-mode in VM.fe, by the software interpreter in
  Interp+SBT — while a hotspot detector watches block entries.

Both converge to SBT superblocks for hotspots; the functional behaviour
of hot code is identical across configurations, which the cross-
configuration equivalence tests pin down.
"""

from __future__ import annotations

import logging
from typing import Optional, Union

from repro.faults.plane import fault_point
from repro.interp.interpreter import Interpreter
from repro.isa.fusible.machine import (
    ExitEvent,
    FusibleMachine,
    NativeMachineError,
)
from repro.obs.ledger import CycleLedger, runtime_phase_costs
from repro.obs.metrics import MetricsRegistry, metric_field
from repro.obs.tracer import EventTracer
from repro.isa.fusible.opcodes import VMService
from repro.isa.x86lite.state import X86State
from repro.hwassist.hotspot_detector import BranchBehaviorBuffer
from repro.translator.bbt import BasicBlockTranslator
from repro.translator.code_cache import (
    CodeCacheFull,
    TranslationDirectory,
    Translation,
)
from repro.translator.sbt import SuperblockTranslator
from repro.vmm.precise_state import copy_arch_to_native, copy_native_to_arch
from repro.vmm.profiling import SoftwareProfiler
from repro.vmm.quarantine import TranslationQuarantine

log = logging.getLogger("repro.vmm")

#: Counter value used to disable an already-promoted block's profiling.
_COUNTER_DISABLED = 0x4000_0000


class VMRuntimeError(Exception):
    """Base for runtime failures; carries the dispatch context.

    Every subclass records the architected pc, the emulation mode and
    the dispatch count at the failure, so a report names *where in the
    program* and *which execution strategy* broke, not just what.
    """

    def __init__(self, message: str, *, pc: Optional[int] = None,
                 mode: Optional[str] = None,
                 dispatches: Optional[int] = None,
                 native_pc: Optional[int] = None) -> None:
        self.pc = pc
        self.mode = mode
        self.dispatches = dispatches
        self.native_pc = native_pc
        #: flight-recorder dump attached by the runtime when tracing is
        #: on: the last events before the failure, with fault context
        self.flight_recording = None
        context = []
        if pc is not None:
            context.append(f"pc={pc:#x}")
        if native_pc is not None:
            context.append(f"native_pc={native_pc:#x}")
        if mode is not None:
            context.append(f"mode={mode}")
        if dispatches is not None:
            context.append(f"dispatch={dispatches}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class UopBudgetExhausted(VMRuntimeError):
    """The micro-op budget ran out before the program halted."""


class DispatchBudgetExhausted(VMRuntimeError):
    """The dispatch budget ran out before the program halted."""


class NativeExecutionFault(VMRuntimeError):
    """The native machine faulted running translated code."""


class VMServiceFault(VMRuntimeError):
    """A VMCALL arrived that the VMM cannot service (unknown service
    number, or no side-table entry mapping it back to x86 state)."""


class VMRuntime:
    """Orchestrates staged emulation over one architected machine state."""

    # Every statistic is a registry-backed series (repro.obs.metrics):
    # ``self.dispatches += 1`` updates the series, so ``stats()`` /
    # ``ExecutionReport`` and the metrics plane can never diverge.
    dispatches = metric_field()
    vm_exits = metric_field()
    interp_one_calls = metric_field()
    profile_calls = metric_field()
    bbt_full_flushes = metric_field()
    sbt_full_flushes = metric_field()
    sbt_retranslations = metric_field()
    instructions_interpreted = metric_field()
    total_uops_executed = metric_field(name="uops_executed")
    translations_lost_in_flushes = metric_field()
    bbt_retranslations = metric_field()
    hotspot_retranslations = metric_field()
    translation_faults = metric_field()
    interpreted_fallback_instrs = metric_field()
    integrity_faults_detected = metric_field()
    integrity_retranslations = metric_field()
    hotspot_misfires = metric_field()

    def __init__(self, state: X86State,
                 hot_threshold: int = 8000,
                 initial_emulation: str = "bbt",
                 profiler: Union[SoftwareProfiler, BranchBehaviorBuffer,
                                 None] = None,
                 directory: Optional[TranslationDirectory] = None,
                 superblock_bias: float = 0.6,
                 max_superblock_instrs: int = 200,
                 enable_fusion: bool = True,
                 enable_chaining: bool = True,
                 max_block_instrs: int = 64,
                 verify_translations: bool = False,
                 integrity_check_interval: int = 0,
                 quarantine_max_retries: int = 3,
                 costs=None,
                 trace: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if initial_emulation not in ("bbt", "interp", "x86-mode"):
            raise ValueError(f"bad initial emulation {initial_emulation!r}")
        self.state = state
        self.memory = state.memory
        self.hot_threshold = hot_threshold
        self.initial_emulation = initial_emulation
        self.enable_chaining = enable_chaining

        self.machine = FusibleMachine(self.memory)
        if directory is not None:
            self.directory = directory
            # one registry per machine: adopt the directory's so runtime
            # and translator counters share a single metrics plane
            self.metrics = directory.metrics
        else:
            self.metrics = metrics if metrics is not None \
                else MetricsRegistry()
            self.directory = TranslationDirectory(self.memory,
                                                  metrics=self.metrics)

        # observability: the cycle ledger is the run's simulated clock
        # (every charge is attributed to exactly one Eq. 1 phase); the
        # tracer only exists when tracing is on, so hot-path hooks are
        # a single ``is not None`` test on non-traced runs
        self.phase_costs = runtime_phase_costs(costs)
        self.ledger = CycleLedger()
        self.tracer = EventTracer(clock=lambda: self.ledger.total) \
            if trace else None
        self.directory.tracer = self.tracer
        if initial_emulation == "x86-mode":
            self._interp_category = "x86_mode"
            self._interp_cpi = self.phase_costs.x86_mode_cpi
        else:
            self._interp_category = "interpretation"
            self._interp_cpi = self.phase_costs.interp_cpi
        #: ledger category of the currently dispatched translation
        self._exec_category = "bbt_execution"
        if verify_translations:
            # debug hook: statically verify translations as installed
            self.directory.verify_on_install = True
        self.profiler = profiler if profiler is not None \
            else SoftwareProfiler(hot_threshold)
        self.bbt = BasicBlockTranslator(
            self.directory, self.memory,
            embed_profiling=(initial_emulation == "bbt"),
            hot_threshold=hot_threshold,
            max_block_instrs=max_block_instrs,
            verify=verify_translations)
        self.sbt = SuperblockTranslator(
            self.directory, self.memory, bias=superblock_bias,
            max_instrs=max_superblock_instrs, enable_fusion=enable_fusion,
            verify=verify_translations)
        self.interp = Interpreter(state)

        #: failed-translation ledger: bounded retry, then permanent
        #: degradation to the emulation fallback (never a crash)
        self.quarantine = TranslationQuarantine(
            max_retries=quarantine_max_retries)
        #: sweep the code caches for corruption every N dispatches
        #: (0 = off; enabled by chaos runs and the config debug knob)
        self.integrity_check_interval = integrity_check_interval
        self._dispatches_since_sweep = 0

        # statistics
        self.dispatches = 0
        self.vm_exits = 0
        self.interp_one_calls = 0
        self.profile_calls = 0
        self.bbt_full_flushes = 0
        self.sbt_full_flushes = 0
        self.sbt_retranslations = 0
        self.instructions_interpreted = 0
        self.total_uops_executed = 0
        #: translations evicted by wholesale flushes (work thrown away)
        self.translations_lost_in_flushes = 0
        #: blocks translated again after their copy was lost to a flush
        self.bbt_retranslations = 0
        #: hotspots that had to be re-optimized after an SBT flush
        self.hotspot_retranslations = 0
        self._bbt_entries_ever: set = set()
        self._sbt_entries_ever: set = set()
        #: warm-start outcome, set by the persist loader (None = cold)
        self.persist_report = None
        # fault / recovery counters (the self-healing story)
        #: translator invocations that raised (real bug or injected)
        self.translation_faults = 0
        #: instructions emulated because a block's translation is
        #: quarantined or degraded (the graceful-degradation path)
        self.interpreted_fallback_instrs = 0
        #: corrupt code-cache copies detected by the integrity sweep
        self.integrity_faults_detected = 0
        #: blocks translated again after a corruption eviction
        self.integrity_retranslations = 0
        #: hotspot candidates that could not be optimized (bogus entry)
        self.hotspot_misfires = 0
        self._integrity_evicted_entries: set = set()

    # -- top-level run loops ------------------------------------------------

    def run(self, max_uops: int = 50_000_000,
            max_dispatches: int = 1_000_000) -> None:
        """Emulate until the architected program halts."""
        if self.tracer is not None:
            self.tracer.instant("run.begin", mode=self.initial_emulation,
                                pc=f"{self.state.eip:#x}")
        if self.initial_emulation == "bbt":
            self._run_translated(max_uops, max_dispatches)
        else:
            self._run_interpretive(max_uops, max_dispatches)
        if self.tracer is not None:
            self.tracer.instant("run.end", dispatches=self.dispatches,
                                exit_code=self.state.exit_code)

    def _run_translated(self, max_uops: int, max_dispatches: int) -> None:
        """VM.soft / VM.be style: everything runs out of the code caches.

        Almost: a block whose translation is quarantined or permanently
        degraded is emulated by the interpreter instead — translation is
        an optimization, never a prerequisite for forward progress.
        """
        budget = max_uops
        for _ in range(max_dispatches):
            if self.state.halted:
                return
            self.dispatches += 1
            self._pre_dispatch()
            translation = self._lookup_or_translate(self.state.eip)
            if translation is None:       # quarantined: emulate the block
                self._interpret_fallback_block()
                continue
            self._exec_category = "bbt_execution" \
                if translation.kind == "bbt" else "sbt_execution"
            copy_arch_to_native(self.state, self.machine)
            try:
                event = self.machine.run(translation.native_addr,
                                         max_uops=budget)
            except NativeMachineError as exc:
                raise self._vm_error(NativeExecutionFault(
                    str(exc), **self._error_context())) from exc
            budget -= self._service(event, budget)
            if budget <= 0:
                raise self._vm_error(UopBudgetExhausted(
                    "micro-op budget exhausted", **self._error_context()))
        raise self._vm_error(DispatchBudgetExhausted(
            "dispatch budget exhausted", **self._error_context()))

    def _run_interpretive(self, max_uops: int,
                          max_dispatches: int) -> None:
        """VM.fe x86-mode / Interp+SBT: emulate cold code one instruction
        at a time, watching block entries for hotspots."""
        budget = max_uops
        for _ in range(max_dispatches):
            if self.state.halted:
                return
            self.dispatches += 1
            self._pre_dispatch()
            entry = self.state.eip
            sbt_translation = self.directory.lookup(entry)
            if sbt_translation is not None:
                self._exec_category = "sbt_execution"
                copy_arch_to_native(self.state, self.machine)
                try:
                    event = self.machine.run(sbt_translation.native_addr,
                                             max_uops=budget)
                except NativeMachineError as exc:
                    raise self._vm_error(NativeExecutionFault(
                        str(exc), **self._error_context())) from exc
                budget -= self._service(event, budget)
                if budget <= 0:
                    raise self._vm_error(UopBudgetExhausted(
                        "micro-op budget exhausted",
                        **self._error_context()))
                continue
            self.profiler.record_entry(entry)
            self._maybe_optimize_hotspots()
            # emulate one basic block (up to and including its CTI)
            block_instrs = 0
            while not self.state.halted:
                instr = self.interp.step()
                block_instrs += 1
                if instr.is_control_transfer:
                    self.profiler.record_edge(entry, self.state.eip)
                    break
                # non-CTI block boundary: a translated successor exists
                if self.directory.has_translation(self.state.eip):
                    break
            self.instructions_interpreted += block_instrs
            self.ledger.charge(self._interp_category,
                               block_instrs * self._interp_cpi,
                               block=entry)
        else:
            raise self._vm_error(DispatchBudgetExhausted(
                "dispatch budget exhausted", **self._error_context()))

    def _error_context(self) -> dict:
        return {"pc": self.state.eip, "mode": self.initial_emulation,
                "dispatches": self.dispatches}

    def _vm_error(self, error: VMRuntimeError) -> VMRuntimeError:
        """Attach a flight-recorder dump before an error propagates.

        Returns the same exception, with ``flight_recording`` populated
        when tracing is on: the last events before the failure plus the
        faulting pc/mode/dispatch context (the forensic artifact the
        chaos harness and ``docs/observability.md`` build on).
        """
        if self.tracer is not None and error.flight_recording is None:
            error.flight_recording = self.tracer.flight_dump(
                type(error).__name__,
                pc=f"{self.state.eip:#x}" if error.pc is None
                else f"{error.pc:#x}",
                mode=error.mode or self.initial_emulation,
                dispatches=error.dispatches
                if error.dispatches is not None else self.dispatches)
        return error

    # -- self-healing ----------------------------------------------------------

    def _pre_dispatch(self) -> None:
        """Dispatch-boundary housekeeping: fault hooks + integrity sweep."""
        fault_point("dispatch", directory=self.directory, runtime=self)
        if not self.integrity_check_interval:
            return
        self._dispatches_since_sweep += 1
        if self._dispatches_since_sweep >= self.integrity_check_interval:
            self._dispatches_since_sweep = 0
            self._integrity_sweep()

    def _integrity_sweep(self) -> None:
        """Detect and evict corrupted code-cache copies.

        A translation whose immutable body no longer matches its install
        checksum is unlinked before it can be dispatched (or reached
        through a chain); its entry re-translates on demand like any
        cold block — detect-and-retranslate, never execute rot.
        """
        directory = self.directory
        found = 0
        for cache in (directory.bbt_cache, directory.sbt_cache):
            for translation in list(cache.translations):
                if directory.verify_integrity(translation):
                    continue
                found += 1
                self.integrity_faults_detected += 1
                self._integrity_evicted_entries.add(
                    (translation.entry, translation.kind))
                log.warning(
                    "code-cache corruption: %s copy of %#x evicted "
                    "(will retranslate on demand)",
                    translation.kind, translation.entry)
                if self.tracer is not None:
                    self.tracer.instant(
                        "integrity.hit", kind=translation.kind,
                        entry=f"{translation.entry:#x}")
                directory.evict(translation)
        if found and self.tracer is not None:
            self.tracer.instant("integrity.sweep", evicted=found)

    def _interpret_fallback_block(self) -> None:
        """Emulate one basic block whose translation is unavailable.

        Mirrors the interpretive strategy's inner loop: step precisely
        up to and including the block's control transfer, or until a
        translated successor exists.  Architected results are identical
        to the translated path by construction (the cross-configuration
        equivalence tests pin this down).
        """
        entry = self.state.eip
        block_instrs = 0
        while not self.state.halted:
            instr = self.interp.step()
            block_instrs += 1
            if instr.is_control_transfer:
                break
            if self.directory.has_translation(self.state.eip):
                break
        self.instructions_interpreted += block_instrs
        self.interpreted_fallback_instrs += block_instrs
        self.ledger.charge(self._interp_category,
                           block_instrs * self._interp_cpi, block=entry)

    # -- translation policy ----------------------------------------------------

    def _lookup_or_translate(self, entry: int) -> Optional[Translation]:
        """The installed translation for ``entry``, translating on miss.

        Returns None when the entry is quarantined (recent translator
        failure, bounded-backoff retry pending) or permanently degraded
        — the caller must emulate the block instead.  Any translator
        failure other than cache pressure lands in the quarantine; it
        never propagates out of the dispatch loop.
        """
        translation = self.directory.lookup(entry)
        if translation is not None:
            return translation
        if not self.quarantine.may_translate(entry, "bbt",
                                             self.dispatches):
            return None
        tracer = self.tracer
        if tracer is not None and entry not in self._bbt_entries_ever:
            tracer.instant("block.first_exec", entry=f"{entry:#x}")
        start = self.ledger.total
        try:
            try:
                translation = self.bbt.translate(entry)
            except CodeCacheFull:
                evicted = self.directory.flush("bbt")
                self.translations_lost_in_flushes += len(evicted)
                self.bbt_full_flushes += 1
                translation = self.bbt.translate(entry)
        except (AssertionError, KeyboardInterrupt, SystemExit):
            raise           # verifier findings and aborts are not faults
        except VMRuntimeError:
            raise
        except Exception as exc:   # noqa: BLE001 - degrade, never crash
            self._note_translation_fault(entry, "bbt", exc)
            return None
        self.ledger.charge(
            "bbt_translation",
            translation.instr_count * self.phase_costs.bbt_translate_cpi,
            block=entry)
        if tracer is not None:
            tracer.complete("translate.bbt", start, entry=f"{entry:#x}",
                            instrs=translation.instr_count,
                            uops=translation.uop_count)
        self.quarantine.record_success(entry, "bbt")
        if (entry, "bbt") in self._integrity_evicted_entries:
            self._integrity_evicted_entries.discard((entry, "bbt"))
            self.integrity_retranslations += 1
        if entry in self._bbt_entries_ever:
            self.bbt_retranslations += 1
        self._bbt_entries_ever.add(entry)
        return translation

    def _optimize(self, entry: int) -> Optional[Translation]:
        """Run the SBT on a newly hot region.

        SBT failure is pure graceful degradation: the BBT copy (or the
        interpreter) keeps running the region; retries are metered by
        the quarantine and eventually given up on for good.
        """
        if self.directory.has_sbt(entry):
            return None
        if not self.quarantine.may_translate(entry, "sbt",
                                             self.dispatches):
            return None
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("hotspot.promote", entry=f"{entry:#x}")
        start = self.ledger.total
        edges = getattr(self.profiler, "edges", _NO_EDGES)
        try:
            try:
                translation = self.sbt.translate(entry, edges)
            except CodeCacheFull:
                evicted = self.directory.flush("sbt")
                self.translations_lost_in_flushes += len(evicted)
                self.sbt_full_flushes += 1
                self.sbt_retranslations += 1
                translation = self.sbt.translate(entry, edges)
        except (AssertionError, KeyboardInterrupt, SystemExit):
            raise
        except VMRuntimeError:
            raise
        except Exception as exc:   # noqa: BLE001 - degrade, never crash
            self._note_translation_fault(entry, "sbt", exc)
            return None
        self.ledger.charge(
            "sbt_translation",
            translation.instr_count * self.phase_costs.sbt_translate_cpi,
            block=entry)
        if tracer is not None:
            tracer.complete("translate.sbt", start, entry=f"{entry:#x}",
                            instrs=translation.instr_count,
                            uops=translation.uop_count,
                            fused_pairs=translation.fused_pairs)
        self.quarantine.record_success(entry, "sbt")
        if (entry, "sbt") in self._integrity_evicted_entries:
            self._integrity_evicted_entries.discard((entry, "sbt"))
            self.integrity_retranslations += 1
        if entry in self._sbt_entries_ever:
            self.hotspot_retranslations += 1
        self._sbt_entries_ever.add(entry)
        return translation

    def _note_translation_fault(self, entry: int, kind: str,
                                error: Exception) -> None:
        self.translation_faults += 1
        record = self.quarantine.record_failure(entry, kind,
                                                self.dispatches, error)
        if self.tracer is not None:
            self.tracer.instant("fault.translation", kind=kind,
                                entry=f"{entry:#x}",
                                error=type(error).__name__)
            self.tracer.instant(
                "quarantine.degrade" if record.degraded
                else "quarantine.add", kind=kind, entry=f"{entry:#x}")
        log.warning(
            "%s translation of %#x failed (%s: %s); %s", kind, entry,
            type(error).__name__, error,
            "degraded to emulation permanently" if record.degraded
            else f"retry after dispatch {record.retry_at}")

    def _maybe_optimize_hotspots(self) -> None:
        bogus = fault_point("hotspot.candidate")
        if bogus is not None:
            # a misfiring detector reported a never-executed address;
            # the attempt must fail into the quarantine harmlessly
            self.hotspot_misfires += 1
            if self.tracer is not None:
                self.tracer.instant("hotspot.misfire",
                                    entry=f"{bogus:#x}")
            self._optimize(bogus)
        while True:
            hot_entry = self.profiler.take_hot()
            if hot_entry is None:
                return
            self._optimize(hot_entry)

    # -- VM exit servicing --------------------------------------------------------

    def _service(self, event: ExitEvent, budget: int = 10_000_000) -> int:
        """Handle one VM exit; returns micro-ops consumed by the episode."""
        consumed = self.machine.uops_executed
        self.machine.uops_executed = 0
        self.total_uops_executed += consumed
        self.ledger.charge(self._exec_category,
                           consumed * self.phase_costs.uop_cycles)
        copy_native_to_arch(self.machine, self.state)
        self.vm_exits += 1

        if event.kind == "halt":
            self.state.halted = True
            return consumed

        if event.kind == "vmexit":
            target = event.value
            self.state.eip = target
            self._note_exit_edge(event, target)
            return consumed

        # vmcall
        service = VMService(event.value)
        if service is VMService.PROFILE:
            self.profile_calls += 1
            self._service_profile(event)
            # resume inside the BBT prologue (machine state is intact)
            remaining = max(budget - consumed, 1)
            try:
                resumed = self.machine.run(event.resume_pc,
                                           max_uops=remaining)
            except NativeMachineError as exc:
                raise self._vm_error(NativeExecutionFault(
                    str(exc), native_pc=event.resume_pc,
                    **self._error_context())) from exc
            return consumed + self._service(resumed, remaining)
        if service is VMService.INTERP_ONE:
            self.interp_one_calls += 1
            self._service_interp_one(event)
            return consumed
        raise self._vm_error(VMServiceFault(
            f"unknown VMCALL service {event.value}",
            native_pc=event.native_pc, **self._error_context()))

    def _note_exit_edge(self, event: ExitEvent, target: int) -> None:
        """Record the control edge and chain the exiting stub."""
        found = self.directory.find_stub(event.native_pc)
        if found is None:
            found = self.directory.find_stub(event.native_pc - 8)
        if found is None:
            return  # exit from non-directory code (bare-metal demos)
        stub, owner = found
        self.profiler.record_edge(owner.entry, target)
        if self.enable_chaining:
            self.directory.request_chain(stub)
        self._maybe_optimize_hotspots()

    def _service_profile(self, event: ExitEvent) -> None:
        """A BBT block's countdown counter hit zero: apply hot policy."""
        resolved = self.directory.resolve_side_table(event.native_pc)
        if resolved is None:
            raise self._vm_error(VMServiceFault(
                "PROFILE vmcall without side-table entry",
                native_pc=event.native_pc, **self._error_context()))
        entry, translation = resolved
        self.profiler.record_entry(entry, self.hot_threshold)
        self._maybe_optimize_hotspots()
        # disable further countdowns on the (now superseded) BBT copy
        self.bbt.reset_counter(translation, _COUNTER_DISABLED)

    def _service_interp_one(self, event: ExitEvent) -> None:
        """Precisely emulate one complex instruction in VMM software.

        This is also the precise-exception path: any architected
        exception (e.g. divide error) propagates from here with exact
        architected state, reconstructed from the native registers.
        """
        resolved = self.directory.resolve_side_table(event.native_pc)
        if resolved is None:
            raise self._vm_error(VMServiceFault(
                "INTERP_ONE vmcall without side-table entry",
                native_pc=event.native_pc, **self._error_context()))
        x86_addr, _translation = resolved
        self.state.eip = x86_addr
        self.interp.step()
        self.instructions_interpreted += 1
        self.ledger.charge(self._interp_category, self._interp_cpi,
                           block=x86_addr)

    # -- aggregate statistics ------------------------------------------------------

    def _sync_gauges(self) -> None:
        """Mirror snapshot-time values into the metrics registry.

        Per-micro-op machine counters and derived values (quarantine
        depth, warm-start outcome) stay plain attributes on the hot
        path; this publishes them as gauges so the registry is a
        complete single source of truth at every ``stats()`` call.
        """
        report = self.persist_report
        gauge = self.metrics.gauge
        gauge("fused_pairs_seen").set(self.machine.fused_pairs_seen)
        gauge("blocks_quarantined").set(self.quarantine.quarantined)
        gauge("blocks_degraded").set(self.quarantine.degraded)
        gauge("persist_loaded").set(report.loaded if report else 0)
        gauge("persist_dropped").set(report.dropped if report else 0)
        gauge("persist_chains_restored").set(
            report.chains_restored if report else 0)
        gauge("xltx86_invocations").set(
            self.bbt.xlt_unit.invocations if self.bbt.xlt_unit else 0)
        gauge("sim_cycles_total").set(self.ledger.total)
        for phase, cycles in self.ledger.totals().items():
            gauge("phase_cycles", phase=phase).set(cycles)

    def stats(self) -> dict:
        """Snapshot of runtime counters across all components."""
        self._sync_gauges()
        return {
            "dispatches": self.dispatches,
            "vm_exits": self.vm_exits,
            "interp_one_calls": self.interp_one_calls,
            "profile_calls": self.profile_calls,
            "instructions_interpreted": self.instructions_interpreted,
            "blocks_translated": self.bbt.blocks_translated,
            "bbt_instrs_translated": self.bbt.instrs_translated,
            "superblocks_translated": self.sbt.superblocks_translated,
            "sbt_instrs_translated": self.sbt.instrs_translated,
            "pairs_fused": self.sbt.pairs_fused,
            "uops_executed": self.total_uops_executed,
            "fused_pairs_seen": self.machine.fused_pairs_seen,
            "chains_made": self.directory.chains_made,
            "lookups": self.directory.lookups,
            "bbt_flushes": self.directory.bbt_cache.flushes,
            "sbt_flushes": self.directory.sbt_cache.flushes,
            "sbt_retranslations": self.sbt_retranslations,
            "translations_lost_in_flushes":
                self.translations_lost_in_flushes,
            "bbt_retranslations": self.bbt_retranslations,
            "hotspot_retranslations": self.hotspot_retranslations,
            "persist_loaded": (self.persist_report.loaded
                               if self.persist_report else 0),
            "persist_dropped": (self.persist_report.dropped
                                if self.persist_report else 0),
            "persist_chains_restored": (
                self.persist_report.chains_restored
                if self.persist_report else 0),
            # fault / recovery counters (self-healing)
            "translation_faults": self.translation_faults,
            "blocks_quarantined": self.quarantine.quarantined,
            "blocks_degraded": self.quarantine.degraded,
            "interpreted_fallback_instrs":
                self.interpreted_fallback_instrs,
            "integrity_faults_detected": self.integrity_faults_detected,
            "integrity_retranslations": self.integrity_retranslations,
            "hotspot_misfires": self.hotspot_misfires,
            # cycle attribution (Eq. 1 phases; conserved by construction)
            "total_cycles": self.ledger.total,
            "phase_cycles": self.ledger.totals(),
        }


class _StaticEdges:
    """Edge-profile stand-in when only hardware detection exists (VM.fe)."""

    def biased_successor(self, source: int, bias: float = 0.6):
        return None


_NO_EDGES = _StaticEdges()
