"""Precise architected-state mapping (Fig. 1b's shaded boundary).

The co-design contract keeps architected state *live* in the native
machine: GPR ``r`` is native register ``r`` (R0..R7), and the architected
flags are the native machine's flags.  Mapping between the two is
therefore a straight copy — which is exactly what makes VM exits cheap and
what lets VMM software reconstruct precise x86 state at any architected
instruction boundary.

Memory is shared by construction (one physical address space), so only
registers and flags move.
"""

from __future__ import annotations

from repro.isa.fusible.machine import FusibleMachine
from repro.isa.fusible.registers import ARCH_REG_COUNT
from repro.isa.x86lite.state import X86State


def copy_arch_to_native(state: X86State, machine: FusibleMachine) -> None:
    """Load architected registers/flags into the native machine."""
    for index in range(ARCH_REG_COUNT):
        machine.regs[index] = state.regs[index]
    machine.cf, machine.zf = state.cf, state.zf
    machine.sf, machine.of = state.sf, state.of


def copy_native_to_arch(machine: FusibleMachine, state: X86State) -> None:
    """Materialize precise architected registers/flags from the machine."""
    for index in range(ARCH_REG_COUNT):
        state.regs[index] = machine.regs[index]
    state.cf, state.zf = machine.cf, machine.zf
    state.sf, state.of = machine.sf, machine.of
