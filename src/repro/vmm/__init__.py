"""The concealed VMM runtime of the co-designed VM (Fig. 1).

Orchestrates staged emulation: dispatch between the code caches, the
translators and (for complex instructions) the interpreter; maintains
profiling state and the hot-threshold policy; and performs precise
architected-state mapping at VM exits and exceptions.
"""

from repro.vmm.precise_state import (
    copy_arch_to_native,
    copy_native_to_arch,
)
from repro.vmm.profiling import EdgeProfile, SoftwareProfiler
from repro.vmm.runtime import VMRuntime, VMRuntimeError

__all__ = ["EdgeProfile", "SoftwareProfiler", "VMRuntime", "VMRuntimeError",
           "copy_arch_to_native", "copy_native_to_arch"]
