"""The concealed VMM runtime of the co-designed VM (Fig. 1).

Orchestrates staged emulation: dispatch between the code caches, the
translators and (for complex instructions) the interpreter; maintains
profiling state and the hot-threshold policy; and performs precise
architected-state mapping at VM exits and exceptions.
"""

from repro.vmm.precise_state import (
    copy_arch_to_native,
    copy_native_to_arch,
)
from repro.vmm.profiling import EdgeProfile, SoftwareProfiler
from repro.vmm.quarantine import QuarantineEntry, TranslationQuarantine
from repro.vmm.runtime import (
    DispatchBudgetExhausted,
    NativeExecutionFault,
    UopBudgetExhausted,
    VMRuntime,
    VMRuntimeError,
    VMServiceFault,
)

__all__ = ["DispatchBudgetExhausted", "EdgeProfile",
           "NativeExecutionFault", "QuarantineEntry", "SoftwareProfiler",
           "TranslationQuarantine", "UopBudgetExhausted", "VMRuntime",
           "VMRuntimeError", "VMServiceFault",
           "copy_arch_to_native", "copy_native_to_arch"]
