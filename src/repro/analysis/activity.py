"""Hardware x86-decoder activity over time — Fig. 11.

Activity is the fraction of cycles the x86 decode logic must be powered:

* the conventional superscalar decodes x86 continuously (100%);
* VM.soft has no hardware x86 decoders at all (0%);
* VM.be powers the XLTx86 unit only while the BBT loop runs — its
  activity collapses once the working set is translated;
* VM.fe's dual-mode decoders are active whenever the pipeline executes in
  x86-mode, so activity decays as hotspot coverage grows — later than
  VM.be, as the paper notes.

The simulator tracks decoder-busy cycles on the sampler's aux channel;
this module turns them into the cumulative-activity-percentage series the
figure plots.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.timing.startup_sim import StartupResult


def activity_curve(result: StartupResult,
                   grid: Sequence[float]) -> List[float]:
    """Aggregate decoder activity (busy cycles / total cycles) at each
    grid point, in percent."""
    series = result.series
    out = []
    for cycles in grid:
        busy = _interpolate(series.cycles, series.aux, cycles)
        effective = min(cycles, result.total_cycles)
        out.append(100.0 * busy / effective if effective else 0.0)
    return out


def _interpolate(points: Sequence[float], values: Sequence[float],
                 at: float) -> float:
    if not points or at <= 0:
        return 0.0
    if at <= points[0]:
        return values[0] * at / points[0] if points[0] else 0.0
    if at >= points[-1]:
        return values[-1]
    low, high = 0, len(points) - 1
    while high - low > 1:
        mid = (low + high) // 2
        if points[mid] <= at:
            low = mid
        else:
            high = mid
    span = points[high] - points[low]
    fraction = (at - points[low]) / span if span else 0.0
    return values[low] + fraction * (values[high] - values[low])


def final_activity(result: StartupResult) -> float:
    """Activity percentage over the whole run."""
    if not result.total_cycles:
        return 0.0
    return 100.0 * result.series.aux[-1] / result.total_cycles \
        if result.series.aux else 0.0
