"""Startup-curve post-processing for Figs. 2 and 8.

The figures plot *normalized aggregate IPC* — total instructions executed
so far divided by total cycles, normalized to the reference superscalar's
steady-state IPC — against execution time in cycles (log scale), averaged
over the ten Winstone applications.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.timing.sampler import interpolate_at
from repro.timing.startup_sim import StartupResult


def normalized_curve(result: StartupResult, steady_ipc: float,
                     grid: Sequence[float]) -> List[float]:
    """Aggregate-IPC curve normalized to the reference steady IPC."""
    out = []
    for cycles in grid:
        instrs = interpolate_at(result.series, cycles)
        effective = min(cycles, result.total_cycles)
        out.append(instrs / effective / steady_ipc if effective else 0.0)
    return out


def log_grid(first: float = 100.0, last: float = 1e9,
             per_decade: int = 4) -> List[float]:
    """A log-spaced cycle grid for plotting."""
    points = []
    value = first
    ratio = 10.0 ** (1.0 / per_decade)
    while value <= last * 1.0001:
        points.append(value)
        value *= ratio
    return points


def suite_average_curve(results: Iterable[StartupResult],
                        steady_ipcs: Dict[str, float],
                        grid: Sequence[float]) -> List[float]:
    """Average one configuration's normalized curve over a suite of apps.

    ``steady_ipcs`` maps app name -> reference steady-state IPC (the
    normalization base, per the figures' y-axis).
    """
    curves = [normalized_curve(result, steady_ipcs[result.app_name], grid)
              for result in results]
    if not curves:
        return []
    return [sum(values) / len(values) for values in zip(*curves)]


def half_gain_point(result: StartupResult, reference: StartupResult,
                    steady_gain: float) -> float:
    """Cycles needed to reach half the steady-state gain over the
    reference curve (the paper's 'half performance gain point': VM.fe
    reaches it at 100M cycles, VM.be after 100M).

    ``steady_gain`` is the full steady-state speedup (e.g. 0.08).
    """
    target = 1.0 + steady_gain / 2.0
    grid = sorted(set(result.series.cycles)
                  | set(reference.series.cycles))
    for cycles in grid:
        ref_instrs = interpolate_at(reference.series, cycles)
        vm_instrs = interpolate_at(result.series, cycles)
        if ref_instrs > 1000 and vm_instrs / ref_instrs >= target:
            return cycles
    return math.inf


def curve_table(grid: Sequence[float],
                named_curves: "List[Tuple[str, List[float]]]"
                ) -> List[dict]:
    """Rows of {cycles, <name>: value, ...} for printing."""
    rows = []
    for index, cycles in enumerate(grid):
        row = {"cycles": cycles}
        for name, curve in named_curves:
            row[name] = curve[index]
        rows.append(row)
    return rows
