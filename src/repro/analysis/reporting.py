"""Plain-text tables and charts for benchmark output.

The benchmark harness prints each reproduced figure as an ASCII chart or
table so results are inspectable straight from ``pytest benchmarks/``
output (and are archived in ``bench_output.txt``).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def render(cell) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if math.isinf(cell):
                return "inf"
            if abs(cell) >= 1000 or (cell and abs(cell) < 0.01):
                return f"{cell:.3g}"
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    widths = [max(len(header), *(len(row[index]) for row in text_rows))
              if text_rows else len(header)
              for index, header in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(x_labels: Sequence[str],
                series: Dict[str, Sequence[float]],
                width: int = 40, title: Optional[str] = None,
                y_format: str = "{:.2f}") -> str:
    """Horizontal bar chart per x position, one row per series value.

    Suited to the paper's log-x startup curves: each x label gets one
    line per series with a proportional bar.
    """
    peak = max((max(values) for values in series.values() if values),
               default=1.0) or 1.0
    lines = []
    if title:
        lines.append(title)
    name_width = max(len(name) for name in series)
    for index, label in enumerate(x_labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[index]
            bar = "#" * int(round(width * value / peak))
            lines.append(f"  {name.ljust(name_width)} "
                         f"{y_format.format(value).rjust(8)} {bar}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line trend rendering for a series."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    peak = max(values) or 1.0
    step = max(len(values) / width, 1.0)
    out = []
    index = 0.0
    while index < len(values):
        value = values[int(index)]
        out.append(blocks[min(int(value / peak * (len(blocks) - 1)),
                              len(blocks) - 1)])
        index += step
    return "".join(out)
