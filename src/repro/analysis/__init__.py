"""Analysis: turn simulation output into the paper's figures and tables."""

from repro.analysis.models import (
    TranslationOverheadModel,
    hot_threshold,
    sbt_breakeven_executions,
    translation_overhead,
)
from repro.analysis.startup_curves import (
    normalized_curve,
    suite_average_curve,
    half_gain_point,
)
from repro.analysis.breakeven import breakeven_for_app, breakeven_table
from repro.analysis.frequency_profile import (
    FrequencyProfile,
    frequency_profile,
    suite_frequency_profile,
)
from repro.analysis.activity import activity_curve
from repro.analysis.consistency import ConsistencyReport, \
    consistency_report, interval_ipcs
from repro.analysis.reporting import ascii_chart, format_table

__all__ = [
    "ConsistencyReport", "FrequencyProfile", "TranslationOverheadModel",
    "activity_curve", "ascii_chart", "breakeven_for_app",
    "breakeven_table", "consistency_report", "format_table",
    "frequency_profile", "half_gain_point", "hot_threshold",
    "interval_ipcs", "normalized_curve", "sbt_breakeven_executions",
    "suite_average_curve", "suite_frequency_profile",
    "translation_overhead",
]
