"""Performance consistency and predictability.

The paper's conclusion notes that "runtime overhead not only affects
startup performance, but also system performance consistency and
predictability" — translation pauses make delivered performance vary
over time in a way conventional processors do not.  This module
quantifies that: interval IPCs over a startup run and their dispersion.

Metrics:

* **interval IPCs** — instantaneous (per log-interval) IPC between
  consecutive samples, as opposed to the aggregate IPC the startup
  figures plot;
* **coefficient of variation (CV)** of interval IPCs over a window —
  lower is steadier;
* **worst interval fraction** — the slowest interval's IPC relative to
  the final aggregate, a simple predictability floor (how far delivered
  performance can momentarily drop).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.timing.startup_sim import StartupResult


def interval_ipcs(result: StartupResult,
                  min_cycles: float = 0.0
                  ) -> List[Tuple[float, float]]:
    """(interval-end cycles, interval IPC) between consecutive samples."""
    series = result.series
    out: List[Tuple[float, float]] = []
    for index in range(1, len(series.cycles)):
        span = series.cycles[index] - series.cycles[index - 1]
        if span <= 0 or series.cycles[index] < min_cycles:
            continue
        instrs = series.instructions[index] - \
            series.instructions[index - 1]
        out.append((series.cycles[index], instrs / span))
    return out


@dataclass
class ConsistencyReport:
    """Dispersion statistics of delivered performance over a run."""

    config_name: str
    app_name: str
    mean_interval_ipc: float
    cv: float                     # std / mean of interval IPCs
    worst_interval_fraction: float

    def summary_row(self) -> list:
        return [self.config_name, self.mean_interval_ipc, self.cv,
                self.worst_interval_fraction]


def consistency_report(result: StartupResult,
                       skip_cycles: float = 1e5) -> ConsistencyReport:
    """Dispersion of interval IPCs after the first ``skip_cycles``.

    The earliest intervals are cold-start for every machine; skipping
    them isolates the *translation-induced* variability the paper's
    conclusion refers to.
    """
    points = interval_ipcs(result, min_cycles=skip_cycles)
    values = [ipc for _cycles, ipc in points]
    if not values:
        return ConsistencyReport(result.config_name, result.app_name,
                                 0.0, 0.0, 0.0)
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    std = math.sqrt(variance)
    aggregate = result.aggregate_ipc
    worst = min(values) / aggregate if aggregate else 0.0
    return ConsistencyReport(
        config_name=result.config_name,
        app_name=result.app_name,
        mean_interval_ipc=mean,
        cv=std / mean if mean else 0.0,
        worst_interval_fraction=worst)
