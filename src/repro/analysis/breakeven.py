"""Breakeven analysis — Fig. 9.

The breakeven point is the time at which a VM configuration has executed
the same cumulative number of instructions as the reference superscalar
(not the earlier point where instantaneous IPCs match).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from repro.core.config import MachineConfig
from repro.timing.sampler import crossover_cycles
from repro.timing.scenarios import Scenario
from repro.timing.startup_sim import simulate_startup
from repro.workloads.trace import generate_workload
from repro.workloads.winstone import AppProfile


@dataclass
class BreakevenRow:
    """Per-application breakeven cycles for each VM configuration."""

    app: str
    cycles_by_config: Dict[str, float]

    def capped(self, cap: float = 200e6) -> Dict[str, float]:
        """Values clipped at ``cap`` (Fig. 9 clips its y-axis at 200M and
        labels taller bars with their actual values)."""
        return {name: min(value, cap)
                for name, value in self.cycles_by_config.items()}


def breakeven_for_app(app: AppProfile,
                      vm_configs: Iterable[MachineConfig],
                      reference: MachineConfig,
                      dyn_instrs: int = 500_000_000,
                      seed: int = 0,
                      scenario: Scenario = Scenario.MEMORY_STARTUP
                      ) -> BreakevenRow:
    """Simulate one app under every configuration; measure breakevens."""
    workload = generate_workload(app, dyn_instrs=dyn_instrs, seed=seed)
    ref_result = simulate_startup(reference, workload, scenario)
    cycles_by_config: Dict[str, float] = {}
    for config in vm_configs:
        vm_result = simulate_startup(config, workload, scenario)
        cycles_by_config[config.name] = crossover_cycles(
            vm_result.series, ref_result.series, start=1e4)
    return BreakevenRow(app=app.name, cycles_by_config=cycles_by_config)


def breakeven_table(apps: Iterable[AppProfile],
                    vm_configs: "Callable[[], List[MachineConfig]]",
                    reference: "Callable[[], MachineConfig]",
                    dyn_instrs: int = 500_000_000,
                    seed: int = 0) -> List[BreakevenRow]:
    """Fig. 9's full table: one row per application."""
    return [breakeven_for_app(app, vm_configs(), reference(),
                              dyn_instrs=dyn_instrs, seed=seed)
            for app in apps]


def format_breakeven(value: float) -> str:
    """Human form: '13.3M', '402M', or 'never' (no breakeven in range)."""
    if math.isinf(value):
        return "never"
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    return f"{value / 1e6:.1f}M"
