"""The paper's analytical models (Section 3.2).

Equation 1 — total translation overhead of a two-stage BBT+SBT system::

    overhead = M_BBT * Δ_BBT + M_SBT * Δ_SBT

Equation 2 — the Jikes-style break-even execution count that sets the hot
threshold::

    N * t_b = (N + Δ_SBT) * (t_b / p)   =>   N = Δ_SBT / (p - 1)

With the paper's measurements (Δ_SBT ≈ 1200 x86 instructions, p = 1.15),
N = 8000 — the hot threshold used by every VM configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper-measured parameters (Section 3.2).
PAPER_DELTA_BBT_NATIVE = 105          # native instrs / x86 instr
PAPER_DELTA_SBT_NATIVE = 1674         # native instrs / hot x86 instr
PAPER_DELTA_SBT_X86 = 1152            # expressed in x86 instructions
PAPER_M_BBT = 150_000                 # static instrs touched (100M trace)
PAPER_M_SBT = 3_000                   # static instrs above threshold
PAPER_SPEEDUP_P = 1.15                # SBT over BBT code (1.15 - 1.2)


def sbt_breakeven_executions(delta_sbt: float = 1200.0,
                             speedup: float = PAPER_SPEEDUP_P) -> float:
    """Equation 2: executions needed to amortize one SBT translation.

    ``delta_sbt`` is the per-instruction optimization overhead in units
    of the emulated ISA's instructions; ``speedup`` is p, the SBT-over-
    initial-emulation speedup.  The paper's numbers give
    1200 / 0.15 = 8000.
    """
    if speedup <= 1.0:
        raise ValueError("optimization must speed code up (p > 1)")
    return delta_sbt / (speedup - 1.0)


def hot_threshold(delta_sbt: float = 1200.0,
                  speedup: float = PAPER_SPEEDUP_P) -> int:
    """The hot threshold: Eq. 2 rounded to an implementable integer."""
    return int(round(sbt_breakeven_executions(delta_sbt, speedup)))


@dataclass(frozen=True)
class TranslationOverheadModel:
    """Equation 1 with its four parameters."""

    m_bbt: int = PAPER_M_BBT
    m_sbt: int = PAPER_M_SBT
    delta_bbt: float = PAPER_DELTA_BBT_NATIVE
    delta_sbt: float = PAPER_DELTA_SBT_NATIVE

    @property
    def bbt_overhead(self) -> float:
        """Native instructions spent in BBT translation."""
        return self.m_bbt * self.delta_bbt

    @property
    def sbt_overhead(self) -> float:
        """Native instructions spent in SBT translation."""
        return self.m_sbt * self.delta_sbt

    @property
    def total(self) -> float:
        return self.bbt_overhead + self.sbt_overhead

    @property
    def bbt_fraction(self) -> float:
        return self.bbt_overhead / self.total if self.total else 0.0


def translation_overhead(m_bbt: int = PAPER_M_BBT,
                         m_sbt: int = PAPER_M_SBT,
                         delta_bbt: float = PAPER_DELTA_BBT_NATIVE,
                         delta_sbt: float = PAPER_DELTA_SBT_NATIVE
                         ) -> TranslationOverheadModel:
    """Equation 1 as a callable; defaults are the paper's values
    (15.75M + 5.02M native instructions)."""
    return TranslationOverheadModel(m_bbt, m_sbt, delta_bbt, delta_sbt)
