"""Instruction execution-frequency profiles — Fig. 3.

For a workload (or suite), bucket static instructions by how many times
they execute, and dynamic instructions by the execution count of their
home block.  The left axis of Fig. 3 is the static histogram; the right
axis is the dynamic distribution, whose peak the paper highlights
("30+% of all dynamic instructions execute more than 10K times, but less
than 100K").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.workloads.trace import Workload

#: Fig. 3's x-axis bucket lower bounds ("1+", "10+", ... "10,000,000+").
DEFAULT_BUCKETS = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000,
                   10_000_000)


@dataclass
class FrequencyProfile:
    """Bucketed execution-frequency data."""

    buckets: tuple = DEFAULT_BUCKETS
    static_instrs: List[float] = field(default_factory=list)
    dynamic_instrs: List[float] = field(default_factory=list)
    total_static: float = 0.0
    total_dynamic: float = 0.0

    def static_above(self, threshold: int) -> float:
        """Static instructions whose execution count is >= threshold
        (exact, accumulated during profiling)."""
        return self._static_above.get(threshold, 0.0)

    _static_above: dict = field(default_factory=dict)

    def dynamic_fractions(self) -> List[float]:
        if not self.total_dynamic:
            return [0.0] * len(self.buckets)
        return [value / self.total_dynamic
                for value in self.dynamic_instrs]

    def peak_dynamic_bucket(self) -> int:
        """Lower bound of the bucket holding the most dynamic weight."""
        fractions = self.dynamic_fractions()
        return self.buckets[fractions.index(max(fractions))]

    def hotspot_dynamic_fraction(self, threshold: int) -> float:
        """Dynamic weight in buckets at/above ``threshold``."""
        total = sum(value for bucket, value
                    in zip(self.buckets, self.dynamic_instrs)
                    if bucket >= threshold)
        return total / self.total_dynamic if self.total_dynamic else 0.0


def frequency_profile(workload: Workload,
                      buckets: tuple = DEFAULT_BUCKETS,
                      thresholds: Iterable[int] = (25, 8000)
                      ) -> FrequencyProfile:
    """Profile one workload."""
    profile = FrequencyProfile(buckets=buckets,
                               static_instrs=[0.0] * len(buckets),
                               dynamic_instrs=[0.0] * len(buckets))
    profile._static_above = {threshold: 0.0 for threshold in thresholds}
    for region in workload.regions:
        count = region.total_iterations
        instrs = region.instr_count
        profile.total_static += instrs
        profile.total_dynamic += count * instrs
        for threshold in profile._static_above:
            if count >= threshold:
                profile._static_above[threshold] += instrs
        for index in range(len(buckets) - 1, -1, -1):
            if count >= buckets[index]:
                profile.static_instrs[index] += instrs
                profile.dynamic_instrs[index] += count * instrs
                break
    return profile


def suite_frequency_profile(workloads: Iterable[Workload],
                            buckets: tuple = DEFAULT_BUCKETS,
                            thresholds: Iterable[int] = (25, 8000)
                            ) -> FrequencyProfile:
    """Aggregate profile over a suite (Fig. 3 averages the ten traces)."""
    thresholds = tuple(thresholds)
    combined = FrequencyProfile(buckets=buckets,
                                static_instrs=[0.0] * len(buckets),
                                dynamic_instrs=[0.0] * len(buckets))
    combined._static_above = {threshold: 0.0 for threshold in thresholds}
    count = 0
    for workload in workloads:
        profile = frequency_profile(workload, buckets, thresholds)
        for index in range(len(buckets)):
            combined.static_instrs[index] += profile.static_instrs[index]
            combined.dynamic_instrs[index] += \
                profile.dynamic_instrs[index]
        combined.total_static += profile.total_static
        combined.total_dynamic += profile.total_dynamic
        for threshold in thresholds:
            combined._static_above[threshold] += \
                profile.static_above(threshold)
        count += 1
    if count:
        # report per-app averages on the static axis, like the paper
        combined.static_instrs = [value / count
                                  for value in combined.static_instrs]
        combined.total_static /= count
        combined._static_above = {
            threshold: value / count
            for threshold, value in combined._static_above.items()}
    return combined
