"""The four startup scenarios of Section 3.1.

=================  ===========================================================
scenario           initial state
=================  ===========================================================
DISK_STARTUP       binary on disk; memory, caches, code cache all cold
MEMORY_STARTUP     binary in memory; caches and code cache cold (the paper's
                   evaluation scenario: "major context switch")
CODE_CACHE_WARM    translations still in the main-memory code cache, but the
                   cache hierarchy is cold ("short context switch")
STEADY_STATE       everything warm: translated, cached, running full speed
=================  ===========================================================
"""

from __future__ import annotations

import enum


class Scenario(enum.Enum):
    DISK_STARTUP = "disk"
    MEMORY_STARTUP = "memory"
    CODE_CACHE_WARM = "code-cache"
    STEADY_STATE = "steady"


#: Disk transfer model for scenario 1: cycles charged per byte of binary
#: loaded (a ~2 GHz core waiting on a ~50 MB/s mid-2000s laptop disk
#: stream: 2e9 / 50e6 = 40 cycles per byte).
DISK_CYCLES_PER_BYTE = 40.0

#: Fixed disk access latency in cycles (~8 ms seek+rotate at 2 GHz).
DISK_ACCESS_CYCLES = 16_000_000.0
