"""The startup scenarios of Section 3.1, plus the persistent warm start.

=================  ===========================================================
scenario           initial state
=================  ===========================================================
DISK_STARTUP       binary on disk; memory, caches, code cache all cold
MEMORY_STARTUP     binary in memory; caches and code cache cold (the paper's
                   evaluation scenario: "major context switch")
PERSISTENT_WARM    code cache cold, but a prior run's translations exist in
                   the on-disk translation repository: the loader
                   re-materializes them at boot (deserialize + re-encode +
                   verify, charged per instruction), so no BBT/SBT
                   translation happens — see :mod:`repro.persist`
CODE_CACHE_WARM    translations still in the main-memory code cache, but the
                   cache hierarchy is cold ("short context switch")
STEADY_STATE       everything warm: translated, cached, running full speed
=================  ===========================================================
"""

from __future__ import annotations

import enum


class Scenario(enum.Enum):
    DISK_STARTUP = "disk"
    MEMORY_STARTUP = "memory"
    PERSISTENT_WARM = "persistent-warm"
    CODE_CACHE_WARM = "code-cache"
    STEADY_STATE = "steady"


#: Disk transfer model for scenario 1: cycles charged per byte of binary
#: loaded (a ~2 GHz core waiting on a ~50 MB/s mid-2000s laptop disk
#: stream: 2e9 / 50e6 = 40 cycles per byte).
DISK_CYCLES_PER_BYTE = 40.0

#: Fixed disk access latency in cycles (~8 ms seek+rotate at 2 GHz).
DISK_ACCESS_CYCLES = 16_000_000.0

#: Fixed cost of opening the translation repository at boot in the
#: PERSISTENT_WARM scenario: manifest read + fingerprint checks (~0.5 ms
#: at 2 GHz; the repository pages are assumed resident in the OS page
#: cache, matching MEMORY_STARTUP's binary-in-memory assumption).
PERSIST_OPEN_CYCLES = 1_000_000.0
