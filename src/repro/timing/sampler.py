"""Logarithmic time-series sampling for startup curves.

The paper's Figs. 2/8/11 plot aggregate quantities against execution time
in cycles on a log scale.  :class:`LogSampler` records cumulative
(instructions, activity) values at log-spaced cycle points; because the
simulator advances in piecewise-linear segments (cycles and instructions
grow proportionally within a homogeneous stretch), linear interpolation
at the sample points is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List


@dataclass
class SampledSeries:
    """One sampled startup curve."""

    cycles: List[float] = field(default_factory=list)
    instructions: List[float] = field(default_factory=list)
    #: optional auxiliary channel (e.g. decoder-active cycles)
    aux: List[float] = field(default_factory=list)

    def aggregate_ipc(self) -> List[float]:
        """Total instructions / total cycles at each sample (harmonic-
        mean aggregate IPC, the y-axis of Figs. 2 and 8)."""
        return [instrs / cycles if cycles else 0.0
                for cycles, instrs in zip(self.cycles, self.instructions)]

    def aux_fraction(self) -> List[float]:
        """aux / cycles at each sample (e.g. Fig. 11's activity %)."""
        return [aux / cycles if cycles else 0.0
                for cycles, aux in zip(self.cycles, self.aux)]


class LogSampler:
    """Record (cycles, instructions, aux) at log-spaced cycle points."""

    def __init__(self, first: float = 100.0, per_decade: int = 8,
                 max_cycles: float = 1e10) -> None:
        if first <= 0 or per_decade < 1:
            raise ValueError("invalid sampler parameters")
        self._points: List[float] = []
        value = first
        ratio = 10.0 ** (1.0 / per_decade)
        while value <= max_cycles:
            self._points.append(value)
            value *= ratio
        self._next_index = 0
        self.series = SampledSeries()
        self._cycles = 0.0
        self._instructions = 0.0
        self._aux = 0.0

    @property
    def cycles(self) -> float:
        return self._cycles

    @property
    def instructions(self) -> float:
        return self._instructions

    def advance(self, delta_cycles: float, delta_instructions: float,
                delta_aux: float = 0.0) -> None:
        """Advance time by one piecewise-linear segment."""
        if delta_cycles < 0 or delta_instructions < 0:
            raise ValueError("time cannot run backwards")
        start_cycles = self._cycles
        end_cycles = start_cycles + delta_cycles
        while self._next_index < len(self._points) and \
                self._points[self._next_index] <= end_cycles:
            point = self._points[self._next_index]
            fraction = ((point - start_cycles) / delta_cycles
                        if delta_cycles else 1.0)
            self.series.cycles.append(point)
            self.series.instructions.append(
                self._instructions + fraction * delta_instructions)
            self.series.aux.append(self._aux + fraction * delta_aux)
            self._next_index += 1
        self._cycles = end_cycles
        self._instructions += delta_instructions
        self._aux += delta_aux

    def finish(self) -> SampledSeries:
        """Append the final point and return the series."""
        if not self.series.cycles or \
                self.series.cycles[-1] != self._cycles:
            self.series.cycles.append(self._cycles)
            self.series.instructions.append(self._instructions)
            self.series.aux.append(self._aux)
        return self.series


def interpolate_at(series: SampledSeries, cycles: float) -> float:
    """Instructions completed by ``cycles`` (linear between samples)."""
    points = series.cycles
    values = series.instructions
    if not points or cycles <= 0:
        return 0.0
    if cycles <= points[0]:
        return values[0] * cycles / points[0]
    if cycles >= points[-1]:
        return values[-1]
    low = 0
    high = len(points) - 1
    while high - low > 1:
        mid = (low + high) // 2
        if points[mid] <= cycles:
            low = mid
        else:
            high = mid
    span = points[high] - points[low]
    fraction = (cycles - points[low]) / span if span else 0.0
    return values[low] + fraction * (values[high] - values[low])


def crossover_cycles(first: SampledSeries, second: SampledSeries,
                     start: float = 1000.0) -> float:
    """Breakeven point: the time after which ``first`` has *permanently*
    caught up with ``second`` in completed instructions (the paper's
    definition — "the time at which the co-designed VM has executed the
    same number of instructions").  Both curves briefly track each other
    early on, so the scan finds the LAST grid point where ``first`` is
    still behind and reports the following one.  Returns ``math.inf`` if
    ``first`` is still behind at the end of the sampled range."""
    grid = [cycles for cycles in sorted(set(first.cycles)
                                        | set(second.cycles))
            if cycles >= start]
    if not grid:
        return math.inf
    last_behind = None
    for cycles in grid:
        if interpolate_at(first, cycles) < interpolate_at(second, cycles):
            last_behind = cycles
    if last_behind is None:
        return grid[0]
    if last_behind == grid[-1]:
        return math.inf
    after = [cycles for cycles in grid if cycles > last_behind]
    return after[0]
