"""Per-mode execution cost model (cycles per architected instruction).

The startup simulator attributes every cycle to an execution *mode*.
Steady-state CPIs per mode come from the paper's measured relationships:

* reference superscalar: the application's base IPC;
* SBT (fused macro-op) code: base IPC x the application's steady-state
  VM speedup (+8% suite average);
* BBT code: 82–85% of SBT-code IPC (Section 5.3; we use the per-app
  ``bbt_relative_ipc``);
* x86-mode on VM.fe: same as the reference (same pipeline, same two-level
  decoders — the paper reports "virtually the same startup curve");
* interpretation: a flat cycles-per-instruction cost (Section 1.1's
  10x-100x range; 45 by default).

Translation costs are charged per *translated* architected instruction
(Δ values from Sections 3.2 and 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.workloads.winstone import AppProfile


@dataclass(frozen=True)
class ModeCosts:
    """All per-instruction cycle costs for one (config, app) pair."""

    #: execution CPIs
    ref_cpi: float
    sbt_cpi: float
    bbt_code_cpi: float
    x86_mode_cpi: float
    interp_cpi: float
    #: translation CPIs (per translated architected instruction)
    bbt_translate_cpi: float       # 0 when the config has no BBT
    sbt_translate_cpi: float       # 0 when the config never optimizes
    #: decoder-activity cycles per BBT-translated instruction (VM.be:
    #: the XLTx86 unit is powered for the duration of each HAloop burst,
    #: i.e. all ~20 cycles per instruction; it is gated off otherwise)
    xlt_busy_per_instr: float
    #: warm-start re-materialization cost per persisted instruction
    #: (PERSISTENT_WARM scenario; 0 for non-VM configurations)
    persist_load_cpi: float = 0.0

    def cold_execution_cpi(self, mode: str) -> float:
        """CPI of cold-code execution for an initial-emulation mode."""
        if mode == "bbt":
            return self.bbt_code_cpi
        if mode == "x86-mode":
            return self.x86_mode_cpi
        if mode == "interp":
            return self.interp_cpi
        return self.ref_cpi  # 'native' (reference)


def mode_costs_for(config: MachineConfig, app: AppProfile) -> ModeCosts:
    """Derive the cost table for one configuration on one application."""
    ref_cpi = 1.0 / app.ipc_ref
    sbt_cpi = 1.0 / (app.ipc_ref * app.vm_speedup)
    # the 82-85% BBT-vs-SBT code-quality gap applies to the compute
    # portion of each cycle; memory-stall cycles are unaffected, which
    # dilutes the penalty exactly as Section 5.3 observes
    stall = app.stall_fraction
    bbt_code_cpi = sbt_cpi * (stall + (1.0 - stall)
                              / app.bbt_relative_ipc)
    costs = config.costs

    bbt_translate = costs.bbt_cycles_per_instr or 0.0
    sbt_translate = (costs.sbt_cycles_per_instr or 0.0) \
        if config.is_vm else 0.0
    interp_cpi = costs.interp_cycles_per_instr or 45.0

    xlt_busy = bbt_translate if config.mode == "be" else 0.0

    return ModeCosts(
        ref_cpi=ref_cpi,
        sbt_cpi=sbt_cpi,
        bbt_code_cpi=bbt_code_cpi,
        x86_mode_cpi=ref_cpi,
        interp_cpi=interp_cpi,
        bbt_translate_cpi=bbt_translate,
        sbt_translate_cpi=sbt_translate,
        xlt_busy_per_instr=xlt_busy,
        persist_load_cpi=(costs.persist_load_cycles_per_instr
                          if config.is_vm else 0.0),
    )
