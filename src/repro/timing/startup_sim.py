"""Event-driven startup simulator (Figs. 2, 8, 9, 10, 11).

Simulates one machine configuration running one workload under a startup
scenario, at basic-block-region granularity and full paper scale.  All
startup *events* are discrete and exact:

* **first touch** of a region — cold cache misses for the architected
  code and data, plus (for BBT configurations) the translation cost of
  every instruction in the region and the first fetch of the fresh
  translation;
* **hot-threshold crossing** — the episode is split at the exact
  iteration where the region's execution count reaches the threshold;
  the SBT translation cost is charged and the region switches to
  optimized (fused macro-op) execution;
* homogeneous stretches between events advance in closed form, which is
  exact for the block-level cost model, and are sampled piecewise-
  linearly on the log-cycle grid.

Cycle attribution follows Fig. 10's categories: BBT translation, BBT
emulation, SBT translation, SBT emulation, interpretation, x86-mode
execution, and cold-miss stall.  Decoder activity (Fig. 11) rides the
sampler's auxiliary channel.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import MachineConfig
from repro.obs.ledger import CycleLedger
from repro.timing.caches import ColdFootprintModel
from repro.timing.pipeline import ModeCosts, mode_costs_for
from repro.timing.sampler import LogSampler, SampledSeries
from repro.timing.scenarios import (
    DISK_ACCESS_CYCLES,
    DISK_CYCLES_PER_BYTE,
    PERSIST_OPEN_CYCLES,
    Scenario,
)
from repro.workloads.trace import Region, Workload

log = logging.getLogger("repro.timing")

#: Synthetic placement of translated code (the concealed code cache).
_CODE_CACHE_SHADOW_BASE = 0x2000_0000


@dataclass
class StartupResult:
    """Outcome of one startup simulation."""

    config_name: str
    app_name: str
    scenario: Scenario
    series: SampledSeries
    total_cycles: float = 0.0
    total_instrs: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    m_bbt_instrs: int = 0
    m_sbt_instrs: int = 0
    promotions: int = 0
    sbt_instrs_executed: float = 0.0
    cold_miss_cycles: float = 0.0
    #: static instructions re-materialized from the persistent
    #: translation repository at boot (PERSISTENT_WARM scenario)
    persist_loaded_instrs: int = 0
    #: cycle-attribution ledger: same totals as ``breakdown`` plus the
    #: per-interval phase timeline and per-region translation profiles
    #: (see :mod:`repro.obs.ledger`)
    ledger: Optional[CycleLedger] = None

    @property
    def conserved(self) -> bool:
        """Every simulated cycle attributed to exactly one phase."""
        return self.ledger is not None and self.ledger.conserved() and \
            abs(self.ledger.total - self.total_cycles) <= \
            1e-6 * max(self.total_cycles, 1.0)

    @property
    def aggregate_ipc(self) -> float:
        return self.total_instrs / self.total_cycles \
            if self.total_cycles else 0.0

    @property
    def hotspot_coverage(self) -> float:
        """Fraction of dynamic instructions executed from SBT code."""
        return self.sbt_instrs_executed / self.total_instrs \
            if self.total_instrs else 0.0

    def breakdown_fractions(self) -> Dict[str, float]:
        total = sum(self.breakdown.values())
        if not total:
            return {}
        return {key: value / total
                for key, value in sorted(self.breakdown.items())}


class _RegionState:
    __slots__ = ("mode", "count", "touched")

    def __init__(self, mode: str = "new", count: int = 0) -> None:
        self.mode = mode      # 'new' | 'cold' | 'sbt'
        self.count = count
        self.touched = False  # cold misses charged yet?


class StartupSimulator:
    """Simulate one (configuration, workload, scenario) combination."""

    def __init__(self, config: MachineConfig, workload: Workload,
                 scenario: Scenario = Scenario.MEMORY_STARTUP,
                 samples_per_decade: int = 8) -> None:
        self.config = config
        self.workload = workload
        self.app = workload.app
        self.scenario = scenario
        self.costs: ModeCosts = mode_costs_for(config, self.app)
        self.sampler = LogSampler(first=100.0,
                                  per_decade=samples_per_decade)
        self.footprint = ColdFootprintModel()
        self._regions = workload.regions
        self._state = [self._initial_region_state(region)
                       for region in self._regions]
        self._mem_line_charge = config.memory_latency + config.l2.latency
        self._l2_line_charge = config.l2.latency
        self.ledger = CycleLedger()
        self.result = StartupResult(config_name=config.name,
                                    app_name=self.app.name,
                                    scenario=scenario,
                                    series=self.sampler.series,
                                    ledger=self.ledger)

    # -- initial state per scenario ------------------------------------------

    def _initial_region_state(self, region: Region) -> _RegionState:
        if self.scenario in (Scenario.PERSISTENT_WARM,
                             Scenario.CODE_CACHE_WARM,
                             Scenario.STEADY_STATE):
            # translations already exist from the previous run (still in
            # memory, or re-materialized from the repository at boot):
            # hot regions are in SBT form, the rest in BBT/cold form
            if self.config.is_vm and \
                    region.total_iterations >= self.config.hot_threshold:
                return _RegionState("sbt", self.config.hot_threshold)
            return _RegionState("cold", 0)
        return _RegionState("new", 0)

    @property
    def _charges_cold_misses(self) -> bool:
        return self.scenario is not Scenario.STEADY_STATE

    @property
    def _translates(self) -> bool:
        return self.scenario in (Scenario.MEMORY_STARTUP,
                                 Scenario.DISK_STARTUP)

    # -- main loop --------------------------------------------------------------

    def run(self) -> StartupResult:
        if self.scenario is Scenario.DISK_STARTUP:
            disk_cycles = DISK_ACCESS_CYCLES + \
                DISK_CYCLES_PER_BYTE * self.app.x86_bytes
            self._advance(disk_cycles, 0.0, "disk_load")
        if self.scenario is Scenario.PERSISTENT_WARM and self.config.is_vm:
            self._load_persisted_translations()

        threshold = self.config.hot_threshold
        optimizes = self.config.is_vm

        for episode in self.workload.episodes:
            region = self._regions[episode.region_index]
            state = self._state[region.index]
            iterations = episode.iterations

            if not state.touched:
                self._charge_cold_misses(region, state)
                state.touched = True
            if state.mode == "new":
                self._translate_bbt(region)
                state.mode = "cold"

            if optimizes and state.mode == "cold" and \
                    state.count < threshold <= state.count + iterations:
                split = threshold - state.count
                self._execute(region, split, "cold")
                state.count += split
                iterations -= split
                self._promote(region)
                state.mode = "sbt"

            if iterations > 0:
                self._execute(region, iterations, state.mode)
                state.count += iterations

        series = self.sampler.finish()
        self.result.series = series
        self.result.total_cycles = self.sampler.cycles
        self.result.total_instrs = self.sampler.instructions
        log.debug("%s/%s (%s): %.0f cycles, %.0f instrs, "
                  "%d promotion(s), ledger conserved=%s",
                  self.config.name, self.app.name, self.scenario.name,
                  self.sampler.cycles, self.sampler.instructions,
                  self.result.promotions, self.result.conserved)
        return self.result

    # -- events -------------------------------------------------------------------

    def _load_persisted_translations(self) -> None:
        """Boot-time re-materialization from the translation repository.

        Every region the previous run translated is deserialized,
        re-encoded at its new code-cache address and screened by the
        verifier — a linear per-instruction charge on top of the fixed
        repository-open cost (see :mod:`repro.persist.loader`).
        """
        threshold = self.config.hot_threshold
        instrs = sum(region.instr_count for region in self._regions
                     if self.config.uses_bbt
                     or region.total_iterations >= threshold)
        self.result.persist_loaded_instrs = instrs
        cycles = PERSIST_OPEN_CYCLES + instrs * self.costs.persist_load_cpi
        self._advance(cycles, 0.0, "persist_load")

    def _charge_cold_misses(self, region: Region,
                            state: _RegionState) -> None:
        """Scenario-dependent cold misses at a region's first execution."""
        if not self._charges_cold_misses:
            return
        instrs = region.instr_count
        cold_cycles = 0.0
        if self.config.uses_bbt and \
                self.scenario in (Scenario.CODE_CACHE_WARM,
                                  Scenario.PERSISTENT_WARM):
            # translations survived in memory; only they are fetched
            cold_cycles += self.footprint.touch(
                self._shadow_addr(region), self._uop_bytes(region),
                self._mem_line_charge)
        else:
            cold_cycles += self.footprint.touch(
                region.addr, region.byte_count, self._mem_line_charge)
        # data-side cold misses during the first executions
        cold_cycles += (instrs * self.app.data_cold_misses_per_instr
                        * self._mem_line_charge)
        if cold_cycles:
            self.result.cold_miss_cycles += cold_cycles
            # configurations whose x86 decoders are powered during cold
            # execution keep them powered through the miss stalls too
            aux = cold_cycles if self.config.mode in ("ref", "fe") else 0.0
            self._advance(cold_cycles, 0.0, "cold_miss", aux=aux)

    def _translate_bbt(self, region: Region) -> None:
        if not (self.config.uses_bbt and self._translates):
            return
        instrs = region.instr_count
        translate_cycles = instrs * self.costs.bbt_translate_cpi
        busy = instrs * self.costs.xlt_busy_per_instr
        self.result.m_bbt_instrs += instrs
        self._advance(translate_cycles, 0.0, "bbt_translation", aux=busy,
                      block=region.addr)
        if self._charges_cold_misses:
            fill = self.footprint.touch(self._shadow_addr(region),
                                        self._uop_bytes(region),
                                        self._l2_line_charge)
            self.result.cold_miss_cycles += fill
            self._advance(fill, 0.0, "cold_miss", block=region.addr)

    def _promote(self, region: Region) -> None:
        instrs = region.instr_count
        self.result.m_sbt_instrs += instrs
        self.result.promotions += 1
        if not self._translates:
            return  # pre-translated scenarios: promotion is free
        cycles = instrs * self.costs.sbt_translate_cpi
        self._advance(cycles, 0.0, "sbt_translation", block=region.addr)
        if self._charges_cold_misses:
            fill = self.footprint.touch(
                self._shadow_addr(region) + 0x0100_0000,
                self._uop_bytes(region), self._l2_line_charge)
            self.result.cold_miss_cycles += fill
            self._advance(fill, 0.0, "cold_miss", block=region.addr)

    def _execute(self, region: Region, iterations: int, mode: str) -> None:
        instrs = float(region.instr_count) * iterations
        if mode == "sbt":
            cycles = instrs * self.costs.sbt_cpi
            category = "sbt_emulation"
            aux = 0.0
            self.result.sbt_instrs_executed += instrs
        else:
            emulation = self.config.initial_emulation
            cycles = instrs * self.costs.cold_execution_cpi(emulation)
            if emulation == "bbt":
                category = "bbt_emulation"
                aux = 0.0
            elif emulation == "x86-mode":
                category = "x86_mode"
                aux = cycles          # frontend x86 decoders active
            elif emulation == "interp":
                category = "interp"
                aux = 0.0
            else:
                category = "execution"
                aux = cycles          # conventional decoders always on
        self._advance(cycles, instrs, category, aux=aux,
                      block=region.addr)

    # -- helpers -----------------------------------------------------------------

    def _shadow_addr(self, region: Region) -> int:
        return _CODE_CACHE_SHADOW_BASE + \
            (region.addr - self.workload.regions[0].blocks[0].addr)

    def _uop_bytes(self, region: Region) -> int:
        scale = self.app.uop_bytes_per_instr / self.app.bytes_per_instr
        return max(int(region.byte_count * scale), 1)

    def _advance(self, cycles: float, instrs: float, category: str,
                 aux: float = 0.0, block: Optional[int] = None) -> None:
        if cycles <= 0 and instrs <= 0:
            return
        breakdown = self.result.breakdown
        breakdown[category] = breakdown.get(category, 0.0) + cycles
        # the ledger mirrors the breakdown totals and adds the
        # per-interval phase timeline + per-region profiles; its clock
        # equals sampler.cycles, so attribution is conservative
        self.ledger.charge(category, cycles, block=block)
        self.sampler.advance(cycles, instrs, aux)


def simulate_startup(config: MachineConfig, workload: Workload,
                     scenario: Scenario = Scenario.MEMORY_STARTUP,
                     samples_per_decade: int = 8) -> StartupResult:
    """Convenience wrapper: build, run, return."""
    return StartupSimulator(config, workload, scenario,
                            samples_per_decade).run()
