"""Timing substrate: cycle accounting for the startup study.

The functional layer (:mod:`repro.core`) establishes *what* each machine
configuration executes; this package models *how long* it takes, at basic
block granularity, at the paper's full scale (500M-instruction traces over
~150K-instruction working sets).  The simulator is event-driven: discrete
events (first-touch translation, threshold crossing, cold cache misses,
mode transitions) are simulated exactly, and the homogeneous stretches of
loop iterations between events are advanced in closed form — which is
exact under the block-level cost model.
"""

from repro.timing.caches import ColdFootprintModel, SetAssociativeCache
from repro.timing.pipeline import ModeCosts, mode_costs_for
from repro.timing.sampler import LogSampler, SampledSeries
from repro.timing.startup_sim import StartupResult, StartupSimulator, \
    simulate_startup
from repro.timing.scenarios import Scenario

__all__ = [
    "ColdFootprintModel", "LogSampler", "ModeCosts", "SampledSeries",
    "Scenario", "SetAssociativeCache", "StartupResult", "StartupSimulator",
    "mode_costs_for", "simulate_startup",
]
