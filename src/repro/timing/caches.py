"""Cache models for the timing layer.

Two models, used at two fidelities:

* :class:`SetAssociativeCache` — a faithful set-associative LRU cache,
  exercised by unit tests and by the detailed small-scale examples.
* :class:`ColdFootprintModel` — the memory-startup abstraction the
  event-driven simulator uses at 500M-instruction scale.  The paper's
  scenario 2 starts with *empty caches*; the dominant cache effect that
  differs between configurations is the pattern of cold (first-touch)
  misses.  Steady-state miss behaviour for a given working set is common
  across configurations and is folded into each application's base CPI
  (see DESIGN.md §6.3), exactly as the paper's own §3.1 argues when it
  calls scenario-3 differences "second order".
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.config import CacheConfig


class SetAssociativeCache:
    """Set-associative LRU cache with optional next level."""

    def __init__(self, config: CacheConfig, name: str = "cache",
                 next_level: "Optional[SetAssociativeCache]" = None,
                 memory_latency: int = 0) -> None:
        self.config = config
        self.name = name
        self.next_level = next_level
        self.memory_latency = memory_latency
        self._sets: Dict[int, "dict[int, int]"] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> "tuple[int, int]":
        line = addr // self.config.line_size
        return line % self.config.sets, line

    def access(self, addr: int) -> int:
        """Access one address; returns total latency in cycles."""
        self._clock += 1
        set_index, tag = self._locate(addr)
        ways = self._sets.setdefault(set_index, {})
        if tag in ways:
            ways[tag] = self._clock
            self.hits += 1
            return self.config.latency
        self.misses += 1
        if len(ways) >= self.config.assoc:
            victim = min(ways, key=ways.get)
            del ways[victim]
        ways[tag] = self._clock
        if self.next_level is not None:
            return self.config.latency + self.next_level.access(addr)
        return self.config.latency + self.memory_latency

    def access_range(self, addr: int, size: int) -> int:
        """Access every line in ``[addr, addr+size)``."""
        cycles = 0
        line_size = self.config.line_size
        first = addr // line_size
        last = (addr + max(size, 1) - 1) // line_size
        for line in range(first, last + 1):
            cycles += self.access(line * line_size)
        return cycles

    def contains(self, addr: int) -> bool:
        set_index, tag = self._locate(addr)
        return tag in self._sets.get(set_index, {})

    def invalidate_all(self) -> None:
        self._sets.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class ColdFootprintModel:
    """First-touch (cold miss) accounting at 64-byte line granularity.

    ``touch(addr, size, charge)`` returns the cycles to charge for lines
    in the range never seen before, at ``charge`` cycles per line, and
    records them as warm.  Distinct charge levels express where a line's
    backing data lives: architected code comes from main memory
    (~168 cycles), freshly written translations are L2-resident
    (~12 cycles to refill L1I).
    """

    LINE_SIZE = 64

    def __init__(self) -> None:
        self._warm: Set[int] = set()
        self.cold_lines = 0
        self.cold_cycles = 0

    def touch(self, addr: int, size: int, charge: int) -> int:
        first = addr // self.LINE_SIZE
        last = (addr + max(size, 1) - 1) // self.LINE_SIZE
        cycles = 0
        for line in range(first, last + 1):
            if line not in self._warm:
                self._warm.add(line)
                cycles += charge
                self.cold_lines += 1
        self.cold_cycles += cycles
        return cycles

    def is_warm(self, addr: int) -> bool:
        return addr // self.LINE_SIZE in self._warm

    def scrub(self) -> None:
        """Forget warmth (context switch / scenario boundary)."""
        self._warm.clear()
