"""Violation records and machine-readable verifier reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Violation:
    """One invariant violation, located down to the micro-op."""

    rule_id: str
    message: str
    index: Optional[int] = None      # micro-op index within the stream
    offset: Optional[int] = None     # byte offset within the translation
    x86_addr: Optional[int] = None   # architected origin of the micro-op
    entry: Optional[int] = None      # architected entry of the translation
    kind: Optional[str] = None       # 'bbt' | 'sbt' | None (bare stream)
    context: Tuple[str, ...] = ()    # surrounding disassembly

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "index": self.index,
            "offset": self.offset,
            "x86_addr": self.x86_addr,
            "entry": self.entry,
            "kind": self.kind,
            "context": list(self.context),
        }

    def format(self) -> str:
        where = []
        if self.entry is not None:
            where.append(f"{self.kind or 'translation'}@{self.entry:#x}")
        if self.index is not None:
            where.append(f"uop {self.index}")
        if self.offset is not None:
            where.append(f"+{self.offset:#x}")
        if self.x86_addr is not None:
            where.append(f"x86 {self.x86_addr:#x}")
        location = " ".join(where) or "stream"
        lines = [f"[{self.rule_id}] {location}: {self.message}"]
        lines.extend(f"    {line}" for line in self.context)
        return "\n".join(lines)


@dataclass
class VerifierReport:
    """Aggregated result of one or more verification passes."""

    violations: List[Violation] = field(default_factory=list)
    translations_checked: int = 0
    uops_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "VerifierReport") -> "VerifierReport":
        self.violations.extend(other.violations)
        self.translations_checked += other.translations_checked
        self.uops_checked += other.uops_checked
        seen = dict.fromkeys(self.rules_run + other.rules_run)
        self.rules_run = tuple(seen)
        return self

    def by_rule(self) -> dict:
        counts: dict = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "translations_checked": self.translations_checked,
            "uops_checked": self.uops_checked,
            "rules_run": list(self.rules_run),
            "violation_counts": self.by_rule(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def format(self) -> str:
        head = (f"verifier: {self.translations_checked} translation(s), "
                f"{self.uops_checked} micro-op(s), "
                f"{len(self.violations)} violation(s)")
        if self.ok:
            return head
        parts = [head]
        parts.extend(violation.format() for violation in self.violations)
        return "\n".join(parts)
