"""Control-flow structure of an emitted micro-op stream.

Two partitions of the same stream matter to the rule-pack:

* **CFG basic blocks** — split at control transfers (``BRANCH_OPS``) and
  at branch-target leaders.  The dataflow engine runs over these.
* **Fusion regions** — maximal runs of micro-ops containing no control
  transfer and no VMM barrier (``BARRIER_OPS``).  The fusion legality
  rules are scoped to these, mirroring the paper's "nothing moves across
  a region boundary".

Branch displacement semantics match the native machine
(:mod:`repro.isa.fusible.machine`): ``target = offset_after_uop + imm``
for BC/JMP/JCSRC/JCSRT, in encoded bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import BARRIER_OPS, BRANCH_OPS, UOp

#: Micro-ops whose imm is a pc-relative byte displacement.
RELATIVE_CONTROL_OPS = frozenset({UOp.BC, UOp.JMP, UOp.JCSRC, UOp.JCSRT})

#: Micro-ops with no successor inside the stream.
TERMINAL_OPS = frozenset({UOp.JR, UOp.VMEXIT, UOp.HALT})

#: Fusion-region delimiters (control transfers + VMM barriers).
REGION_BOUNDARY_OPS = BRANCH_OPS | BARRIER_OPS


@dataclass(frozen=True)
class Located:
    """A micro-op pinned to its position in the stream."""

    index: int       # micro-op index
    offset: int      # byte offset of the first parcel
    uop: MicroOp


def locate(uops: Sequence[MicroOp]) -> List[Located]:
    out: List[Located] = []
    offset = 0
    for index, uop in enumerate(uops):
        out.append(Located(index=index, offset=offset, uop=uop))
        offset += uop.length
    return out


def branch_target_offset(loc: Located) -> Optional[int]:
    """Byte offset a relative control transfer lands on."""
    if loc.uop.op in RELATIVE_CONTROL_OPS:
        return loc.offset + loc.uop.length + loc.uop.imm
    return None


@dataclass
class BasicBlock:
    bid: int
    locs: List[Located]
    succs: List[int] = field(default_factory=list)

    @property
    def first(self) -> Located:
        return self.locs[0]

    @property
    def last(self) -> Located:
        return self.locs[-1]


@dataclass
class CFG:
    locs: List[Located]
    blocks: List[BasicBlock]
    block_of: Dict[int, int]          # uop index -> block id
    bad_targets: List[Located]        # control ops with off-stream targets
    total_bytes: int = 0

    @property
    def entry(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None


def build_cfg(uops: Sequence[MicroOp]) -> CFG:
    """Partition a stream into basic blocks and wire successor edges."""
    locs = locate(uops)
    total = sum(loc.uop.length for loc in locs)
    index_at_offset = {loc.offset: loc.index for loc in locs}

    leaders = {0} if locs else set()
    bad_targets: List[Located] = []
    for loc in locs:
        target = branch_target_offset(loc)
        if target is not None:
            if target in index_at_offset:
                leaders.add(index_at_offset[target])
            else:
                bad_targets.append(loc)
        if loc.uop.op in BRANCH_OPS and loc.index + 1 < len(locs):
            leaders.add(loc.index + 1)

    blocks: List[BasicBlock] = []
    block_of: Dict[int, int] = {}
    current: List[Located] = []
    for loc in locs:
        if loc.index in leaders and current:
            blocks.append(BasicBlock(bid=len(blocks), locs=current))
            current = []
        current.append(loc)
        block_of[loc.index] = len(blocks)
    if current:
        blocks.append(BasicBlock(bid=len(blocks), locs=current))

    for block in blocks:
        last = block.last
        op = last.uop.op
        target = branch_target_offset(last)
        if target is not None and target in index_at_offset:
            block.succs.append(block_of[index_at_offset[target]])
        if op in TERMINAL_OPS or op is UOp.JMP:
            continue
        # everything else (BC/JCSRx fallthrough, VMCALL resume, plain
        # fall-into-leader) continues to the next micro-op
        if last.index + 1 < len(locs):
            block.succs.append(block_of[last.index + 1])

    return CFG(locs=locs, blocks=blocks, block_of=block_of,
               bad_targets=bad_targets, total_bytes=total)


def fusion_regions(locs: Sequence[Located]) -> List[Tuple[int, int]]:
    """Maximal ``[start, end)`` index ranges free of region boundaries.

    A region-ending BC may still carry a fused compare-branch tail; the
    fusion rules handle that case explicitly.
    """
    regions: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for loc in locs:
        if loc.uop.op in REGION_BOUNDARY_OPS:
            if start is not None:
                regions.append((start, loc.index))
                start = None
        elif start is None:
            start = loc.index
    if start is not None:
        regions.append((start, len(locs)))
    return regions


def fused_pairs(locs: Sequence[Located]) -> List[Tuple[Located, Optional[Located]]]:
    """All (head, tail) pairs; tail is None for a dangling trailing head."""
    pairs: List[Tuple[Located, Optional[Located]]] = []
    for loc in locs:
        if loc.uop.fused:
            tail = locs[loc.index + 1] if loc.index + 1 < len(locs) else None
            pairs.append((loc, tail))
    return pairs
