"""The verifier rule-pack.

Each rule re-derives one invariant of the co-designed VM's translation
contract (Hu & Smith) *independently of the emitters* — none of these
checks call into :mod:`repro.translator`.  Rule IDs are stable and
documented in ``docs/verifier.md``:

==========  ===========================================================
FUS001      fused head must be a single-cycle ALU producing a value
FUS002      fused tail must exist, be unfused, and consume the head
FUS003      a fused pair carries at most three distinct source registers
FUS004      no fused pair spans a region boundary
FUS005      a hoisted tail must not have crossed a conflicting micro-op
CTL001      relative control transfers land on micro-op boundaries
STB001      direct exit stubs have the fixed 12-byte patchable shape
STB002      VMEXIT hands the continuation to the VMM in R29
SCR001      VMM registers are defined before every use (scratch hygiene)
PRS001      architected flags are intact at every VMM handoff
ENC001      every emitted micro-op is encodable
ENC002      encode -> decode is the identity on emitted micro-ops
CCH001      cache memory matches the recorded micro-ops (mod patches)
CHN001      chained stubs jump to a live translation entry
CHN002      unpatched stubs still leave through VMEXIT
SID001      every VMCALL has a side-table entry for precise state
==========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple

from repro.isa.fusible.encoding import (
    UopDecodeError,
    UopEncodeError,
    decode_uop,
    encode_uop,
)
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import (
    FUSIBLE_HEAD_OPS,
    FUSIBLE_TAIL_OPS,
    UOp,
    VMService,
)
from repro.isa.fusible.registers import R_EXIT_TARGET, reg_name
from repro.verify.cfg import (
    REGION_BOUNDARY_OPS,
    Located,
    build_cfg,
    fused_pairs,
)
from repro.verify.dataflow import (
    VMM_REGS,
    conflicts,
    definitely_defined,
    flag_provenance,
    regs_read,
)
from repro.verify.report import Violation

#: Read-port budget of the collapsed 3-1 macro-op ALU (paper, Sec. 2).
PAIR_SOURCE_LIMIT = 3

#: How far past a pair the hoist checker scans (mirrors the pairing
#: window; a tail is never hoisted further than the window).
HOIST_SCAN = 8

#: Encoded size of a patchable direct exit stub (LUI + ORI + VMEXIT).
STUB_BYTES = 12


class VerifyContext:
    """Everything a rule may consult, with lazily built analyses."""

    def __init__(self, uops, translation=None, memory=None,
                 directory=None) -> None:
        self.uops: List[MicroOp] = list(uops)
        self.translation = translation
        self.memory = memory
        self.directory = directory
        self.cfg = build_cfg(self.uops)
        self.locs = self.cfg.locs
        self._defined = None
        self._flags = None

    @property
    def defined(self):
        if self._defined is None:
            self._defined = definitely_defined(self.cfg)
        return self._defined

    @property
    def flags(self):
        if self._flags is None:
            self._flags = flag_provenance(self.cfg)
        return self._flags

    def available(self) -> FrozenSet[str]:
        have = set()
        if self.translation is not None:
            have.add("translation")
        if self.memory is not None:
            have.add("memory")
        if self.directory is not None:
            have.add("directory")
        return frozenset(have)


@dataclass(frozen=True)
class RuleSpec:
    rule_id: str
    title: str
    requires: FrozenSet[str]
    check: Callable[[VerifyContext], Iterator[Violation]]


RULES: List[RuleSpec] = []


def rule(rule_id: str, title: str, requires: Tuple[str, ...] = ()):
    def decorate(func):
        RULES.append(RuleSpec(rule_id=rule_id, title=title,
                              requires=frozenset(requires), check=func))
        return func
    return decorate


def rule_ids() -> List[str]:
    return [spec.rule_id for spec in RULES]


def _v(rule_id: str, message: str, loc: Optional[Located] = None,
       **extra) -> Violation:
    if loc is not None:
        extra.setdefault("index", loc.index)
        extra.setdefault("offset", loc.offset)
        extra.setdefault("x86_addr", loc.uop.x86_addr)
    return Violation(rule_id=rule_id, message=message, **extra)


# -- fusion legality -----------------------------------------------------------


@rule("FUS001", "fused head must be a single-cycle ALU producing a value")
def _check_fus001(ctx: VerifyContext) -> Iterator[Violation]:
    for head, tail in fused_pairs(ctx.locs):
        uop = head.uop
        if uop.op not in FUSIBLE_HEAD_OPS:
            yield _v("FUS001", f"{uop.op.value} cannot head a fused pair",
                     head)
            continue
        if tail is not None and tail.uop.op is UOp.BC:
            if not uop.writes_flags:
                yield _v("FUS001", "compare-branch head does not write "
                                   "the flags the BC consumes", head)
        elif uop.dest() is None:
            yield _v("FUS001", "fused head produces no register value",
                     head)


@rule("FUS002", "fused tail must exist, be unfused, and consume the head")
def _check_fus002(ctx: VerifyContext) -> Iterator[Violation]:
    for head, tail in fused_pairs(ctx.locs):
        if tail is None:
            yield _v("FUS002", "fused head has no successor micro-op",
                     head)
            continue
        if tail.uop.fused:
            yield _v("FUS002", "pairs overlap: the tail is itself marked "
                               "as a fused head", head)
            continue
        if tail.uop.op is UOp.BC:
            continue  # flag dependence; the head side is FUS001's job
        if tail.uop.op not in FUSIBLE_TAIL_OPS:
            yield _v("FUS002",
                     f"{tail.uop.op.value} cannot tail a fused pair", tail)
            continue
        head_dest = head.uop.dest()
        if head_dest is None or head_dest not in tail.uop.sources():
            yield _v("FUS002", "tail does not consume the head's result",
                     tail)


@rule("FUS003", "a fused pair carries at most three distinct sources")
def _check_fus003(ctx: VerifyContext) -> Iterator[Violation]:
    for head, tail in fused_pairs(ctx.locs):
        if tail is None:
            continue
        head_dest = head.uop.dest()
        sources = set(head.uop.sources())
        sources.update(reg for reg in tail.uop.sources()
                       if reg != head_dest)
        if len(sources) > PAIR_SOURCE_LIMIT:
            names = ", ".join(reg_name(reg) for reg in sorted(sources))
            yield _v("FUS003",
                     f"pair reads {len(sources)} registers ({names}); "
                     f"the collapsed ALU has {PAIR_SOURCE_LIMIT} read "
                     f"ports", head)


@rule("FUS004", "no fused pair spans a region boundary")
def _check_fus004(ctx: VerifyContext) -> Iterator[Violation]:
    for head, tail in fused_pairs(ctx.locs):
        if head.uop.op in REGION_BOUNDARY_OPS:
            yield _v("FUS004", f"region boundary {head.uop.op.value} "
                               f"marked as a fused head", head)
        if tail is not None and tail.uop.op in REGION_BOUNDARY_OPS \
                and tail.uop.op is not UOp.BC:
            yield _v("FUS004", f"pair crosses a region boundary into "
                               f"{tail.uop.op.value}", tail)


@rule("FUS005", "a hoisted tail must not cross a conflicting micro-op")
def _check_fus005(ctx: VerifyContext) -> Iterator[Violation]:
    locs = ctx.locs
    for head, tail in fused_pairs(ctx.locs):
        if tail is None or tail.uop.op is UOp.BC:
            continue
        head_addr = head.uop.x86_addr
        tail_addr = tail.uop.x86_addr
        if head_addr is None or tail_addr is None \
                or tail_addr <= head_addr:
            continue  # no detectable hoist
        # Micro-ops now *after* the pair whose architected origin
        # precedes the tail's were jumped over when the tail was hoisted
        # up behind its head.  The scan stays conservative: it stops at
        # region boundaries, at any non-monotonic architected address
        # (straightened traces may bend backwards), and at the pairing
        # window bound.
        previous = head_addr
        for loc in locs[tail.index + 1:tail.index + 1 + HOIST_SCAN]:
            uop = loc.uop
            if uop.op in REGION_BOUNDARY_OPS:
                break
            addr = uop.x86_addr
            if addr is None or addr < previous or addr >= tail_addr:
                break
            previous = addr
            if conflicts(uop, tail.uop):
                yield _v("FUS005",
                         f"tail was hoisted across a conflicting "
                         f"{uop.op.value} at x86 {addr:#x}", tail)
                break


# -- control transfers and exit stubs -----------------------------------------


@rule("CTL001", "control transfers must land on micro-op boundaries")
def _check_ctl001(ctx: VerifyContext) -> Iterator[Violation]:
    for loc in ctx.cfg.bad_targets:
        target = loc.offset + loc.uop.length + loc.uop.imm
        yield _v("CTL001",
                 f"{loc.uop.op.value} displacement {loc.uop.imm:+d} lands "
                 f"at byte {target}, not on a micro-op boundary within "
                 f"the translation", loc)


def _stub_shape_errors(uops: List[MicroOp], target: int) -> List[str]:
    """Why three micro-ops are not a canonical direct exit stub."""
    errors: List[str] = []
    if len(uops) < 3:
        return [f"stub truncated: {len(uops)} of 3 micro-ops present"]
    lui, ori, vmexit = uops[0], uops[1], uops[2]
    if lui.op is not UOp.LUI or lui.rd != R_EXIT_TARGET:
        errors.append(f"first micro-op is '{lui}', expected LUI into "
                      f"{reg_name(R_EXIT_TARGET)}")
    elif lui.imm != (target >> 13) & 0x7FFFF:
        errors.append(f"LUI imm {lui.imm:#x} does not rebuild target "
                      f"{target:#x}")
    if ori.op is not UOp.ORI or ori.rd != R_EXIT_TARGET \
            or ori.rs1 != R_EXIT_TARGET:
        errors.append(f"second micro-op is '{ori}', expected ORI "
                      f"{reg_name(R_EXIT_TARGET)} into itself")
    elif ori.imm != target & 0x1FFF:
        errors.append(f"ORI imm {ori.imm:#x} does not rebuild target "
                      f"{target:#x}")
    if vmexit.op is not UOp.VMEXIT or vmexit.rs1 != R_EXIT_TARGET:
        errors.append(f"third micro-op is '{vmexit}', expected VMEXIT "
                      f"via {reg_name(R_EXIT_TARGET)}")
    return errors


@rule("STB001", "direct exit stubs have the fixed 12-byte patchable "
                "shape", requires=("translation",))
def _check_stb001(ctx: VerifyContext) -> Iterator[Violation]:
    translation = ctx.translation
    loc_at_offset = {loc.offset: loc for loc in ctx.locs}
    for stub in translation.exits:
        offset = stub.stub_addr - translation.native_addr
        loc = loc_at_offset.get(offset)
        if loc is None:
            yield _v("STB001", f"exit stub at +{offset:#x} does not sit "
                               f"on a micro-op boundary",
                     offset=offset)
            continue
        if stub.x86_target is None:
            if loc.uop.op is not UOp.VMEXIT:
                yield _v("STB001", f"indirect exit records '{loc.uop}', "
                                   f"expected VMEXIT", loc)
            continue
        window = [entry.uop for entry in
                  ctx.locs[loc.index:loc.index + 3]]
        for error in _stub_shape_errors(window, stub.x86_target):
            yield _v("STB001", error, loc)


@rule("STB002", "VMEXIT hands the continuation to the VMM in R29")
def _check_stb002(ctx: VerifyContext) -> Iterator[Violation]:
    for loc in ctx.locs:
        if loc.uop.op is UOp.VMEXIT and loc.uop.rs1 != R_EXIT_TARGET:
            yield _v("STB002",
                     f"VMEXIT reads {reg_name(loc.uop.rs1)}; the "
                     f"dispatcher expects the continuation in "
                     f"{reg_name(R_EXIT_TARGET)}", loc)


# -- dataflow hygiene ----------------------------------------------------------


@rule("SCR001", "VMM registers are defined before every use")
def _check_scr001(ctx: VerifyContext) -> Iterator[Violation]:
    defined = ctx.defined
    for loc in ctx.locs:
        state = defined[loc.index]
        if state is None:
            continue  # unreachable from entry
        for reg in sorted(regs_read(loc.uop)):
            if reg in VMM_REGS and reg not in state:
                yield _v("SCR001",
                         f"reads VMM register {reg_name(reg)} which is "
                         f"not defined on every path from entry", loc)


@rule("PRS001", "architected flags are intact at every VMM handoff")
def _check_prs001(ctx: VerifyContext) -> Iterator[Violation]:
    flags = ctx.flags
    for loc in ctx.locs:
        uop = loc.uop
        handoff = uop.op is UOp.VMEXIT or (
            uop.op is UOp.VMCALL and uop.imm != int(VMService.PROFILE))
        if not handoff:
            continue
        state = flags[loc.index]
        if state is None:
            continue
        if not state[0]:
            yield _v("PRS001",
                     f"{uop.op.value} reached with clobbered architected "
                     f"flags (unbalanced RDFLG/WRFLG save window)", loc)


# -- encoding ------------------------------------------------------------------


@rule("ENC001", "every emitted micro-op is encodable")
def _check_enc001(ctx: VerifyContext) -> Iterator[Violation]:
    for loc in ctx.locs:
        try:
            encode_uop(loc.uop)
        except UopEncodeError as error:
            yield _v("ENC001", f"'{loc.uop}' does not encode: {error}",
                     loc)


@rule("ENC002", "encode -> decode is the identity on emitted micro-ops")
def _check_enc002(ctx: VerifyContext) -> Iterator[Violation]:
    for loc in ctx.locs:
        try:
            data = encode_uop(loc.uop)
        except UopEncodeError:
            continue  # ENC001's finding
        decoded = decode_uop(data)
        expected = replace(loc.uop, x86_addr=None)
        if decoded != expected:
            yield _v("ENC002",
                     f"round trip loses state: '{loc.uop}' decodes back "
                     f"as '{decoded}'", loc)


# -- code cache and chaining ---------------------------------------------------


def _patched_ranges(ctx: VerifyContext) -> List[Tuple[int, int]]:
    """Byte ranges chaining/redirection legitimately rewrote in memory."""
    translation = ctx.translation
    ranges: List[Tuple[int, int]] = []
    for stub in translation.exits:
        if stub.chained_to is not None:
            offset = stub.stub_addr - translation.native_addr
            ranges.append((offset, offset + 4))
    directory = ctx.directory
    if directory is not None and \
            directory.is_redirected(translation.native_addr):
        ranges.append((0, 4))
    return ranges


@rule("CCH001", "cache memory matches the recorded micro-ops",
      requires=("translation", "memory"))
def _check_cch001(ctx: VerifyContext) -> Iterator[Violation]:
    translation = ctx.translation
    if translation.native_len and \
            translation.native_len != ctx.cfg.total_bytes:
        yield _v("CCH001",
                 f"recorded micro-ops cover {ctx.cfg.total_bytes} bytes "
                 f"but native_len is {translation.native_len}",
                 entry=translation.entry, kind=translation.kind)
    patched = _patched_ranges(ctx)
    for loc in ctx.locs:
        if any(start <= loc.offset < end for start, end in patched):
            continue
        try:
            canonical = decode_uop(encode_uop(loc.uop))
        except UopEncodeError:
            continue  # ENC001's finding
        window = ctx.memory.read(translation.native_addr + loc.offset, 4)
        try:
            in_memory = decode_uop(window)
        except UopDecodeError as error:
            yield _v("CCH001", f"cache bytes do not decode: {error}", loc)
            continue
        if in_memory != canonical:
            yield _v("CCH001",
                     f"cache image holds '{in_memory}' where the "
                     f"translation recorded '{loc.uop}'", loc)


@rule("CHN001", "chained stubs jump to a live translation entry",
      requires=("translation", "memory", "directory"))
def _check_chn001(ctx: VerifyContext) -> Iterator[Violation]:
    translation = ctx.translation
    directory = ctx.directory
    live = {t.native_addr for t in directory.bbt_cache.translations}
    live |= {t.native_addr for t in directory.sbt_cache.translations}
    for stub in translation.exits:
        if stub.chained_to is None:
            continue
        offset = stub.stub_addr - translation.native_addr
        if stub.chained_to not in live:
            yield _v("CHN001",
                     f"stub chained to {stub.chained_to:#x}, which is "
                     f"not a live translation entry", offset=offset)
            continue
        window = ctx.memory.read(stub.stub_addr, 4)
        try:
            jmp = decode_uop(window)
        except UopDecodeError as error:
            yield _v("CHN001", f"chained stub head does not decode: "
                               f"{error}", offset=offset)
            continue
        if jmp.op is not UOp.JMP:
            yield _v("CHN001", f"chained stub head is '{jmp}', expected "
                               f"a direct JMP", offset=offset)
        elif stub.stub_addr + 4 + jmp.imm != stub.chained_to:
            yield _v("CHN001",
                     f"chain JMP lands at "
                     f"{stub.stub_addr + 4 + jmp.imm:#x} but the stub "
                     f"records {stub.chained_to:#x}", offset=offset)


@rule("CHN002", "unpatched stubs still leave through VMEXIT",
      requires=("translation", "memory"))
def _check_chn002(ctx: VerifyContext) -> Iterator[Violation]:
    translation = ctx.translation
    for stub in translation.exits:
        if stub.chained_to is not None or stub.x86_target is None:
            continue
        offset = stub.stub_addr - translation.native_addr
        data = ctx.memory.read(stub.stub_addr, STUB_BYTES)
        try:
            uops = []
            position = 0
            while position < STUB_BYTES:
                uop = decode_uop(data, position)
                uops.append(uop)
                position += uop.length
        except UopDecodeError as error:
            yield _v("CHN002", f"unpatched stub bytes do not decode: "
                               f"{error}", offset=offset)
            continue
        for error in _stub_shape_errors(uops, stub.x86_target):
            yield _v("CHN002", f"unpatched stub in memory: {error}",
                     offset=offset)


@rule("SID001", "every VMCALL has a side-table entry for precise state",
      requires=("translation",))
def _check_sid001(ctx: VerifyContext) -> Iterator[Violation]:
    translation = ctx.translation
    for loc in ctx.locs:
        if loc.uop.op is not UOp.VMCALL:
            continue
        native = translation.native_addr + loc.offset
        if native not in translation.side_table:
            yield _v("SID001",
                     "VMCALL has no side-table entry; the VMM cannot "
                     "reconstruct precise architected state", loc)
            continue
        if ctx.directory is not None:
            resolved = ctx.directory.resolve_side_table(native)
            if resolved is None or resolved[1] is not translation:
                yield _v("SID001",
                         "side-table entry is not registered with the "
                         "translation directory", loc)
