"""A small dataflow engine over verifier CFGs.

Provides an independent dependence model (the rules must not trust
:func:`repro.translator.fusion._conflict`) and three analyses used by the
rule-pack and the tests:

* :func:`definitely_defined` — forward, intersection meet: the registers
  guaranteed written on *every* path before each micro-op (scratch
  hygiene, SCR001).
* :func:`flag_provenance` — forward: whether the architected flags are
  intact at each point, and which scratch register holds a saved copy
  (precise-exception discipline, PRS001).
* :func:`live_registers` — backward liveness over registers and the flags
  resource; :func:`reaching_definitions` — forward may-reach def sites.
  These round out the engine (def-use chains come straight out of the
  reaching sets) and anchor the property tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import FLAG_READING_UOPS, UOp
from repro.isa.fusible.registers import (
    ARCH_REG_COUNT,
    NREGS,
    R_ZERO,
)
from repro.verify.cfg import CFG, Located

#: Pseudo-register index standing for the architected flags resource.
FLAGS = -1

#: Registers architecturally defined at translation entry: the mapped
#: x86 GPRs plus the hardwired zero.  Every other register is VMM state
#: that carries nothing between translations.
ENTRY_DEFINED: FrozenSet[int] = frozenset(range(ARCH_REG_COUNT)) | {R_ZERO}

#: Registers the VMM owns (must never carry live architected state).
VMM_REGS: FrozenSet[int] = frozenset(range(ARCH_REG_COUNT, NREGS)) - {R_ZERO}

ALL_REGS: FrozenSet[int] = frozenset(range(NREGS))


def regs_read(uop: MicroOp) -> FrozenSet[int]:
    return frozenset(uop.sources())


def regs_written(uop: MicroOp) -> FrozenSet[int]:
    dest = uop.dest()
    return frozenset() if dest is None else frozenset({dest})


def reads_flags(uop: MicroOp) -> bool:
    return uop.op in FLAG_READING_UOPS


def conflicts(first: MicroOp, second: MicroOp) -> bool:
    """True when ``second`` must not be reordered above ``first``.

    Re-derived dependence test: register RAW/WAR/WAW, the flags treated
    as one resource, and stores fencing every other memory access.
    """
    first_writes = regs_written(first)
    second_writes = regs_written(second)
    if first_writes & regs_read(second):
        return True  # RAW
    if second_writes & regs_read(first):
        return True  # WAR
    if first_writes & second_writes:
        return True  # WAW
    if first.writes_flags and (second.writes_flags or reads_flags(second)):
        return True
    if reads_flags(first) and second.writes_flags:
        return True
    if first.is_store and (second.is_store or second.is_load):
        return True
    if first.is_load and second.is_store:
        return True
    return False


# -- generic engine -----------------------------------------------------------


class ForwardAnalysis:
    """Worklist solver; subclasses define lattice and transfer.

    States must be hashable-equality values (frozensets, tuples).  A
    ``None`` per-uop state means the micro-op is unreachable from entry.
    """

    def entry_state(self):
        raise NotImplementedError

    def meet(self, left, right):
        raise NotImplementedError

    def transfer(self, state, loc: Located):
        raise NotImplementedError

    def run(self, cfg: CFG) -> List[Optional[object]]:
        """Solve to fixpoint; returns the state *before* each micro-op."""
        nblocks = len(cfg.blocks)
        block_in: List[Optional[object]] = [None] * nblocks
        if not nblocks:
            return []
        block_in[0] = self.entry_state()
        worklist = [0]
        while worklist:
            bid = worklist.pop()
            state = block_in[bid]
            for loc in cfg.blocks[bid].locs:
                state = self.transfer(state, loc)
            for succ in cfg.blocks[bid].succs:
                merged = state if block_in[succ] is None \
                    else self.meet(block_in[succ], state)
                if merged != block_in[succ]:
                    block_in[succ] = merged
                    worklist.append(succ)
        before: List[Optional[object]] = [None] * len(cfg.locs)
        for block in cfg.blocks:
            state = block_in[block.bid]
            if state is None:
                continue
            for loc in block.locs:
                before[loc.index] = state
                state = self.transfer(state, loc)
        return before


class BackwardAnalysis:
    """Backward counterpart; returns the state *after* each micro-op."""

    def exit_state(self):
        raise NotImplementedError

    def meet(self, left, right):
        raise NotImplementedError

    def transfer(self, state, loc: Located):
        raise NotImplementedError

    def run(self, cfg: CFG) -> List[Optional[object]]:
        nblocks = len(cfg.blocks)
        if not nblocks:
            return []
        preds: List[List[int]] = [[] for _ in range(nblocks)]
        for block in cfg.blocks:
            for succ in block.succs:
                preds[succ].append(block.bid)
        block_out: List[Optional[object]] = [None] * nblocks
        worklist = []
        for block in cfg.blocks:
            if not block.succs:
                block_out[block.bid] = self.exit_state()
                worklist.append(block.bid)
        while worklist:
            bid = worklist.pop()
            state = block_out[bid]
            for loc in reversed(cfg.blocks[bid].locs):
                state = self.transfer(state, loc)
            for pred in preds[bid]:
                merged = state if block_out[pred] is None \
                    else self.meet(block_out[pred], state)
                if merged != block_out[pred]:
                    block_out[pred] = merged
                    worklist.append(pred)
        after: List[Optional[object]] = [None] * len(cfg.locs)
        for block in cfg.blocks:
            state = block_out[block.bid]
            if state is None:
                continue
            for loc in reversed(block.locs):
                after[loc.index] = state
                state = self.transfer(state, loc)
        return after


# -- concrete analyses ---------------------------------------------------------


class _DefinitelyDefined(ForwardAnalysis):
    def __init__(self, entry_defined: FrozenSet[int]) -> None:
        self._entry = entry_defined

    def entry_state(self):
        return self._entry

    def meet(self, left, right):
        return left & right

    def transfer(self, state, loc: Located):
        written = regs_written(loc.uop)
        return state | written if written else state


def definitely_defined(cfg: CFG,
                       entry_defined: FrozenSet[int] = ENTRY_DEFINED
                       ) -> List[Optional[FrozenSet[int]]]:
    """Registers written on every path before each micro-op."""
    return _DefinitelyDefined(entry_defined).run(cfg)


#: Flag-provenance lattice value: (architected_flags_intact, saved_copy).
FlagState = Tuple[bool, Optional[int]]


class _FlagProvenance(ForwardAnalysis):
    """Tracks a RDFLG ... WRFLG *save window*.

    Cracked bodies legitimately compute architected flag results into VMM
    temporaries (a memory-destination ALU op lands in T1), so the
    destination register cannot distinguish housekeeping from architected
    flag writes.  What can: the emitters save the flags (RDFLG) exactly
    when they are about to clobber them.  Inside an open save window every
    flag write is housekeeping; the window closes with a WRFLG from the
    saved copy, which restores architected provenance.
    """

    def entry_state(self) -> FlagState:
        return (True, None)

    def meet(self, left: FlagState, right: FlagState) -> FlagState:
        arch = left[0] and right[0]
        saved = left[1] if left[1] == right[1] else None
        return (arch, saved)

    def transfer(self, state: FlagState, loc: Located) -> FlagState:
        arch, saved = state
        uop = loc.uop
        if uop.op is UOp.RDFLG:
            if arch:
                return (True, uop.rd)  # opens a save window
            # snapshot of already-clobbered flags: useless as a save
            return (False, None if saved == uop.rd else saved)
        if uop.op is UOp.WRFLG:
            # closes the window; restores only from the valid saved copy
            return (saved is not None and uop.rs1 == saved, None)
        in_window = saved is not None
        dest = uop.dest()
        if dest is not None and dest == saved:
            saved = None  # the saved copy was overwritten
        if uop.writes_flags:
            arch = not in_window
        return (arch, saved)


def flag_provenance(cfg: CFG) -> List[Optional[FlagState]]:
    """Whether the architected flags are intact before each micro-op."""
    return _FlagProvenance().run(cfg)


class _LiveRegisters(BackwardAnalysis):
    def exit_state(self):
        # precise architected state must survive every exit
        return frozenset(range(ARCH_REG_COUNT)) | {FLAGS}

    def meet(self, left, right):
        return left | right

    def transfer(self, state, loc: Located):
        uop = loc.uop
        state = state - regs_written(uop)
        if uop.writes_flags:
            state = state - {FLAGS}
        state = state | regs_read(uop)
        if reads_flags(uop):
            state = state | {FLAGS}
        return state


def live_registers(cfg: CFG) -> List[Optional[FrozenSet[int]]]:
    """Registers (plus FLAGS) live *after* each micro-op."""
    return _LiveRegisters().run(cfg)


class _ReachingDefinitions(ForwardAnalysis):
    """State: frozenset of (resource, defining uop index); resource is a
    register number or FLAGS.  Index -1 marks an entry definition."""

    def entry_state(self):
        return frozenset((reg, -1) for reg in ALL_REGS) | {(FLAGS, -1)}

    def meet(self, left, right):
        return left | right

    def transfer(self, state, loc: Located):
        killed = regs_written(loc.uop)
        if loc.uop.writes_flags:
            killed = killed | {FLAGS}
        if not killed:
            return state
        state = frozenset(pair for pair in state if pair[0] not in killed)
        return state | frozenset((res, loc.index) for res in killed)


def reaching_definitions(cfg: CFG):
    """May-reach definition sites before each micro-op."""
    return _ReachingDefinitions().run(cfg)


def def_use_chains(cfg: CFG) -> Dict[int, List[int]]:
    """def index -> sorted uop indices that may consume that definition."""
    before = reaching_definitions(cfg)
    chains: Dict[int, set] = {}
    for loc in cfg.locs:
        state = before[loc.index]
        if state is None:
            continue
        used = regs_read(loc.uop)
        flag_use = reads_flags(loc.uop)
        for resource, def_index in state:
            if def_index < 0:
                continue
            if resource in used or (resource == FLAGS and flag_use):
                chains.setdefault(def_index, set()).add(loc.index)
    return {key: sorted(value) for key, value in sorted(chains.items())}


def region_uops(locs: Sequence[Located], start: int, end: int
                ) -> List[Located]:
    return list(locs[start:end])
