"""Always-on install-time verification (the sanitizer).

``TranslationDirectory.install`` calls :func:`check_install` for every
translation it wires up.  The check is a no-op unless the sanitizer is
armed, either globally (:func:`enable`, the autouse pytest fixture, the
``repro verify`` CLI) or per-directory (``verify_on_install=True``, set
by the ``verify_translations`` machine-config flag).

Two modes:

* ``"raise"`` — violations raise :class:`TranslationVerifyError`
  immediately, attributing the broken invariant to the exact install
  that produced it (the sanitizer style used by the test suite).
* ``"collect"`` — violations accumulate in a shared report; the CLI
  uses this to sweep a whole workload and print one summary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.verify.report import VerifierReport


class TranslationVerifyError(AssertionError):
    """An emitted translation broke a machine-checked invariant."""

    def __init__(self, report: VerifierReport) -> None:
        super().__init__(report.format())
        self.report = report


class _SanitizerState:
    def __init__(self) -> None:
        self.mode: Optional[str] = None          # None | 'raise' | 'collect'
        self.report = VerifierReport()


_STATE = _SanitizerState()


def enabled() -> bool:
    return _STATE.mode is not None


def mode() -> Optional[str]:
    return _STATE.mode


def enable(new_mode: str = "raise") -> None:
    if new_mode not in ("raise", "collect"):
        raise ValueError(f"unknown sanitizer mode {new_mode!r}")
    _STATE.mode = new_mode


def disable() -> None:
    _STATE.mode = None


def current_report() -> VerifierReport:
    return _STATE.report


@contextmanager
def raising():
    """Arm the sanitizer in raise mode for a scope."""
    previous = _STATE.mode
    _STATE.mode = "raise"
    try:
        yield
    finally:
        _STATE.mode = previous


@contextmanager
def collecting():
    """Arm the sanitizer in collect mode; yields the fresh report."""
    previous_mode, previous_report = _STATE.mode, _STATE.report
    _STATE.mode = "collect"
    _STATE.report = VerifierReport()
    try:
        yield _STATE.report
    finally:
        _STATE.mode, _STATE.report = previous_mode, previous_report


def check_install(directory, translation) -> None:
    """Install-time hook; called by ``TranslationDirectory.install``."""
    per_directory = getattr(directory, "verify_on_install", False)
    if _STATE.mode is None and not per_directory:
        return
    from repro.verify.verifier import verify_translation
    report = verify_translation(translation, memory=directory.memory,
                                directory=directory)
    if _STATE.mode == "collect":
        _STATE.report.merge(report)
        return
    if not report.ok:
        raise TranslationVerifyError(report)


def check_stream(uops, force: bool = False) -> None:
    """Pre-install debug check used by the translators.

    Runs the stream-level rules only (the translation is not installed
    yet); raises in raise mode, accumulates in collect mode.  With
    ``force`` (the translators' ``verify`` debug flag) the check runs
    even when the global sanitizer is off.
    """
    if _STATE.mode is None and not force:
        return
    from repro.verify.verifier import verify_uops
    report = verify_uops(uops)
    if _STATE.mode == "collect":
        _STATE.report.merge(report)
        return
    if not report.ok:
        raise TranslationVerifyError(report)
