"""Driving the rule-pack over streams, translations, and directories."""

from __future__ import annotations

import logging
from dataclasses import replace
from typing import List, Optional

from repro.isa.fusible.encoding import UopDecodeError, decode_stream
from repro.verify.report import VerifierReport, Violation
from repro.verify.rules import RULES, VerifyContext

log = logging.getLogger("repro.verify")

#: Disassembly lines shown around each violation.
CONTEXT_RADIUS = 2


def _context_lines(ctx: VerifyContext, index: int) -> tuple:
    low = max(0, index - CONTEXT_RADIUS)
    high = min(len(ctx.uops), index + CONTEXT_RADIUS + 1)
    lines = []
    for position in range(low, high):
        marker = "->" if position == index else "  "
        lines.append(f"{marker} {position:4d}: {ctx.uops[position]}")
    return tuple(lines)


def _run_rules(ctx: VerifyContext) -> VerifierReport:
    available = ctx.available()
    entry = kind = None
    if ctx.translation is not None:
        entry = ctx.translation.entry
        kind = ctx.translation.kind
    violations: List[Violation] = []
    rules_run = []
    for spec in RULES:
        if not spec.requires <= available:
            continue
        rules_run.append(spec.rule_id)
        for violation in spec.check(ctx):
            if violation.entry is None and entry is not None:
                violation = replace(violation, entry=entry, kind=kind)
            if violation.index is not None and not violation.context:
                violation = replace(
                    violation,
                    context=_context_lines(ctx, violation.index))
            violations.append(violation)
    return VerifierReport(violations=violations,
                          uops_checked=len(ctx.uops),
                          rules_run=tuple(rules_run))


def verify_uops(uops, translation=None, memory=None,
                directory=None) -> VerifierReport:
    """Run every applicable rule over a micro-op stream."""
    ctx = VerifyContext(uops, translation=translation, memory=memory,
                        directory=directory)
    return _run_rules(ctx)


def verify_translation(translation, memory=None,
                       directory=None) -> VerifierReport:
    """Run the full rule-pack over one installed translation."""
    uops = translation.uops
    if not uops and memory is not None and translation.native_len:
        try:
            uops = decode_stream(memory.read(translation.native_addr,
                                             translation.native_len))
        except UopDecodeError as error:
            report = VerifierReport(translations_checked=1)
            report.violations.append(Violation(
                rule_id="CCH001",
                message=f"translation bytes do not decode: {error}",
                entry=translation.entry, kind=translation.kind))
            return report
    report = verify_uops(uops, translation=translation, memory=memory,
                         directory=directory)
    report.translations_checked = 1
    if not report.ok:
        log.warning("%s@%#x: %d invariant violation(s)",
                    translation.kind, translation.entry,
                    len(report.violations))
    return report


def verify_directory(directory,
                     memory: Optional[object] = None) -> VerifierReport:
    """Verify every live translation in a directory."""
    memory = memory if memory is not None else directory.memory
    report = VerifierReport()
    for cache in (directory.bbt_cache, directory.sbt_cache):
        for translation in cache.translations:
            report.merge(verify_translation(translation, memory=memory,
                                            directory=directory))
    return report
