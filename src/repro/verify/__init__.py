"""Translation verifier — static analysis over emitted fusible code.

An independent re-derivation of the invariants the translators are
supposed to maintain (macro-op fusion legality, exit-stub shape and the
R29 continuation discipline, scratch-register hygiene, encoding
round-trip, code-cache/chaining consistency).  The verifier never
consults the emitters; it re-checks their output from first principles
so that a bug in :mod:`repro.translator` cannot hide itself.

Three entry points:

* :func:`verify_uops` — stream-level rules over a bare micro-op list.
* :func:`verify_translation` — the full rule-pack over one installed
  translation (memory image, stubs, chaining, side tables).
* :func:`verify_directory` — every live translation in a
  :class:`~repro.translator.code_cache.TranslationDirectory`.

The sanitizer (:mod:`repro.verify.sanitizer`) hooks these into
``TranslationDirectory.install`` so every translation made during the
test suite or a debug run is checked the moment it is created.
"""

from repro.verify.cfg import CFG, Located, build_cfg, locate
from repro.verify.report import Violation, VerifierReport
from repro.verify.rules import RULES, rule_ids
from repro.verify.sanitizer import TranslationVerifyError
from repro.verify.verifier import (
    verify_directory,
    verify_translation,
    verify_uops,
)

__all__ = [
    "CFG",
    "Located",
    "RULES",
    "TranslationVerifyError",
    "VerifierReport",
    "Violation",
    "build_cfg",
    "locate",
    "rule_ids",
    "verify_directory",
    "verify_translation",
    "verify_uops",
]
