"""Chaos harness: prove every fault class is survivable.

The correctness bar is the paper's own premise — staged translation is
an *optimization* over an always-correct emulation path, so no failure
inside the translation stack may change architected results.  The
harness makes that executable:

1. run a workload fault-free (cold run + repository snapshot), recording
   its architected outcome — registers, flags, output, exit code;
2. mangle a copy of the repository with the disk fault classes, arm the
   runtime fault classes, and run the same workload warm-started from
   the damaged repository;
3. the run must complete (no exception escapes) with an architected
   outcome identical to step 1, all recovery recorded in the stats.

``tools/chaos.py`` sweeps the full (workload x fault class x seed)
matrix through this module; the hypothesis chaos test samples it.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import vm_soft
from repro.core.vm import CoDesignedVM
from repro.faults.classes import FaultClass, make_fault
from repro.faults.injector import FaultInjector
from repro.faults.plane import injecting
from repro.isa.x86lite.assembler import assemble
from repro.persist import TranslationRepository

DEFAULT_HOT_THRESHOLD = 50
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


@dataclass
class ArchOutcome:
    """The architected result of one run — what faults must not change."""

    exit_code: Optional[int]
    output: List[object]
    regs: List[int]
    flags: List[bool]

    @classmethod
    def of(cls, vm: CoDesignedVM) -> "ArchOutcome":
        state = vm.state
        return cls(exit_code=state.exit_code,
                   output=list(state.output),
                   regs=list(state.regs),
                   flags=[state.cf, state.zf, state.sf, state.of])

    def diff(self, other: "ArchOutcome") -> List[str]:
        problems = []
        if self.exit_code != other.exit_code:
            problems.append(f"exit code {other.exit_code!r} != "
                            f"{self.exit_code!r}")
        if self.output != other.output:
            problems.append(f"output {other.output!r} != {self.output!r}")
        if self.regs != other.regs:
            problems.append(f"registers {other.regs!r} != {self.regs!r}")
        if self.flags != other.flags:
            problems.append(f"flags {other.flags!r} != {self.flags!r}")
        return problems


@dataclass
class Baseline:
    """Fault-free reference: outcome plus a pristine repository."""

    name: str
    source: str
    hot_threshold: int
    max_instructions: int
    outcome: ArchOutcome
    repo_dir: str
    records_saved: int


@dataclass
class ChaosOutcome:
    """One faulted run compared against its baseline."""

    workload: str
    faults: List[str]
    seed: int
    ok: bool
    #: warm chaos runs boot from a mangled repository; cold runs skip
    #: the warm start so translator/dispatch faults hit live translation
    warm: bool = True
    #: remote runs warm-start through a live cache server + the
    #: fault-tolerant client, so the network fault classes have surface
    remote: bool = False
    #: cluster runs warm-start through a live sharded/replicated
    #: LocalCluster + the cluster client, so the cluster fault classes
    #: (shard-down, replica-partition, ...) have surface
    cluster: bool = False
    problems: List[str] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    disk_corruptions: int = 0
    stats: Dict = field(default_factory=dict)
    #: flight-recorder dump (repro.obs.tracer) captured when the run
    #: raised or diverged — the replayable forensic trace; None when
    #: the run survived cleanly
    flight_recording: Optional[Dict] = None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def format(self) -> str:
        status = "ok" if self.ok else "FAIL"
        fired = ", ".join(f"{name} x{count}"
                          for name, count in sorted(self.injected.items())
                          if count) or "none fired"
        mode = "cluster" if self.cluster else \
            ("remote" if self.remote else
             ("warm" if self.warm else "cold"))
        line = (f"{status}  {self.workload:14s} seed={self.seed:<4d} "
                f"{mode} [{'+'.join(self.faults)}] ({fired})")
        if self.problems:
            line += "\n      " + "\n      ".join(self.problems)
        return line


def prepare_baseline(name: str, source: str, workdir: str,
                     hot_threshold: int = DEFAULT_HOT_THRESHOLD,
                     max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                     ) -> Baseline:
    """Fault-free cold run; snapshot its translations for warm starts."""
    image = assemble(source)
    vm = CoDesignedVM(vm_soft(), hot_threshold=hot_threshold)
    vm.load(image)
    vm.run(max_instructions=max_instructions)
    repo_dir = str(Path(workdir) / f"baseline-{name}")
    saved = vm.save_translations(repo_dir)
    return Baseline(name=name, source=source,
                    hot_threshold=hot_threshold,
                    max_instructions=max_instructions,
                    outcome=ArchOutcome.of(vm),
                    repo_dir=repo_dir, records_saved=saved)


def _manifest_pairs(repo_dir) -> List[tuple]:
    """The (config_fp, image_fp) pairs a repository directory holds
    (manifest files are named ``<config_fp>__<image_fp>.json``)."""
    pairs = []
    manifests = Path(repo_dir) / "manifests"
    if manifests.is_dir():
        for path in sorted(manifests.glob("*.json")):
            config_fp, sep, image_fp = path.stem.partition("__")
            if sep and config_fp and image_fp:
                pairs.append((config_fp, image_fp))
    return pairs


def run_faulted(baseline: Baseline, faults: Sequence[str], seed: int,
                workdir: Optional[str] = None, warm: bool = True,
                remote: bool = False, cluster: bool = False,
                **fault_overrides) -> ChaosOutcome:
    """One chaos run under an armed injector.

    ``warm=True`` boots from a mangled copy of the baseline repository
    (exercising the repository/loader fault surface); ``warm=False``
    runs cold, so the BBT/SBT/hotspot/dispatch fault sites see live
    translation work.  ``remote=True`` (implies warm) serves the
    mangled copy through a live :class:`CacheServer` and warm-starts
    through the fault-tolerant :class:`RemoteRepository` client, so the
    network fault classes strike a real socket path — with the same
    copy as the client's local fallback, every degradation ends at
    state the fault-free run could have produced.  ``cluster=True``
    (implies warm) primes a live sharded/replicated
    :class:`~repro.cluster.manager.LocalCluster` from the mangled copy,
    rots each replica store independently, and warm-starts through the
    :class:`~repro.cluster.client.ClusterRepository` — the surface for
    the cluster fault classes (shard-down, replica-partition,
    stale-replica, ...).  In every mode the architected outcome must
    match the fault-free baseline exactly.
    """
    injector = FaultInjector(seed, faults, **fault_overrides)
    cleanup = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    disk_corruptions = 0
    warm = warm or remote or cluster
    if warm:
        repo_copy = Path(workdir) / f"faulted-{baseline.name}-{seed}"
        if repo_copy.exists():
            shutil.rmtree(repo_copy)
        shutil.copytree(baseline.repo_dir, repo_copy)
        disk_corruptions = injector.mangle_repository(repo_copy)

    outcome = ChaosOutcome(workload=baseline.name,
                           faults=list(faults), seed=seed, ok=False,
                           warm=warm, remote=remote, cluster=cluster,
                           disk_corruptions=disk_corruptions)
    # chaos runs fly instrumented: the flight recorder turns any escape
    # or divergence into a replayable forensic trace (docs/observability)
    config = vm_soft().with_(integrity_check_interval=1, trace=True)
    vm = CoDesignedVM(config, hot_threshold=baseline.hot_threshold)
    vm.load(assemble(baseline.source))
    server = None
    grid = None
    try:
        if cluster:
            # a real shards x replicas grid on loopback, primed
            # (fault-free) from the mangled copy, then each replica
            # store rotted independently — the same copy backs the
            # client's local fallback, so every rung of the
            # degradation ladder lands on loadable records
            from repro.cluster import ClusterRepository, LocalCluster
            grid = LocalCluster(
                Path(workdir) / f"cluster-{baseline.name}-{seed}")
            spec = grid.start()
            source_repo = TranslationRepository(repo_copy)
            primer = ClusterRepository(spec, retries=1,
                                       sleep=lambda _s: None)
            for config_fp, image_fp in _manifest_pairs(repo_copy):
                primer.save(source_repo.load(config_fp, image_fp),
                            config_fp, image_fp)
            primer.close()
            for group, index in sorted(grid.servers):
                disk_corruptions += injector.mangle_repository(
                    grid.repo_dir(group, index))
            outcome.disk_corruptions = disk_corruptions
            repository = ClusterRepository(
                spec, local=repo_copy, timeout=2.0, retries=2,
                breaker_cooldown=0.0, sleep=lambda _s: None)
        elif remote:
            # TCP on loopback: the server reads the *mangled* copy, the
            # client falls back to the same copy, so remote and local
            # degradation paths converge on identical loadable records
            from repro.cacheserver.server import CacheServer
            from repro.persist.remote import RemoteRepository
            server = CacheServer(repo_copy)
            address = server.start()
            repository = RemoteRepository(
                address, local=repo_copy, timeout=2.0, retries=2,
                breaker_cooldown=0.0, sleep=lambda _s: None)
        elif warm:
            repository = TranslationRepository(repo_copy)
        with injecting(injector):
            if warm:
                vm.warm_start(repository)
            vm.run(max_instructions=baseline.max_instructions)
    except Exception as error:   # noqa: BLE001 - the whole point
        outcome.problems.append(
            f"run did not complete: {type(error).__name__}: {error} "
            f"({injector.summary()})")
        outcome.flight_recording = getattr(error, "flight_recording",
                                           None)
        if outcome.flight_recording is None and vm.tracer is not None:
            outcome.flight_recording = vm.tracer.flight_dump(
                f"chaos-exception:{type(error).__name__}",
                workload=baseline.name, seed=seed,
                faults=list(faults))
        return outcome
    finally:
        if server is not None:
            server.stop()
        if grid is not None:
            grid.stop()
        outcome.injected = dict(injector.injected)
        outcome.stats = vm.stats()
        if remote or cluster:
            outcome.stats["remote"] = repository.remote_stats.to_dict()
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)

    outcome.problems = baseline.outcome.diff(ArchOutcome.of(vm))
    outcome.ok = not outcome.problems
    if not outcome.ok and vm.tracer is not None:
        outcome.flight_recording = vm.tracer.flight_dump(
            "chaos-divergence", workload=baseline.name, seed=seed,
            faults=list(faults), problems=outcome.problems)
    return outcome


def modes_for(faults: Sequence[str]) -> List[bool]:
    """Which chaos modes exercise a fault set (True=warm, False=cold).

    Disk, repository/loader and network faults need a warm start to
    have any surface at all (network faults specifically need the
    *remote* warm path — see :func:`needs_remote`); translator, hotspot
    and dispatch faults need a cold run, because a fully warm boot
    never invokes the translators.
    """
    warm = cold = False
    for fault in faults:
        if not isinstance(fault, FaultClass):
            fault = make_fault(fault)
        if fault.disk or fault.network or fault.cluster or \
                any(site.startswith(("repo.", "loader."))
                    for site in fault.sites):
            warm = True
        if any(not site.startswith(("repo.", "loader.", "net.",
                                    "cluster.", "overload."))
               for site in fault.sites):
            cold = True
    modes = []
    if warm:
        modes.append(True)
    if cold:
        modes.append(False)
    return modes or [True]


def needs_remote(faults: Sequence[str]) -> bool:
    """Whether a fault set only has surface through the remote client."""
    for fault in faults:
        if not isinstance(fault, FaultClass):
            fault = make_fault(fault)
        if fault.network:
            return True
    return False


def needs_cluster(faults: Sequence[str]) -> bool:
    """Whether a fault set only has surface through the cluster client."""
    for fault in faults:
        if not isinstance(fault, FaultClass):
            fault = make_fault(fault)
        if fault.cluster:
            return True
    return False


def run_matrix(programs: Dict[str, str], fault_sets: Sequence[Sequence[str]],
               seeds: Sequence[int],
               hot_threshold: int = DEFAULT_HOT_THRESHOLD,
               max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               progress=None) -> List[ChaosOutcome]:
    """The full chaos sweep: every workload x fault set x seed."""
    outcomes: List[ChaosOutcome] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        for name, source in sorted(programs.items()):
            baseline = prepare_baseline(
                name, source, workdir, hot_threshold=hot_threshold,
                max_instructions=max_instructions)
            for fault_set in fault_sets:
                for seed in seeds:
                    for warm in modes_for(fault_set):
                        outcome = run_faulted(baseline, fault_set, seed,
                                              workdir=workdir, warm=warm)
                        outcomes.append(outcome)
                        if progress is not None:
                            progress(outcome)
    return outcomes
