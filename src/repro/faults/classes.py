"""The registered fault classes — everything we know how to break.

Each :class:`FaultClass` models one failure mode of the translation
stack and declares *where* it strikes:

* **runtime faults** fire at :func:`~repro.faults.plane.fault_point`
  sites inside the production paths (``sites``);
* **disk faults** mangle a translation repository directly on disk
  between a save and the next warm start (``disk = True``).

All randomness comes from the injector's seeded generator, so a given
(seed, fault set) always produces the identical failure sequence — the
chaos gate's reproducibility rests on this.

Adding a fault class is one subclass plus :func:`register`; the chaos
matrix (``make chaos``), the hypothesis property test and the CLI pick
it up from :data:`FAULT_CLASSES` automatically.
"""

from __future__ import annotations

import errno
import json
import socket
from pathlib import Path
from typing import Dict, List, Type


class InjectedFault(Exception):
    """Base for exceptions raised *by* fault classes (never by real
    code), so recovery paths can be told apart from genuine failures in
    the injection log."""


class InjectedTranslatorFault(InjectedFault):
    """A translator crashed mid-translation (simulated codegen bug)."""


#: Address range guaranteed unmapped by every seed workload — bogus
#: hotspot candidates land here so a misfire can never alias real code.
_BOGUS_ENTRY_BASE = 0x7F00_0000


class FaultClass:
    """One failure mode; subclasses override ``fire`` and/or ``mangle``."""

    #: registry key, also the CLI / matrix spelling
    name: str = ""
    #: fault_point sites this class listens on
    sites: tuple = ()
    #: whether this class participates in repository mangling
    disk: bool = False
    #: whether this class strikes the shared-cache client path (its
    #: only surface is a warm start through a RemoteRepository)
    network: bool = False
    #: whether this class strikes the cluster tier (shard routing,
    #: replica sets); its full surface needs a warm start through a
    #: ClusterRepository fronting a live LocalCluster
    cluster: bool = False
    #: per-visit firing probability (deterministic via the seeded rng)
    rate: float = 0.25
    #: hard cap on firings per run (keeps chaos runs bounded)
    max_injections: int = 50

    def fire(self, rng, site: str, context: Dict):
        """React to one fault-point visit; may raise or return a value."""
        raise NotImplementedError

    def mangle(self, rng, root: Path) -> int:
        """Corrupt an on-disk repository; returns faults applied."""
        raise NotImplementedError


FAULT_CLASSES: Dict[str, Type[FaultClass]] = {}


def register(cls: Type[FaultClass]) -> Type[FaultClass]:
    """Class decorator: add a fault class to the global registry."""
    if not cls.name:
        raise ValueError(f"fault class {cls.__name__} has no name")
    if cls.name in FAULT_CLASSES:
        raise ValueError(f"duplicate fault class {cls.name!r}")
    FAULT_CLASSES[cls.name] = cls
    return cls


def all_fault_names() -> List[str]:
    return sorted(FAULT_CLASSES)


# -- repository disk faults --------------------------------------------------

def _files(root: Path, subdir: str) -> List[Path]:
    directory = root / subdir
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def _flip_byte(rng, path: Path) -> bool:
    try:
        data = bytearray(path.read_bytes())
    except OSError:
        return False
    if not data:
        return False
    index = rng.randrange(len(data))
    data[index] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    return True


@register
class CorruptObjectFault(FaultClass):
    """Flip one bit in persisted object files (silent media rot)."""

    name = "corrupt-object"
    disk = True

    def mangle(self, rng, root: Path) -> int:
        applied = 0
        for path in _files(root, "objects"):
            if applied >= self.max_injections:
                break
            if rng.random() < self.rate and _flip_byte(rng, path):
                applied += 1
        return applied


@register
class TruncateObjectFault(FaultClass):
    """Truncate persisted object files mid-record (torn write / crash)."""

    name = "truncate-object"
    disk = True

    def mangle(self, rng, root: Path) -> int:
        applied = 0
        for path in _files(root, "objects"):
            if applied >= self.max_injections:
                break
            if rng.random() >= self.rate:
                continue
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size < 2:
                continue
            with open(path, "r+b") as handle:
                handle.truncate(rng.randrange(1, size))
            applied += 1
        return applied


@register
class TornMetaFault(FaultClass):
    """Tear ``meta.json``: leave a prefix of a legal write on disk."""

    name = "torn-meta"
    disk = True
    rate = 1.0

    def mangle(self, rng, root: Path) -> int:
        meta = root / "meta.json"
        try:
            data = meta.read_bytes()
        except OSError:
            return 0
        if len(data) < 2:
            return 0
        meta.write_bytes(data[:rng.randrange(1, len(data))])
        # a torn write can also leave the journal file behind
        (root / "meta.json.tmp").write_bytes(b'{"format": ')
        return 1


@register
class CorruptManifestFault(FaultClass):
    """Flip one bit in manifest files (stale or tampered manifests)."""

    name = "corrupt-manifest"
    disk = True
    rate = 0.5

    def mangle(self, rng, root: Path) -> int:
        applied = 0
        for path in _files(root, "manifests"):
            if applied >= self.max_injections:
                break
            if rng.random() < self.rate and _flip_byte(rng, path):
                applied += 1
        return applied


@register
class StaleRecordFault(FaultClass):
    """Rewrite an object's source fingerprint so it no longer matches
    the program image (a record saved from different text)."""

    name = "stale-record"
    disk = True
    rate = 0.5

    def mangle(self, rng, root: Path) -> int:
        applied = 0
        for path in _files(root, "objects"):
            if applied >= self.max_injections:
                break
            if rng.random() >= self.rate:
                continue
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue    # already mangled by another fault class
            if not isinstance(record, dict):
                continue
            source = record.get("source")
            if not source or not source[0][1]:
                continue
            first = source[0][1]
            flipped = format(int(first[:2], 16) ^ 0xFF, "02x") + first[2:]
            record["source"][0][1] = flipped
            # keep the content key consistent: this models a *stale*
            # record (valid on disk, wrong source), not a corrupt one
            from repro.persist.format import record_key
            record.pop("key", None)
            record["key"] = record_key(record)
            new_path = path.with_name(record["key"] + ".json")
            path.unlink()
            new_path.write_text(json.dumps(record))
            self._rename_in_manifests(root, path.stem, record["key"])
            applied += 1
        return applied

    @staticmethod
    def _rename_in_manifests(root: Path, old: str, new: str) -> None:
        for manifest_path in _files(root, "manifests"):
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue    # already mangled by another fault class
            entries = manifest.get("entries", [])
            if old in entries:
                manifest["entries"] = [new if key == old else key
                                       for key in entries]
                manifest_path.write_text(json.dumps(manifest, indent=1))


# -- repository I/O faults ---------------------------------------------------

@register
class IOErrorFault(FaultClass):
    """Simulated EIO on repository reads, ENOSPC on writes."""

    name = "io-error"
    sites = ("repo.read", "repo.write", "repo.fsync")
    rate = 0.3

    def fire(self, rng, site: str, context: Dict):
        path = context.get("path", "?")
        if site == "repo.write":
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC writing {path}")
        if site == "repo.fsync":
            raise OSError(errno.EIO,
                          f"injected EIO syncing {path}")
        raise OSError(errno.EIO, f"injected EIO reading {path}")


# -- translator faults -------------------------------------------------------

@register
class BBTTranslatorFault(FaultClass):
    """The basic-block translator crashes mid-translation."""

    name = "bbt-fault"
    sites = ("translate.bbt",)
    rate = 0.3

    def fire(self, rng, site: str, context: Dict):
        raise InjectedTranslatorFault(
            f"injected BBT fault at entry "
            f"{context.get('entry', 0):#x}")


@register
class SBTTranslatorFault(FaultClass):
    """The superblock translator crashes mid-translation."""

    name = "sbt-fault"
    sites = ("translate.sbt",)
    rate = 0.5

    def fire(self, rng, site: str, context: Dict):
        raise InjectedTranslatorFault(
            f"injected SBT fault at entry "
            f"{context.get('entry', 0):#x}")


# -- code-cache corruption ---------------------------------------------------

@register
class CacheCorruptionFault(FaultClass):
    """Flip one byte inside an installed translation's immutable body.

    Fires at dispatch boundaries (the only points where the VMM regains
    control), picking a random installed translation and a byte outside
    the runtime-patchable linkage words — those are VMM-owned and
    excluded from the integrity checksum (see
    ``Translation.integrity_mask``).
    """

    name = "cache-corruption"
    sites = ("dispatch",)
    rate = 0.05
    max_injections = 25

    def fire(self, rng, site: str, context: Dict):
        directory = context.get("directory")
        if directory is None:
            return None
        translations = (directory.bbt_cache.translations
                        + directory.sbt_cache.translations)
        translations = [t for t in translations if t.native_len > 0]
        if not translations:
            return None
        victim = rng.choice(translations)
        masked = set()
        for offset in victim.integrity_mask():
            masked.update(range(offset, offset + 4))
        candidates = [i for i in range(victim.native_len)
                      if i not in masked]
        if not candidates:
            return None
        offset = rng.choice(candidates)
        addr = victim.native_addr + offset
        byte = directory.memory.read(addr, 1)[0]
        directory.memory.write(addr, bytes([byte ^ (1 << rng.randrange(8))]))
        return ("corrupted", victim.kind, victim.entry, offset)


# -- shared-cache network faults ---------------------------------------------
#
# These strike the RemoteRepository client (src/repro/persist/remote.py)
# at its fault points; the server itself stays healthy, which is exactly
# the adversarial case — the client must absorb every transport failure
# through retries/breaker/fallback without changing architected state.

@register
class ConnRefusedFault(FaultClass):
    """The server's socket refuses the connection (down or restarting)."""

    name = "conn-refused"
    sites = ("net.connect",)
    network = True
    rate = 0.5

    def fire(self, rng, site: str, context: Dict):
        raise ConnectionRefusedError(
            errno.ECONNREFUSED,
            f"injected connection refused to "
            f"{context.get('address', '?')}")


@register
class TornFrameFault(FaultClass):
    """The connection drops mid-frame (server crash, network partition)."""

    name = "torn-frame"
    sites = ("net.send", "net.recv")
    network = True
    rate = 0.4

    def fire(self, rng, site: str, context: Dict):
        raise ConnectionResetError(
            errno.ECONNRESET,
            f"injected mid-frame disconnect during "
            f"{context.get('op', '?')}")


@register
class SlowServerFault(FaultClass):
    """The server stalls past the client's per-request deadline."""

    name = "slow-server"
    sites = ("net.recv",)
    network = True
    rate = 0.4

    def fire(self, rng, site: str, context: Dict):
        raise socket.timeout(
            f"injected server stall during {context.get('op', '?')}")


@register
class StaleLeaseFault(FaultClass):
    """The server reports writer-lease contention (stale/held lease)."""

    name = "stale-lease"
    sites = ("net.lease",)
    network = True
    rate = 0.5

    def fire(self, rng, site: str, context: Dict):
        return True     # the client treats truthy as "lease-busy"


@register
class CorruptPayloadFault(FaultClass):
    """A response frame arrives with a checksum-failing payload."""

    name = "corrupt-payload"
    sites = ("net.payload",)
    network = True
    rate = 0.4

    def fire(self, rng, site: str, context: Dict):
        return True     # the client raises a ProtocolError on truthy


# -- cluster faults ----------------------------------------------------------
#
# These strike the cluster tier (src/repro/cluster/): shard routing in
# the ClusterRepository (``cluster.route``/``cluster.pull``) and the
# per-replica attempt engine in RemoteRepository (``cluster.replica``).
# Outage classes pick a sticky victim — the first shard group (or
# replica) a rate-passing visit lands on stays down for the whole run,
# modelling a crashed process rather than flickering packet loss — so
# a seeded run replays the identical outage.

@register
class ShardDownFault(FaultClass):
    """One whole shard group is unreachable (every replica down)."""

    name = "shard-down"
    sites = ("cluster.route",)
    cluster = True
    rate = 1.0
    max_injections = 500

    def __init__(self) -> None:
        self._victim = None

    def fire(self, rng, site: str, context: Dict):
        group = context.get("group")
        if group is None:
            return None
        if self._victim is None:
            self._victim = group
        if group != self._victim:
            return None
        raise ConnectionRefusedError(
            errno.ECONNREFUSED,
            f"injected shard outage: every replica of {group} is down")


@register
class SlowShardFault(FaultClass):
    """One shard group stalls past the client's request deadline."""

    name = "slow-shard"
    sites = ("cluster.route",)
    cluster = True
    rate = 0.5
    max_injections = 100

    def __init__(self) -> None:
        self._victim = None

    def fire(self, rng, site: str, context: Dict):
        group = context.get("group")
        if group is None:
            return None
        if self._victim is None:
            self._victim = group
        if group != self._victim:
            return None
        raise socket.timeout(
            f"injected shard stall routing "
            f"{context.get('op', '?')} to {group}")


@register
class ReplicaPartitionFault(FaultClass):
    """One replica is partitioned away; its siblings keep serving."""

    name = "replica-partition"
    sites = ("cluster.replica",)
    cluster = True
    rate = 1.0
    max_injections = 500

    def __init__(self) -> None:
        self._victim = None

    def fire(self, rng, site: str, context: Dict):
        victim = (context.get("group"), context.get("replica"))
        if victim[1] is None:
            return None
        if self._victim is None:
            self._victim = victim
        if victim != self._victim:
            return None
        return True     # the attempt engine raises a connection reset


@register
class StaleReplicaFault(FaultClass):
    """A replica answers a pull from a stale manifest; the client
    discards the reply and fails over to a sibling."""

    name = "stale-replica"
    sites = ("cluster.pull",)
    cluster = True
    rate = 0.4

    def fire(self, rng, site: str, context: Dict):
        return True     # the cluster client treats truthy as stale


@register
class SplitManifestFault(FaultClass):
    """A replica's manifests lag the cluster: drop a random subset of
    entries, modelling pushes the replica missed while partitioned.
    The store stays structurally valid — loads just see fewer warm
    records — and anti-entropy re-replicates the gap."""

    name = "split-manifest"
    disk = True
    cluster = True
    rate = 1.0

    def mangle(self, rng, root: Path) -> int:
        applied = 0
        for path in _files(root, "manifests"):
            if applied >= self.max_injections:
                break
            try:
                manifest = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue    # already mangled by another fault class
            if not isinstance(manifest, dict):
                continue
            entries = manifest.get("entries", [])
            if len(entries) < 2:
                continue
            keep = rng.randrange(1, len(entries))
            manifest["entries"] = sorted(rng.sample(entries, keep))
            path.write_text(json.dumps(manifest, indent=1))
            applied += 1
        return applied


# -- overload faults ---------------------------------------------------------
#
# These strike the overload-protection control plane (docs/overload.md)
# at its decision points: shedding in the client's response handling
# (``overload.shed``), deadline budgets at request entry
# (``overload.deadline``), and the cluster client's hedge trigger
# (``overload.hedge``).  Architected state must survive every one —
# shed and hedged requests retry or degrade down the normal ladder.

@register
class ServerOverloadedFault(FaultClass):
    """The server sheds the request with a retryable ``overloaded``
    answer (admission control under a thundering herd)."""

    name = "server-overloaded"
    sites = ("overload.shed",)
    network = True
    rate = 0.4

    def fire(self, rng, site: str, context: Dict):
        return True     # the client raises _Overloaded on truthy


@register
class ExpiredDeadlineFault(FaultClass):
    """A request's deadline budget is already spent at entry — the
    client must abandon it immediately (no retries, no breaker
    penalty) and degrade down the ladder."""

    name = "expired-deadline"
    sites = ("overload.deadline",)
    network = True
    rate = 0.3

    def fire(self, rng, site: str, context: Dict):
        return True     # the client treats truthy as a spent budget


@register
class HedgeTriggerFault(FaultClass):
    """The primary replica looks slow past the hedge threshold: the
    cluster client must abandon it and hedge the pull to a sibling."""

    name = "hedge-trigger"
    sites = ("overload.hedge",)
    cluster = True
    rate = 0.5
    max_injections = 100

    def fire(self, rng, site: str, context: Dict):
        return True     # the cluster client hedges on truthy


# -- policy faults -----------------------------------------------------------

@register
class VerifierFalsePositiveFault(FaultClass):
    """The warm-start screening verifier rejects a good record."""

    name = "verifier-false-positive"
    sites = ("loader.verify",)
    rate = 0.4

    def fire(self, rng, site: str, context: Dict):
        return True     # the loader treats truthy as "rejected"


@register
class HotspotMisfireFault(FaultClass):
    """The hotspot detector reports a bogus (never-executed) entry."""

    name = "hotspot-misfire"
    sites = ("hotspot.candidate",)
    rate = 0.1
    max_injections = 10

    def fire(self, rng, site: str, context: Dict):
        # an address no seed workload maps: translation must fail and
        # the quarantine must absorb it without disturbing real blocks
        return _BOGUS_ENTRY_BASE + 4 * rng.randrange(0x1000)


def make_fault(name: str, **overrides) -> FaultClass:
    """Instantiate a registered fault class, with attribute overrides."""
    try:
        cls = FAULT_CLASSES[name]
    except KeyError:
        raise ValueError(f"unknown fault class {name!r}; "
                         f"registered: {all_fault_names()}") from None
    fault = cls()
    for attr, value in overrides.items():
        if not hasattr(fault, attr):
            raise ValueError(f"fault class {name!r} has no "
                             f"attribute {attr!r}")
        setattr(fault, attr, value)
    return fault
