"""The fault plane — injection hooks compiled into the production paths.

Production code (repository I/O, the translators, the dispatch loop, the
warm-start loader) calls :func:`fault_point` at the places where real
systems fail.  The call is a cheap no-op unless a
:class:`~repro.faults.injector.FaultInjector` has been armed with
:func:`injecting`, mirroring the sanitizer pattern used by the
translation verifier: zero cost and zero behaviour change in normal
operation, deterministic failure on demand under test.

A fault point may

* **raise** an injected exception (simulated EIO/ENOSPC, a translator
  crash mid-translation), which the caller's recovery path must absorb;
* **return a value** the caller treats as an injected stimulus (a bogus
  hotspot candidate, a forced verifier rejection);
* **mutate state** through the context it is handed (flip a byte in an
  installed translation).

This module is dependency-free so any layer can import it without
cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

#: The armed injector, or None (the common case: faults disabled).
_ACTIVE = None


def active():
    """The armed injector, or None."""
    return _ACTIVE


def fault_point(site: str, **context):
    """Visit one injection site; no-op unless an injector is armed.

    Returns whatever the injector's fault classes produce for this site
    (usually ``None``), and may raise an injected exception.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.visit(site, context)


def arm(injector) -> None:
    global _ACTIVE
    _ACTIVE = injector


def disarm() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injecting(injector: Optional[object]):
    """Arm ``injector`` for the duration of the block (None = no-op)."""
    previous = _ACTIVE
    arm(injector)
    try:
        yield injector
    finally:
        arm(previous)
