"""The deterministic fault injector.

One :class:`FaultInjector` owns a seeded random generator and a set of
fault-class instances.  Runtime faults are consulted at every
:func:`~repro.faults.plane.fault_point` visit whose site they listen
on; disk faults are applied to a repository directory with
:meth:`FaultInjector.mangle_repository` (between a save and the next
warm start, modelling rot while the VM was down).

Everything the injector does is recorded in :attr:`injected` (per-class
firing counts) and :attr:`log` (ordered event tuples), so a chaos
failure can name the exact faults that preceded it — and re-running
with the same seed replays them bit-for-bit.
"""

from __future__ import annotations

import logging
import random
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faults.classes import FaultClass, all_fault_names, make_fault

# module logger; self.log below is the injector's *event* log
_log = logging.getLogger("repro.faults")


class FaultInjector:
    """Seeded, bounded driver for a set of fault classes."""

    def __init__(self, seed: int,
                 faults: Optional[Iterable] = None,
                 **overrides) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        names = list(faults) if faults is not None else all_fault_names()
        self.faults: List[FaultClass] = [
            fault if isinstance(fault, FaultClass)
            else make_fault(fault, **overrides)
            for fault in names]
        #: fault-class name -> number of times it actually fired
        self.injected: Dict[str, int] = {f.name: 0 for f in self.faults}
        #: ordered (site, fault name, detail) event log
        self.log: List[Tuple[str, str, object]] = []
        self._by_site: Dict[str, List[FaultClass]] = {}
        for fault in self.faults:
            for site in fault.sites:
                self._by_site.setdefault(site, []).append(fault)

    # -- runtime faults -----------------------------------------------------

    def visit(self, site: str, context: Dict):
        """One fault-point visit: let every listener decide to fire."""
        result = None
        for fault in self._by_site.get(site, ()):
            if self.injected[fault.name] >= fault.max_injections:
                continue
            if self.rng.random() >= fault.rate:
                continue
            self.injected[fault.name] += 1
            try:
                fired = fault.fire(self.rng, site, context)
            except Exception as error:
                self.log.append((site, fault.name, repr(error)))
                raise
            self.log.append((site, fault.name, fired))
            _log.debug("fault %s fired at %s (seed %d)", fault.name,
                       site, self.seed)
            if fired is not None:
                result = fired
        return result

    # -- disk faults --------------------------------------------------------

    def mangle_repository(self, root) -> int:
        """Apply every disk fault class to a repository; returns the
        total number of corruptions introduced."""
        root = Path(root)
        total = 0
        for fault in self.faults:
            if not fault.disk:
                continue
            applied = fault.mangle(self.rng, root)
            if applied:
                self.injected[fault.name] += applied
                self.log.append(("repository", fault.name, applied))
            total += applied
        return total

    # -- reporting ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def summary(self) -> str:
        fired = {name: count for name, count in sorted(self.injected.items())
                 if count}
        if not fired:
            return f"injector(seed={self.seed}): no faults fired"
        parts = ", ".join(f"{name} x{count}"
                          for name, count in fired.items())
        return f"injector(seed={self.seed}): {parts}"
