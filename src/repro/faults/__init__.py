"""Deterministic fault injection for the translation stack.

The VM's contract is forward progress: translation is an optimization
over a correct interpreter, so *no* failure in the translation stack —
rotten persisted state, a crashing translator, a flipped bit in a code
cache — may change architected results or kill the run.  This package
makes that contract testable:

* :mod:`repro.faults.plane` — the fault-point hooks compiled into the
  production paths (no-ops unless an injector is armed);
* :mod:`repro.faults.classes` — the registry of fault classes, from
  torn ``meta.json`` writes to hotspot-detector misfires;
* :mod:`repro.faults.injector` — the seeded, bounded injector with a
  full event log (same seed => same failure sequence);
* :mod:`repro.faults.harness` — chaos runs: a faulted, warm-started run
  must produce architected state identical to the fault-free run.

See ``docs/robustness.md`` for the fault taxonomy and the recovery
guarantee each class is matched by, and ``make chaos`` for the gate.
"""

from repro.faults.classes import (
    FAULT_CLASSES,
    FaultClass,
    InjectedFault,
    InjectedTranslatorFault,
    all_fault_names,
    make_fault,
    register,
)
from repro.faults.injector import FaultInjector
from repro.faults.plane import fault_point, injecting

#: harness symbols are loaded lazily (PEP 562): the harness drives whole
#: CoDesignedVM runs, while the low-level fault *plane* is imported by
#: the translators themselves — an eager import here would be circular.
_HARNESS_SYMBOLS = ("ArchOutcome", "Baseline", "ChaosOutcome",
                    "modes_for", "needs_cluster", "needs_remote",
                    "prepare_baseline", "run_faulted", "run_matrix")


def __getattr__(name):
    if name in _HARNESS_SYMBOLS:
        from repro.faults import harness
        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FAULT_CLASSES",
    "ArchOutcome",
    "Baseline",
    "ChaosOutcome",
    "FaultClass",
    "FaultInjector",
    "InjectedFault",
    "InjectedTranslatorFault",
    "all_fault_names",
    "fault_point",
    "injecting",
    "make_fault",
    "needs_cluster",
    "needs_remote",
    "modes_for",
    "prepare_baseline",
    "register",
    "run_faulted",
    "run_matrix",
]
