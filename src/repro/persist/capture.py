"""Snapshot a live translation directory into persistable records."""

from __future__ import annotations

from typing import Dict, List

from repro.persist.format import serialize_translation
from repro.translator.code_cache import TranslationDirectory


def capture_translations(directory: TranslationDirectory,
                         memory) -> List[Dict]:
    """Serialize every currently installed translation.

    Only what is in the caches *now* is captured: translations lost to a
    wholesale flush earlier in the run are gone (which is exactly the
    cost the flush/retranslation counters quantify).  Unserializable
    translations (e.g. whose source bytes no longer decode) are skipped.
    """
    records: List[Dict] = []
    for cache in (directory.bbt_cache, directory.sbt_cache):
        for translation in cache.translations:
            record = serialize_translation(translation, memory)
            if record is not None:
                records.append(record)
    return records
