"""Warm-start loader: re-materialize persisted translations at VM boot.

For every record the loader

1. re-checks the **source fingerprint** against the freshly loaded
   program memory (a record translated from different bytes is stale and
   dropped);
2. rebuilds the micro-op stream and **re-encodes it at the new native
   address** handed out by the owning code cache — BC/JMP displacements
   are translation-relative, so only exit-stub and side-table anchors
   need rebasing;
3. re-binds the BBT profiling prologue to a freshly allocated countdown
   counter (the old counter address is dead VMM state from the previous
   process);
4. runs the stream through the translation **verifier rule-pack**; a
   record that violates any invariant is dropped, never installed, never
   executed;
5. installs through ``TranslationDirectory.install`` — the same path new
   translations take, so lookup tables, side tables and BBT->SBT
   redirects are wired identically to a cold translation.

After installation the loader eagerly **re-chains** exit stubs whose
targets were also loaded, and disables the countdown counters of BBT
copies superseded by a loaded SBT copy, so the warm VM starts in the
steady state the cold VM ended in.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass
from typing import Dict, List, Set, Tuple

from dataclasses import replace as _replace

from repro.faults.plane import fault_point
from repro.isa.fusible.encoding import UopEncodeError, encode_stream
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import R_SCRATCH0
from repro.persist.format import (
    PersistFormatError,
    materialize,
    source_matches,
    validate_record,
)
from repro.verify.verifier import verify_translation

log = logging.getLogger("repro.persist")


@dataclass
class LoadReport:
    """Outcome of one warm-start load (the persistent hit/miss story)."""

    attempted: int = 0
    loaded: int = 0
    bbt_loaded: int = 0
    sbt_loaded: int = 0
    bytes_loaded: int = 0
    chains_restored: int = 0
    #: drop reasons (these are the persistent-cache misses)
    stale_source: int = 0
    corrupt: int = 0
    verifier_rejected: int = 0
    capacity_skipped: int = 0
    duplicate_skipped: int = 0
    #: manifest entries whose object file was unreadable or missing
    missing_objects: int = 0
    #: records that blew up the materialize/encode/install machinery
    #: with an unforeseen error — quarantined (skipped), never fatal
    undecodable: int = 0

    @property
    def dropped(self) -> int:
        return (self.stale_source + self.corrupt +
                self.verifier_rejected + self.capacity_skipped +
                self.missing_objects + self.undecodable)

    def to_dict(self) -> Dict[str, int]:
        """Flat counter dict (``CoDesignedVM.stats()['persist']``)."""
        counters = asdict(self)
        counters["dropped"] = self.dropped
        return counters

    def format(self) -> str:
        lines = [f"warm start: {self.loaded}/{self.attempted} "
                 f"translation(s) loaded "
                 f"({self.bbt_loaded} bbt / {self.sbt_loaded} sbt, "
                 f"{self.bytes_loaded} bytes)",
                 f"chains restored:  {self.chains_restored}"]
        if self.dropped:
            lines.append(
                f"quarantined:      {self.dropped} record(s) skipped "
                f"(stale {self.stale_source}, corrupt {self.corrupt}, "
                f"verifier {self.verifier_rejected}, "
                f"capacity {self.capacity_skipped}, "
                f"missing {self.missing_objects}, "
                f"undecodable {self.undecodable})")
        return "\n".join(lines)


def _rebind_counter(uops, old_addr: int, new_addr: int):
    """Point the profiling prologue at a freshly allocated counter.

    The prologue shape is fixed (see ``emit.profile_prologue``): the
    LUI/ORI pair at positions 1 and 2 materializes the counter address
    into R_SCRATCH0.  Anything else means the record does not match its
    metadata and is treated as corrupt.
    """
    old_high = (old_addr >> 13) & 0x7FFFF
    old_low = old_addr & 0x1FFF
    if (len(uops) < 3
            or uops[1].op is not UOp.LUI or uops[1].rd != R_SCRATCH0
            or uops[1].imm != old_high
            or uops[2].op is not UOp.ORI or uops[2].rd != R_SCRATCH0
            or uops[2].imm != old_low):
        raise PersistFormatError(
            "profiling prologue does not match recorded counter")
    out = list(uops)
    out[1] = _replace(uops[1], imm=(new_addr >> 13) & 0x7FFFF)
    out[2] = _replace(uops[2], imm=new_addr & 0x1FFF)
    return out


class WarmStartLoader:
    """Loads persisted records into a booted :class:`VMRuntime`."""

    def __init__(self, runtime, rechain: bool = True) -> None:
        self.runtime = runtime
        self.rechain = rechain and runtime.enable_chaining

    def load_records(self, records: List[Dict]) -> LoadReport:
        """Install every loadable record; returns the hit/miss report."""
        report = LoadReport()
        directory = self.runtime.directory
        memory = self.runtime.memory
        tracer = getattr(self.runtime, "tracer", None)
        ledger = getattr(self.runtime, "ledger", None)
        phase_costs = getattr(self.runtime, "phase_costs", None)

        def reject(reason: str, record: Dict) -> None:
            if tracer is not None:
                entry = record.get("entry")
                tracer.instant(
                    "warmstart.reject", reason=reason,
                    kind=str(record.get("kind")),
                    entry=f"{entry:#x}" if isinstance(entry, int)
                    else str(entry))

        loaded = []
        seen: Set[Tuple[str, int]] = set()
        # BBT copies first so a following SBT copy installs its redirect
        ordered = sorted(records,
                         key=lambda r: (r.get("kind") != "bbt",
                                        r.get("entry", 0)
                                        if isinstance(r.get("entry"), int)
                                        else 0))
        for record in ordered:
            report.attempted += 1
            try:
                validate_record(record)
            except PersistFormatError as error:
                report.corrupt += 1
                reject("corrupt", record)
                log.warning("warm start: corrupt record skipped: %s",
                            error)
                continue
            kind, entry = record["kind"], record["entry"]
            if (kind, entry) in seen:
                report.duplicate_skipped += 1
                reject("duplicate", record)
                continue
            if not source_matches(record, memory):
                report.stale_source += 1
                reject("stale-source", record)
                continue
            cache = directory.cache_for(kind)
            try:
                translation = materialize(record, cache.reserve())
                uops = translation.uops
                if kind == "bbt" and record["counter_addr"] is not None:
                    new_counter = self.runtime.bbt.allocate_counter()
                    uops = _rebind_counter(uops,
                                           record["counter_addr"],
                                           new_counter)
                    translation.uops = uops
                    translation.counter_addr = new_counter
                data = encode_stream(uops)
            except (PersistFormatError, UopEncodeError) as error:
                report.corrupt += 1
                reject("corrupt", record)
                log.warning("warm start: record %s@%#x failed to "
                            "materialize: %s", kind, entry, error)
                continue
            except (AssertionError, KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                # a record the format layer accepted but the rebuild
                # machinery cannot digest: quarantine it, keep booting
                report.undecodable += 1
                reject("undecodable", record)
                log.warning("warm start: record %s@%#x is undecodable "
                            "(%s: %s); skipped", kind, entry,
                            type(error).__name__, error)
                continue
            if not cache.would_fit(len(data)):
                report.capacity_skipped += 1
                reject("capacity", record)
                continue
            # the PR-1 rule-pack gates every install: a record that
            # breaks an invariant is dropped, never executed
            # (fault_point lets chaos runs force a false positive)
            if fault_point("loader.verify", entry=entry, kind=kind) \
                    or not verify_translation(translation).ok:
                report.verifier_rejected += 1
                reject("verifier", record)
                log.warning("warm start: record %s@%#x rejected by "
                            "the verifier; skipped", kind, entry)
                continue
            directory.install(data, translation)
            # warm-start work is a startup phase of its own: charge the
            # deserialize/re-encode/screen cost to the run's ledger
            if ledger is not None and phase_costs is not None:
                ledger.charge("persist_load",
                              translation.instr_count
                              * phase_costs.persist_load_cpi,
                              block=entry)
            if tracer is not None:
                tracer.instant("warmstart.load", kind=kind,
                               entry=f"{entry:#x}", bytes=len(data))
            seen.add((kind, entry))
            loaded.append(translation)
            report.loaded += 1
            report.bytes_loaded += len(data)
            if kind == "bbt":
                report.bbt_loaded += 1
            else:
                report.sbt_loaded += 1

        self._relink(loaded, report)
        if tracer is not None:
            tracer.instant("warmstart.done", loaded=report.loaded,
                           dropped=report.dropped,
                           chains_restored=report.chains_restored)
        self.runtime.persist_report = report
        return report

    def _relink(self, loaded, report: LoadReport) -> None:
        """Restore steady-state linkage among the loaded translations."""
        directory = self.runtime.directory
        if self.rechain:
            for translation in loaded:
                for stub in translation.exits:
                    if directory.request_chain(stub):
                        report.chains_restored += 1
        # a loaded SBT copy supersedes the BBT copy's profiling: stop the
        # countdown so the warm run does not re-trigger promotion
        from repro.vmm.runtime import _COUNTER_DISABLED
        for translation in loaded:
            if (translation.kind == "bbt"
                    and translation.counter_addr is not None
                    and directory.has_sbt(translation.entry)):
                self.runtime.memory.write_u32(translation.counter_addr,
                                              _COUNTER_DISABLED)
