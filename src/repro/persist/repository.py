"""The on-disk translation repository.

Layout (all JSON, no external dependencies)::

    <root>/
        meta.json                  # format version, LRU clock, object index
        objects/<key>.json         # one record per content key
        manifests/<cfg>__<img>.json  # entry list per (config, image) pair

Objects are content-addressed (see :mod:`repro.persist.format`), so the
same translation saved under two configurations that emit identical code
is stored once.  Manifests bind a (config fingerprint, image
fingerprint) pair to the set of object keys that warm-start it; a config
or program change selects a different manifest and never sees stale
objects.

Eviction is LRU over a logical clock: every save or load touch bumps the
repository clock and stamps the objects involved.  :meth:`gc` drops the
least-recently-used objects until the store fits a byte budget, then
strips dangling references from every manifest.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.persist.format import (
    FORMAT_VERSION,
    PersistFormatError,
    validate_record,
)


@dataclass
class RepositoryStats:
    """Snapshot of repository contents (the ``cache stats`` CLI)."""

    root: str
    objects: int = 0
    total_bytes: int = 0
    clock: int = 0
    manifests: List[Dict] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"repository: {self.root}",
                 f"objects:    {self.objects} "
                 f"({self.total_bytes} bytes)",
                 f"clock:      {self.clock}"]
        if not self.manifests:
            lines.append("manifests:  none")
        for manifest in self.manifests:
            lines.append(
                f"manifest {manifest['name']}: "
                f"{manifest['entries']} entries "
                f"({manifest['bbt']} bbt / {manifest['sbt']} sbt), "
                f"saved at clock {manifest['saved_clock']}")
        return "\n".join(lines)


@dataclass
class GCReport:
    """Outcome of one eviction pass."""

    budget_bytes: int
    evicted_objects: int = 0
    evicted_bytes: int = 0
    remaining_objects: int = 0
    remaining_bytes: int = 0

    def format(self) -> str:
        return (f"gc: evicted {self.evicted_objects} object(s) / "
                f"{self.evicted_bytes} bytes; "
                f"{self.remaining_objects} object(s) / "
                f"{self.remaining_bytes} bytes remain "
                f"(budget {self.budget_bytes})")


class TranslationRepository:
    """Content-addressed persistent store for translation records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifests_dir = self.root / "manifests"
        self.meta_path = self.root / "meta.json"

    # -- meta handling ------------------------------------------------------

    def _load_meta(self) -> Dict:
        try:
            with open(self.meta_path) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            meta = {}
        if meta.get("format") != FORMAT_VERSION:
            meta = {"format": FORMAT_VERSION, "clock": 0, "objects": {}}
        meta.setdefault("clock", 0)
        meta.setdefault("objects", {})
        return meta

    def _write_meta(self, meta: Dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.meta_path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(meta, handle, indent=1, sort_keys=True)
        os.replace(tmp, self.meta_path)

    @staticmethod
    def _manifest_name(config_fp: str, image_fp: str) -> str:
        return f"{config_fp}__{image_fp}.json"

    def _manifest_path(self, config_fp: str, image_fp: str) -> Path:
        return self.manifests_dir / self._manifest_name(config_fp,
                                                        image_fp)

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    # -- save ---------------------------------------------------------------

    def save(self, records: List[Dict], config_fp: str, image_fp: str,
             config_name: str = "") -> int:
        """Persist records under one (config, image) manifest.

        Returns the number of records written.  Existing objects with
        the same content key are reused (their LRU stamp is refreshed);
        the manifest is replaced wholesale so it exactly mirrors the
        saved snapshot.
        """
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.manifests_dir.mkdir(parents=True, exist_ok=True)
        meta = self._load_meta()
        meta["clock"] += 1
        clock = meta["clock"]

        keys: List[str] = []
        saved = 0
        for record in records:
            if record is None:
                continue
            key = record["key"]
            path = self._object_path(key)
            if not path.exists():
                with open(path, "w") as handle:
                    json.dump(record, handle)
                saved += 1
            size = path.stat().st_size
            meta["objects"][key] = {"last_used": clock, "size": size,
                                    "kind": record["kind"],
                                    "entry": record["entry"]}
            keys.append(key)

        manifest = {
            "format": FORMAT_VERSION,
            "config_fingerprint": config_fp,
            "image_fingerprint": image_fp,
            "config_name": config_name,
            "saved_clock": clock,
            "entries": keys,
        }
        with open(self._manifest_path(config_fp, image_fp), "w") as handle:
            json.dump(manifest, handle, indent=1)
        self._write_meta(meta)
        return saved

    # -- load ---------------------------------------------------------------

    def load(self, config_fp: str, image_fp: str) -> List[Dict]:
        """Fetch the validated records for one (config, image) pair.

        Records that fail structural validation (truncated files,
        tampered payloads, key mismatches) are silently skipped here and
        reported by the loader as corrupt via the manifest/record count
        difference.  Returns ``[]`` when no matching manifest exists.
        """
        manifest = self._read_manifest(config_fp, image_fp)
        if manifest is None:
            return []
        meta = self._load_meta()
        meta["clock"] += 1
        clock = meta["clock"]
        records: List[Dict] = []
        for key in manifest.get("entries", ()):
            record = self._read_object(key)
            if record is None:
                continue
            records.append(record)
            if key in meta["objects"]:
                meta["objects"][key]["last_used"] = clock
        self._write_meta(meta)
        return records

    def manifest_entry_count(self, config_fp: str,
                             image_fp: str) -> Optional[int]:
        """Entries listed in the manifest, or None if absent."""
        manifest = self._read_manifest(config_fp, image_fp)
        if manifest is None:
            return None
        return len(manifest.get("entries", ()))

    def _read_manifest(self, config_fp: str,
                       image_fp: str) -> Optional[Dict]:
        try:
            with open(self._manifest_path(config_fp, image_fp)) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("format") != FORMAT_VERSION:
            return None
        if manifest.get("config_fingerprint") != config_fp or \
                manifest.get("image_fingerprint") != image_fp:
            return None  # tampered or misplaced manifest
        return manifest

    def _read_object(self, key: str) -> Optional[Dict]:
        try:
            with open(self._object_path(key)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            validate_record(record)
        except PersistFormatError:
            return None
        if record["key"] != key:
            return None  # stored under the wrong name
        return record

    # -- stats / gc ---------------------------------------------------------

    def stats(self) -> RepositoryStats:
        meta = self._load_meta()
        stats = RepositoryStats(root=str(self.root), clock=meta["clock"])
        stats.objects = len(meta["objects"])
        stats.total_bytes = sum(entry["size"]
                                for entry in meta["objects"].values())
        if self.manifests_dir.is_dir():
            for path in sorted(self.manifests_dir.glob("*.json")):
                try:
                    with open(path) as handle:
                        manifest = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    continue
                keys = manifest.get("entries", [])
                kinds = [meta["objects"].get(key, {}).get("kind")
                         for key in keys]
                stats.manifests.append({
                    "name": path.stem,
                    "config_name": manifest.get("config_name", ""),
                    "entries": len(keys),
                    "bbt": sum(1 for kind in kinds if kind == "bbt"),
                    "sbt": sum(1 for kind in kinds if kind == "sbt"),
                    "saved_clock": manifest.get("saved_clock", 0),
                })
        return stats

    def gc(self, budget_bytes: int) -> GCReport:
        """Evict least-recently-used objects until under the budget."""
        meta = self._load_meta()
        report = GCReport(budget_bytes=budget_bytes)
        total = sum(entry["size"] for entry in meta["objects"].values())
        # oldest first; ties broken by key for determinism
        order = sorted(meta["objects"].items(),
                       key=lambda item: (item[1]["last_used"], item[0]))
        evicted = set()
        for key, entry in order:
            if total <= budget_bytes:
                break
            try:
                self._object_path(key).unlink()
            except OSError:
                pass
            total -= entry["size"]
            report.evicted_bytes += entry["size"]
            report.evicted_objects += 1
            evicted.add(key)
            del meta["objects"][key]
        if evicted:
            self._strip_manifest_refs(evicted)
        self._write_meta(meta)
        report.remaining_objects = len(meta["objects"])
        report.remaining_bytes = total
        return report

    def _strip_manifest_refs(self, evicted) -> None:
        if not self.manifests_dir.is_dir():
            return
        for path in self.manifests_dir.glob("*.json"):
            try:
                with open(path) as handle:
                    manifest = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            entries = manifest.get("entries", [])
            kept = [key for key in entries if key not in evicted]
            if len(kept) == len(entries):
                continue
            if kept:
                manifest["entries"] = kept
                with open(path, "w") as handle:
                    json.dump(manifest, handle, indent=1)
            else:
                path.unlink()
