"""The on-disk translation repository.

Layout (all JSON, no external dependencies)::

    <root>/
        meta.json                  # format version, LRU clock, object index
        objects/<key>.json         # one record per content key
        manifests/<cfg>__<img>.json  # entry list per (config, image) pair

Objects are content-addressed (see :mod:`repro.persist.format`), so the
same translation saved under two configurations that emit identical code
is stored once.  Manifests bind a (config fingerprint, image
fingerprint) pair to the set of object keys that warm-start it; a config
or program change selects a different manifest and never sees stale
objects.

Eviction is LRU over a logical clock: every save or load touch bumps the
repository clock and stamps the objects involved.  :meth:`gc` drops the
least-recently-used objects until the store fits a byte budget, then
strips dangling references from every manifest.

Crash safety
------------
Every file the repository writes — meta, manifests, objects — goes
through a journaled two-step (write ``<name>.tmp``, fsync, then atomic
``os.replace``), so a crash mid-write leaves either the old content or
a stray ``.tmp`` file, never a torn JSON document; the fsync before the
rename means a power cut cannot journal an *empty-but-renamed* file
either (rename metadata reaching disk before the data would otherwise
do exactly that).  Reads treat any
unreadable or invalid file as absent; a corrupt or missing
``meta.json`` is *rebuilt* from the objects directory instead of
wiping the store.  I/O errors during save/load are absorbed
(``io_errors`` counts them): a failed object write just drops that
record from the manifest, a failed LRU stamp loses nothing but
recency.  :meth:`fsck` detects, quarantines and repairs whatever
damage accumulates anyway (see ``docs/robustness.md``).

Concurrency
-----------
Writers (``save``, ``gc``, repairing ``fsck``) serialize on the
file-based :class:`~repro.persist.lease.WriterLease`, so concurrent
savers from many processes — or the cache server's handler threads —
never interleave the object-write -> manifest -> meta sequence, and a
gc pass can never evict objects a mid-flight save's manifest is about
to reference.  Readers stay lease-free: loads only race the LRU
recency stamp, which is reconstructable state.  A writer that cannot
get the lease degrades (saves/evicts nothing, counts
``lease_failures``) instead of blocking the VM.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.faults.plane import fault_point
from repro.persist.format import (
    FORMAT_VERSION,
    PersistFormatError,
    validate_record,
)
from repro.persist.lease import DEFAULT_TIMEOUT, WriterLease

log = logging.getLogger("repro.persist")


@dataclass
class RepositoryStats:
    """Snapshot of repository contents (the ``cache stats`` CLI)."""

    root: str
    objects: int = 0
    total_bytes: int = 0
    clock: int = 0
    manifests: List[Dict] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"repository: {self.root}",
                 f"objects:    {self.objects} "
                 f"({self.total_bytes} bytes)",
                 f"clock:      {self.clock}"]
        if not self.manifests:
            lines.append("manifests:  none")
        for manifest in self.manifests:
            lines.append(
                f"manifest {manifest['name']}: "
                f"{manifest['entries']} entries "
                f"({manifest['bbt']} bbt / {manifest['sbt']} sbt), "
                f"saved at clock {manifest['saved_clock']}")
        return "\n".join(lines)


@dataclass
class GCReport:
    """Outcome of one eviction pass."""

    budget_bytes: int
    evicted_objects: int = 0
    evicted_bytes: int = 0
    remaining_objects: int = 0
    remaining_bytes: int = 0
    #: the writer lease stayed contended: nothing was evicted
    lease_busy: bool = False

    def format(self) -> str:
        if self.lease_busy:
            return ("gc: writer lease busy (a save is in flight); "
                    "nothing evicted")
        return (f"gc: evicted {self.evicted_objects} object(s) / "
                f"{self.evicted_bytes} bytes; "
                f"{self.remaining_objects} object(s) / "
                f"{self.remaining_bytes} bytes remain "
                f"(budget {self.budget_bytes})")


class TranslationRepository:
    """Content-addressed persistent store for translation records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifests_dir = self.root / "manifests"
        self.quarantine_dir = self.root / "quarantine"
        self.meta_path = self.root / "meta.json"
        #: I/O failures absorbed instead of propagated (this process)
        self.io_errors = 0
        #: times meta.json had to be rebuilt from the objects dir
        self.meta_recoveries = 0
        #: writer-lease acquisitions that timed out (save/gc degraded)
        self.lease_failures = 0

    def writer_lease(self) -> WriterLease:
        """A fresh lease handle on this repository's lock file."""
        return WriterLease(self.root)

    # -- journaled I/O ------------------------------------------------------

    def _write_json(self, path: Path, payload: Dict,
                    indent: Optional[int] = None) -> bool:
        """Journaled write: tmp file + atomic rename.

        Returns False (and counts the failure) instead of raising, so a
        full disk or a flaky device degrades to a smaller/staler store,
        never a crashed VM or a torn document.

        The journal name is unique per process+thread: concurrent
        loaders all LRU-touch ``meta.json`` (the cache server's handler
        threads do this for parallel pulls), and a shared ``.tmp`` name
        would make one writer's rename eat another's journal file.
        Last rename wins; fsck still collects any stray ``*.tmp``.
        """
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")
        try:
            fault_point("repo.write", path=str(path))
            with open(tmp, "w") as handle:
                json.dump(payload, handle, indent=indent, sort_keys=True)
                handle.flush()
                # the data must be durable *before* the rename is: a
                # rename journaled ahead of its contents would survive
                # a crash as an empty-but-renamed file
                fault_point("repo.fsync", path=str(path))
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            return True
        except OSError as error:
            self.io_errors += 1
            log.warning("repository write of %s failed: %s", path, error)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    # -- meta handling ------------------------------------------------------

    def _load_meta(self) -> Dict:
        try:
            fault_point("repo.read", path=str(self.meta_path))
            with open(self.meta_path) as handle:
                meta = json.load(handle)
            damaged = not isinstance(meta, dict) or \
                meta.get("format") != FORMAT_VERSION
        except (OSError, ValueError):
            # missing (fresh repo, or crash between object and meta
            # writes), unreadable, or torn: rebuild from ground truth
            meta, damaged = {}, True
        if damaged or not isinstance(meta, dict):
            # torn write / bit rot / version skew: the objects are the
            # ground truth, the index is reconstructable state
            meta = self._rebuild_meta()
        meta.setdefault("format", FORMAT_VERSION)
        meta.setdefault("clock", 0)
        meta.setdefault("objects", {})
        return meta

    def _rebuild_meta(self) -> Dict:
        """Reconstruct the object index by scanning the objects dir."""
        meta = {"format": FORMAT_VERSION, "clock": 0, "objects": {}}
        if not self.objects_dir.is_dir() or \
                not any(self.objects_dir.glob("*.json")):
            return meta    # fresh/empty repo: nothing to recover
        self.meta_recoveries += 1
        for path in sorted(self.objects_dir.glob("*.json")):
            record = self._read_object(path.stem)
            if record is None:
                continue        # corrupt object: left for fsck
            try:
                size = path.stat().st_size
            except OSError:
                continue
            meta["objects"][record["key"]] = {
                "last_used": 0, "size": size,
                "kind": record["kind"], "entry": record["entry"]}
        log.warning("meta.json was missing or corrupt; rebuilt index "
                    "with %d object(s) from %s",
                    len(meta["objects"]), self.objects_dir)
        return meta

    def _write_meta(self, meta: Dict) -> bool:
        self.root.mkdir(parents=True, exist_ok=True)
        return self._write_json(self.meta_path, meta, indent=1)

    @staticmethod
    def _manifest_name(config_fp: str, image_fp: str) -> str:
        return f"{config_fp}__{image_fp}.json"

    def _manifest_path(self, config_fp: str, image_fp: str) -> Path:
        return self.manifests_dir / self._manifest_name(config_fp,
                                                        image_fp)

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    # -- save ---------------------------------------------------------------

    def save(self, records: List[Dict], config_fp: str, image_fp: str,
             config_name: str = "",
             lease_timeout: float = DEFAULT_TIMEOUT,
             merge: bool = False) -> int:
        """Persist records under one (config, image) manifest.

        Returns the number of records written.  Existing objects with
        the same content key are reused (their LRU stamp is refreshed).
        By default the manifest is replaced wholesale so it exactly
        mirrors the saved snapshot; with ``merge=True`` the new keys
        are *unioned* with the manifest's existing entries and the
        result is sorted, so concurrent writers compose — any push
        order converges on the identical entry list (the cluster tier's
        replicas rely on this to reach byte-equal manifests).

        The whole sequence runs under the writer lease; if the lease
        stays contended past ``lease_timeout`` nothing is written and 0
        is returned (the VM keeps running, this snapshot is lost).
        """
        lease = self.writer_lease()
        if not lease.acquire(timeout=lease_timeout):
            self.lease_failures += 1
            log.warning("save skipped: writer lease at %s stayed "
                        "contended for %.1fs", lease.path, lease_timeout)
            return 0
        try:
            return self._save_locked(records, config_fp, image_fp,
                                     config_name, merge=merge)
        finally:
            lease.release()

    def _save_locked(self, records: List[Dict], config_fp: str,
                     image_fp: str, config_name: str,
                     merge: bool = False) -> int:
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.manifests_dir.mkdir(parents=True, exist_ok=True)
        meta = self._load_meta()
        meta["clock"] += 1
        clock = meta["clock"]

        keys: List[str] = []
        saved = 0
        for record in records:
            if record is None:
                continue
            key = record["key"]
            path = self._object_path(key)
            try:
                exists = path.exists()
            except OSError:
                exists = False
            if not exists:
                if not self._write_json(path, record):
                    continue    # failed write: leave it out of the
                    #             manifest, the rest of the save stands
                saved += 1
            try:
                size = path.stat().st_size
            except OSError as error:
                self.io_errors += 1
                log.warning("cannot stat %s: %s", path, error)
                continue
            meta["objects"][key] = {"last_used": clock, "size": size,
                                    "kind": record["kind"],
                                    "entry": record["entry"]}
            keys.append(key)

        if merge:
            previous = self._read_manifest(config_fp, image_fp)
            if previous is not None:
                existing = [key for key in previous.get("entries", ())
                            if isinstance(key, str)]
                keys = sorted(set(keys) | set(existing))
        manifest = {
            "format": FORMAT_VERSION,
            "config_fingerprint": config_fp,
            "image_fingerprint": image_fp,
            "config_name": config_name,
            "saved_clock": clock,
            "entries": keys,
        }
        self._write_json(self._manifest_path(config_fp, image_fp),
                         manifest, indent=1)
        self._write_meta(meta)
        return saved

    # -- load ---------------------------------------------------------------

    def load(self, config_fp: str, image_fp: str) -> List[Dict]:
        """Fetch the validated records for one (config, image) pair.

        Records that fail structural validation (truncated files,
        tampered payloads, key mismatches) are silently skipped here and
        reported by the loader as corrupt via the manifest/record count
        difference.  Returns ``[]`` when no matching manifest exists.
        """
        manifest = self._read_manifest(config_fp, image_fp)
        if manifest is None:
            return []
        meta = self._load_meta()
        meta["clock"] += 1
        clock = meta["clock"]
        records: List[Dict] = []
        for key in manifest.get("entries", ()):
            record = self._read_object(key)
            if record is None:
                continue
            records.append(record)
            if key in meta["objects"]:
                meta["objects"][key]["last_used"] = clock
        self._write_meta(meta)
        return records

    def manifest_entry_count(self, config_fp: str,
                             image_fp: str) -> Optional[int]:
        """Entries listed in the manifest, or None if absent."""
        manifest = self._read_manifest(config_fp, image_fp)
        if manifest is None:
            return None
        return len(manifest.get("entries", ()))

    def _read_manifest(self, config_fp: str,
                       image_fp: str) -> Optional[Dict]:
        path = self._manifest_path(config_fp, image_fp)
        try:
            fault_point("repo.read", path=str(path))
            with open(path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("format") != FORMAT_VERSION:
            return None
        if manifest.get("config_fingerprint") != config_fp or \
                manifest.get("image_fingerprint") != image_fp:
            return None  # tampered or misplaced manifest
        return manifest

    def _read_object(self, key: str) -> Optional[Dict]:
        path = self._object_path(key)
        try:
            fault_point("repo.read", path=str(path))
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            validate_record(record)
        except PersistFormatError:
            return None
        if record["key"] != key:
            return None  # stored under the wrong name
        return record

    # -- stats / gc ---------------------------------------------------------

    def stats(self) -> RepositoryStats:
        meta = self._load_meta()
        stats = RepositoryStats(root=str(self.root), clock=meta["clock"])
        stats.objects = len(meta["objects"])
        stats.total_bytes = sum(entry["size"]
                                for entry in meta["objects"].values())
        if self.manifests_dir.is_dir():
            for path in sorted(self.manifests_dir.glob("*.json")):
                try:
                    fault_point("repo.read", path=str(path))
                    with open(path) as handle:
                        manifest = json.load(handle)
                except (OSError, ValueError):
                    continue
                keys = manifest.get("entries", [])
                kinds = [meta["objects"].get(key, {}).get("kind")
                         for key in keys]
                stats.manifests.append({
                    "name": path.stem,
                    "config_name": manifest.get("config_name", ""),
                    "entries": len(keys),
                    "bbt": sum(1 for kind in kinds if kind == "bbt"),
                    "sbt": sum(1 for kind in kinds if kind == "sbt"),
                    "saved_clock": manifest.get("saved_clock", 0),
                })
        return stats

    def gc(self, budget_bytes: int,
           lease_timeout: float = DEFAULT_TIMEOUT) -> GCReport:
        """Evict least-recently-used objects until under the budget.

        Runs under the writer lease: a gc that raced a concurrent save
        could otherwise evict objects the mid-flight manifest still
        references.  When the lease stays contended past
        ``lease_timeout`` the report comes back with ``lease_busy`` set
        and nothing evicted.
        """
        lease = self.writer_lease()
        if not lease.acquire(timeout=lease_timeout):
            self.lease_failures += 1
            log.warning("gc skipped: writer lease at %s stayed "
                        "contended for %.1fs", lease.path, lease_timeout)
            return GCReport(budget_bytes=budget_bytes, lease_busy=True)
        try:
            return self._gc_locked(budget_bytes)
        finally:
            lease.release()

    def _gc_locked(self, budget_bytes: int) -> GCReport:
        meta = self._load_meta()
        report = GCReport(budget_bytes=budget_bytes)
        total = sum(entry["size"] for entry in meta["objects"].values())
        # oldest first; ties broken by key for determinism
        order = sorted(meta["objects"].items(),
                       key=lambda item: (item[1]["last_used"], item[0]))
        evicted = set()
        for key, entry in order:
            if total <= budget_bytes:
                break
            try:
                self._object_path(key).unlink()
            except OSError:
                pass
            total -= entry["size"]
            report.evicted_bytes += entry["size"]
            report.evicted_objects += 1
            evicted.add(key)
            del meta["objects"][key]
        if evicted:
            self._strip_manifest_refs(evicted)
        self._write_meta(meta)
        report.remaining_objects = len(meta["objects"])
        report.remaining_bytes = total
        return report

    # -- fsck ---------------------------------------------------------------

    def fsck(self, repair: bool = False):
        """Check (and optionally repair) the on-disk store.

        See :func:`repro.persist.fsck.fsck_repository`; corrupt objects
        are quarantined under ``<root>/quarantine/``, the index and
        manifests are reconciled against the surviving objects.  A
        repairing pass takes the writer lease (best effort — a check
        pass, or a repair that cannot get the lease, proceeds lock-free
        exactly as before).
        """
        from repro.persist.fsck import fsck_repository
        lease = self.writer_lease() if repair else None
        locked = lease is not None and lease.acquire(timeout=2.0)
        try:
            return fsck_repository(self, repair=repair)
        finally:
            if locked:
                lease.release()

    def _strip_manifest_refs(self, evicted) -> None:
        if not self.manifests_dir.is_dir():
            return
        for path in self.manifests_dir.glob("*.json"):
            try:
                fault_point("repo.read", path=str(path))
                with open(path) as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            entries = manifest.get("entries", [])
            kept = [key for key in entries if key not in evicted]
            if len(kept) == len(entries):
                continue
            if kept:
                manifest["entries"] = kept
                self._write_json(path, manifest, indent=1)
            else:
                try:
                    path.unlink()
                except OSError:
                    pass
