"""``repro cache fsck`` — repository consistency check and repair.

The repository is designed so that readers survive arbitrary damage
(corrupt files read as absent, a lost index is rebuilt), but damage
left in place costs every boot: corrupt objects are re-read and
re-rejected, manifests reference records that no longer load, stray
journal files accumulate.  fsck walks the whole store once and settles
it:

=====================  ===========================================
finding                repair
=====================  ===========================================
stray ``*.tmp`` file   deleted (incomplete journaled write)
corrupt/invalid meta   rebuilt from the objects directory
corrupt object         moved to ``<root>/quarantine/`` (kept for
                       post-mortem, never loaded again)
object not in index    indexed (crash between object and meta write)
index entry w/o file   dropped from the index
corrupt manifest       deleted (that (config, image) pair boots cold)
manifest ref to a      reference stripped (the rest of the manifest
missing/bad object     still warm-starts)
=====================  ===========================================

``fsck(repair=False)`` only reports; ``repair=True`` applies the right
column.  After a repairing pass a second fsck is clean — the chaos gate
(``make chaos``) asserts exactly that for every disk fault class.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.persist.format import (
    FORMAT_VERSION,
    PersistFormatError,
    validate_record,
)


@dataclass
class FsckReport:
    """Findings (and repairs) of one fsck pass."""

    root: str
    repaired: bool = False
    objects_checked: int = 0
    manifests_checked: int = 0
    #: findings
    stray_tmp_files: int = 0
    meta_corrupt: bool = False
    corrupt_objects: int = 0
    unindexed_objects: int = 0
    dangling_index_entries: int = 0
    corrupt_manifests: int = 0
    dangling_manifest_refs: int = 0
    #: repairs applied (repair=True only)
    quarantined_objects: int = 0
    details: List[str] = field(default_factory=list)

    @property
    def issues(self) -> int:
        return (self.stray_tmp_files + int(self.meta_corrupt)
                + self.corrupt_objects + self.unindexed_objects
                + self.dangling_index_entries + self.corrupt_manifests
                + self.dangling_manifest_refs)

    @property
    def ok(self) -> bool:
        return self.issues == 0

    def format(self) -> str:
        mode = "repair" if self.repaired else "check"
        lines = [f"fsck ({mode}): {self.root}",
                 f"objects checked:    {self.objects_checked} "
                 f"({self.corrupt_objects} corrupt, "
                 f"{self.unindexed_objects} unindexed)",
                 f"manifests checked:  {self.manifests_checked} "
                 f"({self.corrupt_manifests} corrupt, "
                 f"{self.dangling_manifest_refs} dangling refs)",
                 f"index:              "
                 f"{'corrupt/rebuilt' if self.meta_corrupt else 'ok'} "
                 f"({self.dangling_index_entries} dangling entries)",
                 f"journal leftovers:  {self.stray_tmp_files}"]
        if self.repaired and self.quarantined_objects:
            lines.append(f"quarantined:        "
                         f"{self.quarantined_objects} object(s) -> "
                         f"{self.root}/quarantine")
        lines.extend(f"  - {detail}" for detail in self.details)
        lines.append("status:             "
                     + ("clean" if self.ok
                        else f"{self.issues} issue(s)"
                             + (" repaired" if self.repaired
                                else " found")))
        return "\n".join(lines)


def _meta_is_valid(repo) -> bool:
    try:
        # reprolint: disable=FLT001 - fsck IS the repair path and runs
        # with injection disarmed; faulting it would break self-healing
        with open(repo.meta_path) as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        # acceptable only when there is nothing to index
        return not any(repo.objects_dir.glob("*.json")) \
            if repo.objects_dir.is_dir() else True
    except (OSError, ValueError):
        return False
    return (isinstance(meta, dict)
            and meta.get("format") == FORMAT_VERSION
            and isinstance(meta.get("objects"), dict)
            and isinstance(meta.get("clock"), int))


def fsck_repository(repo, repair: bool = False) -> FsckReport:
    """Walk one repository; report damage and optionally repair it."""
    report = FsckReport(root=str(repo.root), repaired=repair)
    if not repo.root.is_dir():
        report.details.append("repository directory does not exist "
                              "(nothing to check)")
        return report

    # 1. stray journal files from interrupted writes
    for directory in (repo.root, repo.objects_dir, repo.manifests_dir):
        if not directory.is_dir():
            continue
        for tmp in sorted(directory.glob("*.tmp")):
            report.stray_tmp_files += 1
            report.details.append(f"stray journal file {tmp.name}")
            if repair:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # 2. objects: every file must parse, validate, and match its name
    good_objects: Dict[str, Dict] = {}
    if repo.objects_dir.is_dir():
        for path in sorted(repo.objects_dir.glob("*.json")):
            report.objects_checked += 1
            problem = None
            try:
                record = json.loads(path.read_text())
                validate_record(record)
                if record["key"] != path.stem:
                    problem = "stored under the wrong key"
            except (OSError, ValueError) as error:
                problem = f"unreadable: {error}"
            except PersistFormatError as error:
                problem = f"invalid: {error}"
            if problem is None:
                good_objects[path.stem] = record
                continue
            report.corrupt_objects += 1
            report.details.append(f"object {path.name}: {problem}")
            if repair:
                repo.quarantine_dir.mkdir(parents=True, exist_ok=True)
                try:
                    path.rename(repo.quarantine_dir / path.name)
                    report.quarantined_objects += 1
                except OSError:
                    pass

    # 3. index <-> objects reconciliation
    meta_valid = _meta_is_valid(repo)
    if not meta_valid:
        report.meta_corrupt = True
        report.details.append("meta.json missing, torn, or invalid")
    meta = repo._load_meta()    # rebuilds from objects when damaged
    indexed = set(meta.get("objects", {}))
    for key in sorted(indexed - set(good_objects)):
        report.dangling_index_entries += 1
        report.details.append(f"index entry {key[:16]}... has no "
                              f"(valid) object file")
        if repair:
            del meta["objects"][key]
    for key in sorted(set(good_objects) - indexed):
        report.unindexed_objects += 1
        report.details.append(f"object {key[:16]}... missing from index")
        if repair:
            path = repo._object_path(key)
            try:
                size = path.stat().st_size
            except OSError:
                continue
            meta["objects"][key] = {
                "last_used": 0, "size": size,
                "kind": good_objects[key]["kind"],
                "entry": good_objects[key]["entry"]}

    # 4. manifests: structure, fingerprints-vs-filename, references
    if repo.manifests_dir.is_dir():
        for path in sorted(repo.manifests_dir.glob("*.json")):
            report.manifests_checked += 1
            problem = None
            manifest = None
            try:
                manifest = json.loads(path.read_text())
            except (OSError, ValueError) as error:
                problem = f"unreadable: {error}"
            if problem is None:
                if (not isinstance(manifest, dict)
                        or manifest.get("format") != FORMAT_VERSION
                        or not isinstance(manifest.get("entries"), list)):
                    problem = "invalid structure or format version"
                else:
                    expected = repo._manifest_name(
                        manifest.get("config_fingerprint", ""),
                        manifest.get("image_fingerprint", ""))
                    if expected != path.name:
                        problem = "fingerprints do not match filename"
            if problem is not None:
                report.corrupt_manifests += 1
                report.details.append(f"manifest {path.name}: {problem}")
                if repair:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                continue
            entries = manifest["entries"]
            kept = [key for key in entries if key in good_objects]
            dangling = len(entries) - len(kept)
            if dangling:
                report.dangling_manifest_refs += dangling
                report.details.append(
                    f"manifest {path.name}: {dangling} reference(s) "
                    f"to missing/corrupt objects")
                if repair:
                    if kept:
                        manifest["entries"] = kept
                        repo._write_json(path, manifest, indent=1)
                    else:
                        try:
                            path.unlink()
                        except OSError:
                            pass

    if repair:
        repo._write_meta(meta)
    return report
