"""Persistent translation cache — warm-start the VM from disk.

The startup transient the paper attacks comes from translating cold
code.  Its hardware assists cut the *per-instruction* cost of that
translation; this subsystem removes the *recurrence*: translations
produced during one run are serialized into an on-disk, content-
addressed repository and re-materialized into the code caches at the
next boot, so a workload's second launch starts warm and pays no BBT
cost for previously-seen blocks.

Pieces:

* :mod:`repro.persist.format` — record serialization, content keys,
  config/image fingerprints;
* :mod:`repro.persist.capture` — snapshot a live translation directory;
* :mod:`repro.persist.repository` — the on-disk store (manifests,
  content-addressed objects, LRU eviction);
* :mod:`repro.persist.loader` — boot-time re-materialization with
  source re-fingerprinting and verifier screening;
* :mod:`repro.persist.fsck` — consistency check and repair of the
  on-disk store (the ``repro cache fsck`` CLI);
* :mod:`repro.persist.lease` — the cross-process writer lease that
  serializes savers, gc and the cache server's handler threads;
* :mod:`repro.persist.remote` — the fault-tolerant client for the
  shared translation-cache server (:mod:`repro.cacheserver`): per-
  request timeouts, bounded retries with deterministic jitter, a
  circuit breaker, and graceful degradation to the local repository
  and ultimately to cold translation.

Typical use (see ``examples/warm_start.py`` and ``docs/persistence.md``)::

    vm = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm.load(image)
    vm.run()
    vm.save_translations("cache-dir")          # cold run, then snapshot

    vm2 = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm2.load(image)
    vm2.warm_start("cache-dir")                # zero BBT translations
    vm2.run()
"""

from repro.persist.capture import capture_translations
from repro.persist.format import (
    FORMAT_VERSION,
    PersistFormatError,
    config_fingerprint,
    image_fingerprint,
    materialize,
    record_key,
    serialize_translation,
    source_matches,
    validate_record,
)
from repro.persist.fsck import FsckReport, fsck_repository
from repro.persist.lease import LeaseBusyError, WriterLease
from repro.persist.loader import LoadReport, WarmStartLoader
from repro.persist.remote import (
    CircuitBreaker,
    RemoteError,
    RemoteRepository,
    RemoteStats,
    RemoteUnavailable,
    parse_address,
)
from repro.persist.repository import (
    GCReport,
    RepositoryStats,
    TranslationRepository,
)

__all__ = [
    "FORMAT_VERSION",
    "CircuitBreaker",
    "FsckReport",
    "GCReport",
    "LeaseBusyError",
    "LoadReport",
    "PersistFormatError",
    "RemoteError",
    "RemoteRepository",
    "RemoteStats",
    "RemoteUnavailable",
    "RepositoryStats",
    "TranslationRepository",
    "WarmStartLoader",
    "WriterLease",
    "capture_translations",
    "config_fingerprint",
    "fsck_repository",
    "image_fingerprint",
    "materialize",
    "parse_address",
    "record_key",
    "serialize_translation",
    "source_matches",
    "validate_record",
]
