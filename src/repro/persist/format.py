"""Serialization format for persisted translations.

A persisted translation is a *record*: a JSON-friendly dict holding the
canonical (un-chained, un-redirected) micro-op stream of one BBT or SBT
translation plus everything needed to re-materialize it in a fresh VM —
exit-stub offsets, side-table offsets, profiling-counter linkage, and a
**source fingerprint**.

Content addressing
------------------
Every record is keyed by a hash over its entire payload: the x86 bytes
it was translated from (per covered instruction), its kind and entry
address, and the emitted micro-op stream with its exit/side-table
anchors.  Validation recomputes the key, so any on-disk tampering is
caught as corruption; separately, the loader re-reads the recorded
source bytes from the *current* program memory, so a record whose
source changed since it was saved is dropped as stale, never installed.

Configuration fingerprints
--------------------------
Emitted code shape depends on translator configuration (hot threshold
via the profiling prologue, fusion, superblock formation parameters...).
:func:`config_fingerprint` hashes exactly the fields that influence
emitted streams; the repository keeps one manifest per
(config fingerprint, image fingerprint) pair, so a config or program
change invalidates the whole manifest rather than silently mixing
incompatible translations.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp
from repro.isa.x86lite.decoder import DecodeError, decode_at
from repro.isa.x86lite.registers import Cond
from repro.memory.address_space import MemoryError_
from repro.translator.code_cache import ExitStub, Translation

#: Bump on any incompatible change to the record layout.
FORMAT_VERSION = 1

#: Exit-stub kinds a record may carry (mirrors ExitStub.kind).
_EXIT_KINDS = frozenset({"jump", "fallthrough", "taken", "indirect",
                         "vmcall", "loop"})


class PersistFormatError(Exception):
    """A record is structurally invalid (corrupt or wrong version)."""


# -- fingerprints ----------------------------------------------------------

def config_fingerprint(config) -> str:
    """Hash the MachineConfig fields that shape emitted translations."""
    relevant = (
        FORMAT_VERSION,
        config.mode,
        config.initial_emulation,
        config.hot_threshold,
        config.hotspot_detector,
        config.superblock_bias,
        config.max_superblock_instrs,
        config.enable_fusion,
    )
    return hashlib.sha256(repr(relevant).encode()).hexdigest()[:16]


def image_fingerprint(image) -> str:
    """Hash a program image (entry point plus every segment)."""
    digest = hashlib.sha256(f"entry:{image.entry:#x}".encode())
    for segment in sorted(image.segments, key=lambda s: s.addr):
        digest.update(f"|{segment.name}@{segment.addr:#x}:".encode())
        digest.update(segment.data)
    return digest.hexdigest()[:16]


def record_key(record: Dict) -> str:
    """Content hash over the record's entire payload (minus the key).

    Covering the full payload — micro-ops, exits, side table, not just
    the source bytes — means any on-disk tampering or truncation shows
    up as a key mismatch during validation, before the verifier ever
    sees the record.
    """
    payload = {name: value for name, value in sorted(record.items())
               if name != "key"}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


# -- micro-op <-> list ------------------------------------------------------

def _uop_to_list(uop: MicroOp) -> List:
    return [uop.op.value, uop.rd, uop.rs1, uop.rs2, uop.imm,
            None if uop.cond is None else int(uop.cond),
            int(uop.fused), int(uop.setflags), uop.x86_addr]


def _uop_from_list(fields) -> MicroOp:
    if not isinstance(fields, (list, tuple)) or len(fields) != 9:
        raise PersistFormatError(f"malformed micro-op record: {fields!r}")
    name, rd, rs1, rs2, imm, cond, fused, setflags, x86_addr = fields
    try:
        op = UOp(name)
    except ValueError as error:
        raise PersistFormatError(f"unknown micro-op {name!r}") from error
    for value in (rd, rs1, rs2, imm):
        if not isinstance(value, int):
            raise PersistFormatError(f"non-integer field in {fields!r}")
    if cond is not None:
        try:
            cond = Cond(cond)
        except ValueError as error:
            raise PersistFormatError(
                f"bad condition {cond!r} in {fields!r}") from error
    if x86_addr is not None and not isinstance(x86_addr, int):
        raise PersistFormatError(f"bad x86_addr in {fields!r}")
    return MicroOp(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, cond=cond,
                   fused=bool(fused), setflags=bool(setflags),
                   x86_addr=x86_addr)


# -- translation -> record --------------------------------------------------

def _covered_source(translation: Translation, memory) -> List[List]:
    """``[addr, hexbytes]`` for every x86 instruction the stream covers.

    Coverage comes from the per-micro-op ``x86_addr`` metadata, so the
    fingerprint spans exactly the instructions whose semantics the
    translation encodes (including superblock constituents).
    """
    addrs = sorted({uop.x86_addr for uop in translation.uops
                    if uop.x86_addr is not None})
    source: List[List] = []
    for addr in addrs:
        instr = decode_at(memory, addr)
        nbytes = instr.next_addr - addr
        source.append([addr, memory.read(addr, nbytes).hex()])
    return source


def serialize_translation(translation: Translation,
                          memory) -> Optional[Dict]:
    """One translation -> JSON-ready record, or None if unserializable.

    Serializes the *canonical* stream (``translation.uops``), which chain
    patches and BBT->SBT redirects never touch — persisted translations
    are therefore always in their un-chained form and re-link naturally
    after loading.
    """
    if not translation.uops:
        return None
    try:
        source = _covered_source(translation, memory)
    except (DecodeError, MemoryError_):
        return None  # source no longer decodes (e.g. overwritten text)
    record = {
        "format": FORMAT_VERSION,
        "kind": translation.kind,
        "entry": translation.entry,
        "x86_addrs": list(translation.x86_addrs),
        "instr_count": translation.instr_count,
        "fused_pairs": translation.fused_pairs,
        "counter_addr": translation.counter_addr,
        "uops": [_uop_to_list(uop) for uop in translation.uops],
        "exits": [[stub.stub_addr - translation.native_addr, stub.kind,
                   stub.x86_target] for stub in translation.exits],
        "side_table": [[addr - translation.native_addr, x86_addr]
                       for addr, x86_addr
                       in sorted(translation.side_table.items())],
        "source": source,
    }
    record["key"] = record_key(record)
    return record


# -- record -> translation --------------------------------------------------

def validate_record(record: Dict) -> None:
    """Structural validation; raises PersistFormatError on corruption."""
    if not isinstance(record, dict):
        raise PersistFormatError("record is not an object")
    if record.get("format") != FORMAT_VERSION:
        raise PersistFormatError(
            f"format version {record.get('format')!r} != {FORMAT_VERSION}")
    if record.get("kind") not in ("bbt", "sbt"):
        raise PersistFormatError(f"bad kind {record.get('kind')!r}")
    for field in ("entry", "instr_count", "fused_pairs"):
        if not isinstance(record.get(field), int):
            raise PersistFormatError(f"bad {field!r} field")
    if not isinstance(record.get("uops"), list) or not record["uops"]:
        raise PersistFormatError("missing micro-op stream")
    for exit_fields in record.get("exits", ()):
        if (not isinstance(exit_fields, (list, tuple))
                or len(exit_fields) != 3
                or not isinstance(exit_fields[0], int)
                or exit_fields[1] not in _EXIT_KINDS
                or not (exit_fields[2] is None
                        or isinstance(exit_fields[2], int))):
            raise PersistFormatError(f"bad exit record {exit_fields!r}")
    for side in record.get("side_table", ()):
        if (not isinstance(side, (list, tuple)) or len(side) != 2
                or not all(isinstance(value, int) for value in side)):
            raise PersistFormatError(f"bad side-table record {side!r}")
    source = record.get("source")
    if not isinstance(source, list):
        raise PersistFormatError("missing source fingerprint")
    for entry in source:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], str)):
            raise PersistFormatError(f"bad source entry {entry!r}")
    if record.get("key") != record_key(record):
        raise PersistFormatError("content key does not match payload")


def source_matches(record: Dict, memory) -> bool:
    """Whether the record's source bytes match the current memory."""
    try:
        for addr, hexbytes in record["source"]:
            data = bytes.fromhex(hexbytes)
            if memory.read(addr, len(data)) != data:
                return False
    except (ValueError, MemoryError_):
        return False
    return True


def materialize(record: Dict, native_addr: int) -> Translation:
    """Build an installable Translation from a validated record.

    The caller supplies the target ``native_addr`` (the owning cache's
    ``reserve()``); exit stubs and side-table entries are rebased onto
    it.  Micro-op displacements (BC/JMP) are translation-relative and
    need no adjustment.
    """
    uops = [_uop_from_list(fields) for fields in record["uops"]]
    translation = Translation(
        entry=record["entry"], kind=record["kind"],
        native_addr=native_addr,
        x86_addrs=list(record["x86_addrs"]),
        instr_count=record["instr_count"],
        uop_count=len(uops),
        fused_pairs=record["fused_pairs"],
        uops=uops)
    for offset, kind, x86_target in record["exits"]:
        translation.exits.append(ExitStub(
            stub_addr=native_addr + offset, kind=kind,
            x86_target=x86_target))
    for offset, x86_addr in record["side_table"]:
        translation.side_table[native_addr + offset] = x86_addr
    return translation
