"""Deadline budgets and retry budgets for the remote client stack.

Overload protection (docs/overload.md) rests on two small deterministic
primitives:

* :class:`Deadline` — one *relative* time budget per logical request.
  Every attempt, retry and failover spends from the same budget; the
  remaining budget travels on the wire as the ``deadline_ms`` frame
  field so servers can refuse already-expired work instead of serving
  dead requests.  The budget is relative (milliseconds remaining), not
  an absolute timestamp, so no cross-host clock comparison is ever
  needed.

* :class:`RetryBudget` — a token bucket that bounds retry
  *amplification*.  Retries spend a token; successes earn a fraction of
  one back.  Under a healthy service the bucket stays full and retries
  behave exactly as before; under a persistent failure the bucket
  drains and clients stop hammering the service and degrade down the
  replica → local → cold ladder immediately (target amplification
  ≤ 2x, per arXiv 1606.05794's provisioning-storm analysis).

Both classes run on an injected clock (``time.monotonic`` in
production, a fake in tests) and contain no randomness, keeping the
simulation-determinism contract (docs/static_analysis.md, DET001-003).
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = ["Deadline", "RetryBudget"]


class Deadline:
    """A monotonic-clock expiry that every attempt spends from.

    Construct with :meth:`after` at the top of a logical request; pass
    :meth:`remaining` to each socket timeout and :meth:`remaining_ms`
    into each frame.  ``remaining_ms`` rounds *up*, so any positive
    budget survives the wire as a positive integer.
    """

    __slots__ = ("_expiry", "_clock")

    def __init__(self, expiry: float,
                 clock: Callable[[], float]) -> None:
        self._expiry = expiry
        self._clock = clock

    @classmethod
    def after(cls, budget: float,
              clock: Callable[[], float]) -> "Deadline":
        """A deadline ``budget`` seconds from now on ``clock``."""
        if budget <= 0:
            raise ValueError(f"deadline budget must be positive, "
                             f"got {budget!r}")
        return cls(clock() + budget, clock)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self._expiry - self._clock())

    def remaining_ms(self) -> int:
        """Whole milliseconds of budget left, rounded up — the wire
        representation (``deadline_ms``)."""
        return int(math.ceil(self.remaining() * 1000.0))

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expiry


class RetryBudget:
    """Token bucket bounding retry amplification.

    * every retry (not the first attempt) must :meth:`spend` one token;
    * every success :meth:`earn`\\ s ``earn_rate`` of a token back,
      capped at ``capacity``;
    * the bucket starts with ``initial`` tokens so cold clients can
      still ride out a transient blip.

    With ``earn_rate`` = 0.5 a client in steady state sends at most
    1.5 requests per logical operation — amplification bounded by
    ``1 + earn_rate`` plus the one-off ``initial`` allowance — without
    any coordination between clients.
    """

    __slots__ = ("capacity", "earn_rate", "tokens",
                 "spent", "earned", "exhaustions")

    def __init__(self, capacity: float = 8.0, earn_rate: float = 0.5,
                 initial: float = 2.0) -> None:
        if capacity <= 0 or earn_rate < 0 or initial < 0:
            raise ValueError(
                f"invalid retry budget capacity={capacity!r} "
                f"earn_rate={earn_rate!r} initial={initial!r}")
        self.capacity = float(capacity)
        self.earn_rate = float(earn_rate)
        self.tokens = min(self.capacity, float(initial))
        #: lifetime accounting, surfaced through RemoteStats
        self.spent = 0
        self.earned = 0.0
        self.exhaustions = 0

    def spend(self) -> bool:
        """Take one token for a retry; False when the bucket is dry
        (caller must stop retrying and degrade)."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.exhaustions += 1
        return False

    def earn(self) -> None:
        """Credit a success back into the bucket."""
        credit = min(self.earn_rate, self.capacity - self.tokens)
        if credit > 0:
            self.tokens += credit
            self.earned += credit
