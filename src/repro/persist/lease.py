"""Writer lease: cross-process mutual exclusion for repository writers.

The repository's crash-safety story (journaled tmp+rename writes) makes
every *individual* file update atomic, but a multi-process deployment —
many VM instances saving into one shared store, a gc pass running from
cron, the cache server's handler threads — also needs the *sequence*
object-writes -> manifest -> meta to be exclusive, or two concurrent
savers can interleave meta updates and a gc can evict objects a
mid-flight manifest is about to reference.

The lease is a single file (``<root>/writer.lease``) created with
``O_CREAT | O_EXCL`` — atomic on every filesystem we care about — whose
JSON body names the holder and an expiry time.  Rules:

* **acquire**: create the file exclusively; on ``FileExistsError``,
  poll until the holder releases or the lease *expires* (a crashed
  holder must not wedge the store forever);
* **steal**: an expired lease is broken by atomically renaming it to a
  unique tombstone first — exactly one stealer wins the rename, so two
  processes can never both think they broke it — then re-contending on
  the normal create path;
* **release**: unlink only if the body still names us (a steal may have
  already recycled the file to another holder).

Holders are identified by ``pid:thread-id:counter``, so handler threads
inside one server process exclude each other exactly like separate
processes do.  Everything degrades, nothing deadlocks: ``acquire``
returns ``False`` after its timeout and callers fall back (a save that
cannot get the lease saves nothing; a gc evicts nothing) rather than
blocking the VM.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Optional

log = logging.getLogger("repro.persist")

#: Default lease lifetime.  Saves and gc passes complete in well under a
#: second; a holder that is this stale has crashed and may be stolen.
DEFAULT_TTL = 30.0

#: Default time acquire() spends contending before giving up.
DEFAULT_TIMEOUT = 10.0

_POLL_INTERVAL = 0.01

_holder_counter = itertools.count()


def _holder_id() -> str:
    return (f"{os.getpid()}:{threading.get_ident()}:"
            f"{next(_holder_counter)}")


class WriterLease:
    """One writer's handle on the repository lock file."""

    def __init__(self, root, ttl: float = DEFAULT_TTL,
                 holder: Optional[str] = None) -> None:
        self.root = Path(root)
        self.path = self.root / "writer.lease"
        self.ttl = ttl
        self.holder = holder or _holder_id()
        self.held = False

    # -- acquisition --------------------------------------------------------

    def try_acquire(self) -> bool:
        """One atomic attempt; no waiting, no stealing."""
        self.root.mkdir(parents=True, exist_ok=True)
        body = json.dumps({
            "holder": self.holder,
            "pid": os.getpid(),
            "expires": time.time() + self.ttl,
        })
        try:
            # reprolint: disable=FLT001 - lease contention is injected
            # at the net.lease fault site; a repo-plane fault here would
            # stall every chaos run on lease-acquire timeouts instead
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError as error:
            log.warning("lease create at %s failed: %s", self.path, error)
            return False
        try:
            os.write(fd, body.encode())
        finally:
            os.close(fd)
        self.held = True
        return True

    def acquire(self, timeout: float = DEFAULT_TIMEOUT) -> bool:
        """Contend for the lease; returns False after ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            if self.try_acquire():
                return True
            if self._expired():
                self._break_stale()
                continue    # re-contend immediately after a steal
            if time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_INTERVAL)

    def _read(self) -> Optional[dict]:
        try:
            body = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None
        return body if isinstance(body, dict) else None

    def _expired(self) -> bool:
        body = self._read()
        if body is None:
            # unreadable (mid-steal, torn, or just released): not ours
            # to break — the create path will settle it
            return False
        expires = body.get("expires")
        return not isinstance(expires, (int, float)) \
            or time.time() > expires

    def _break_stale(self) -> None:
        """Atomically retire an expired lease file.

        The rename target is unique per breaker, so when two processes
        race to steal, exactly one rename succeeds; the loser's rename
        raises and it simply re-contends.
        """
        tombstone = self.path.with_name(
            f"writer.lease.stale-{_holder_id()}")
        try:
            # reprolint: disable=FLT001 - see try_acquire: the lease
            # protocol is exercised via net.lease, not the repo plane
            os.rename(self.path, tombstone)
        except OSError:
            return      # someone else broke (or released) it first
        log.warning("broke stale writer lease at %s", self.path)
        try:
            tombstone.unlink()
        except OSError:
            pass

    # -- release ------------------------------------------------------------

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        body = self._read()
        if body is not None and body.get("holder") != self.holder:
            return      # stolen after expiry and re-acquired: not ours
        try:
            self.path.unlink()
        except OSError:
            pass

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "WriterLease":
        if not self.acquire():
            raise LeaseBusyError(
                f"could not acquire writer lease at {self.path}")
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class LeaseBusyError(Exception):
    """The writer lease stayed contended past the acquire timeout."""
