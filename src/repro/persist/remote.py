"""RemoteRepository — the fault-tolerant shared-cache client.

To the VM this is just another repository (``load`` / ``save`` /
``manifest_entry_count``), but it fronts one or more
:class:`~repro.cacheserver.server.CacheServer` endpoints over sockets,
and the network is allowed to do its worst.  The contract mirrors the
rest of the translation stack: the shared cache is an *optimization*,
so **no server failure may change architected results or kill the
run** — every failure mode degrades, in order, to another replica
endpoint, then the local repository and ultimately cold BBT
translation.

Failure handling, layer by layer:

* **deadline propagation** — every logical request opens one
  :class:`~repro.persist.deadline.Deadline` (``request_budget``
  seconds) that all attempts, retries and failovers spend from; each
  attempt's socket timeout is ``min(timeout, remaining budget)`` and
  the remaining budget rides the frame as ``deadline_ms`` so servers
  can refuse already-dead work.  A response arriving after its own
  deadline is *dropped* (counted in ``late_responses``) — no caller
  ever consumes a result past its budget;
* **bounded retries** — transient failures (refused connection, torn
  frame, timeout, ``lease-busy``, ``overloaded``) are retried up to
  ``retries`` times with exponential backoff and *deterministic*
  jitter (hashed from the jitter seed, the endpoint address and the
  request identity, never the wall clock or a global RNG, so tests and
  chaos runs replay exactly and concurrent clients never sync into
  lockstep retry waves); a shedding server's ``retry_after`` hint
  raises the wait floor;
* **retry budgets** — retries additionally spend from a
  :class:`~repro.persist.deadline.RetryBudget` token bucket that only
  successes refill, so a down shard produces bounded amplification
  instead of a retry storm; a dry bucket fails the request over to the
  degradation ladder immediately;
* **replica failover** — a client given several endpoints (a shard
  group's replica set, see ``repro.cluster``) spreads its retry budget
  across them in declared order, healthy endpoints first, so one dead
  replica costs one attempt, not the whole request;
* **checksum screening** — frames carry a CRC over the payload; a
  corrupt payload is dropped at the codec, counted, and retried like
  any transient failure;
* **per-endpoint circuit breakers** — each endpoint owns its breaker:
  after ``breaker_threshold`` consecutive request failures *on that
  endpoint* it opens and that endpoint drops out of the failover order
  for ``breaker_cooldown`` seconds (then one half-open probe is let
  through, closing it on success).  Breakers are independent, so a
  dead replica can never blacklist its healthy siblings; requests
  short-circuit to the fallback only when every endpoint's breaker is
  open;
* **graceful degradation** — any exhausted request falls back to the
  ``local`` repository when one was given, else behaves like an empty
  store (a load returns no records and the VM translates cold).

Every decision is observable: counters in :class:`RemoteStats`, the
per-endpoint :meth:`RemoteRepository.endpoint_health` view,
``remote.*`` events in a bound tracer, and a flight-recorder dump
(:attr:`RemoteRepository.last_flight`) snapshotting the events leading
up to each fallback.  See ``docs/cache_server.md`` for the failure
matrix and ``docs/cluster.md`` for the multi-endpoint ladder.
"""

from __future__ import annotations

import logging
import socket
import time
import zlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cacheserver import protocol
from repro.faults.plane import fault_point
from repro.persist.deadline import Deadline, RetryBudget
from repro.persist.repository import TranslationRepository

log = logging.getLogger("repro.persist.remote")

#: Client-side span name per wire op (EVENT_TYPES slices); ops without
#: a dedicated lane share the generic ``remote.op`` slice.
_SPAN_NAMES = {"pull": "remote.pull", "push": "remote.push"}


class RemoteError(Exception):
    """A request failed for good (non-retryable or retries exhausted)."""


class RemoteUnavailable(RemoteError):
    """Transport-level failure after exhausting the retry budget."""


class RemoteRejected(RemoteError):
    """The server indicted the *request* (``bad-request`` /
    ``deadline-exceeded``): fail fast, no retry, and — unlike server
    faults — no circuit-breaker penalty and no dropped connection,
    because the endpoint is healthy."""


def parse_address(address) -> Tuple[str, object]:
    """``unix:<path>`` / ``/abs/path`` / ``host:port`` / ``(host, port)``.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``.
    """
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (host, int(port))
    if not isinstance(address, str) or not address:
        raise ValueError(f"unusable server address {address!r}")
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if address.startswith("/"):
        return "unix", address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"unusable server address {address!r} "
            f"(want unix:<path>, /abs/path or host:port)")
    return "tcp", (host or "127.0.0.1", int(port))


def as_address_list(address) -> List:
    """Normalize one address or a replica list into a list.

    A bare ``(host, port)`` 2-tuple is one address, not two.
    """
    if isinstance(address, (list, tuple)):
        if (len(address) == 2 and isinstance(address[0], str)
                and isinstance(address[1], int)):
            return [tuple(address)]
        addresses = list(address)
        if not addresses:
            raise ValueError("empty server address list")
        return addresses
    return [address]


@dataclass
class RemoteStats:
    """Client-side counters — the observable shape of every degradation."""

    requests: int = 0
    successes: int = 0
    retries: int = 0
    timeouts: int = 0
    conn_errors: int = 0
    protocol_errors: int = 0
    lease_busy: int = 0
    server_errors: int = 0
    breaker_opens: int = 0
    breaker_short_circuits: int = 0
    fallbacks: int = 0
    #: requests served by a non-primary endpoint (replica failover)
    failovers: int = 0
    records_pulled: int = 0
    records_pushed: int = 0
    #: ``overloaded`` answers honored (server shed us; docs/overload.md)
    sheds: int = 0
    #: requests abandoned because their deadline budget ran out
    deadline_exceeded: int = 0
    #: requests abandoned because the retry token bucket ran dry
    budget_exhausted: int = 0
    #: responses received intact but *after* the deadline — dropped,
    #: never surfaced to a caller
    late_responses: int = 0
    #: fail-fast rejections (``bad-request``/``deadline-exceeded``)
    #: that burned no retries and no breaker state
    rejected_fast: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)

    def format(self) -> str:
        fields = self.to_dict()
        width = max(len(name) for name in fields)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in fields.items())


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown-then-probe reopen."""

    def __init__(self, threshold: int = 4, cooldown: float = 1.0,
                 clock=time.monotonic) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def allows(self) -> bool:
        """Whether a request may hit the network right now."""
        if self.opened_at is None:
            return True
        if self._clock() - self.opened_at < self.cooldown:
            return False
        # cooled down: let exactly one probe through (half-open)
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> bool:
        """Returns True when this failure newly opened the breaker."""
        self.failures += 1
        self._probing = False
        if self.opened_at is not None:
            self.opened_at = self._clock()   # failed probe: re-open
            return False
        if self.failures >= self.threshold:
            self.opened_at = self._clock()
            return True
        return False

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` — the operator-facing
        name for where this breaker is in its lifecycle (``repro
        cluster health`` prints it).  Half-open covers a cooled-down
        breaker that is running, or would grant, its single probe."""
        if self.opened_at is None:
            return "closed"
        if self._probing or \
                self._clock() - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"


class Endpoint:
    """One server address: its socket, circuit breaker and counters.

    Breaker state living *here* — not on the client — is what keeps a
    dead replica from blacklisting its healthy siblings: each endpoint
    opens, cools down and half-open-probes independently.
    """

    def __init__(self, address, index: int,
                 breaker: CircuitBreaker) -> None:
        self.kind, self.endpoint = parse_address(address)
        self.address = address if isinstance(address, str) \
            else f"{self.endpoint[0]}:{self.endpoint[1]}"
        self.index = index
        self.breaker = breaker
        self.sock: Optional[socket.socket] = None
        self.failures = 0
        self.successes = 0

    def close(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class RemoteRepository:
    """Translation repository served by cache server(s), with fallback.

    ``address`` is anything :func:`parse_address` accepts, or a list of
    such addresses — a replica set the client fails over across (the
    cluster tier builds one client per shard group this way).
    ``local`` (a path or :class:`TranslationRepository`, optional) is
    the degradation target; without one, failed loads act like an empty
    store.  ``sleep`` is injectable so tests and chaos runs never
    actually wait out a backoff.  ``name`` labels this client (the
    shard group name) in fault-injection context and traces.

    Overload knobs (docs/overload.md): ``request_budget`` is the
    deadline budget in seconds for one logical request (attempts +
    backoffs + failovers all spend from it); ``retry_budget_*``
    parameterize the token bucket that bounds retry amplification;
    ``jitter_seed`` decorrelates this client's backoff jitter from its
    peers' (the fleet engine passes each instance's seed).
    """

    def __init__(self, address, local=None, timeout: float = 2.0,
                 retries: int = 3, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 breaker_threshold: int = 4,
                 breaker_cooldown: float = 1.0,
                 tracer=None, sleep=time.sleep,
                 clock=time.monotonic, name: str = "",
                 request_budget: float = 8.0,
                 retry_budget_capacity: float = 8.0,
                 retry_budget_earn: float = 0.5,
                 retry_budget_initial: float = 3.0,
                 jitter_seed: int = 0) -> None:
        self.endpoints = [
            Endpoint(addr, index,
                     CircuitBreaker(threshold=breaker_threshold,
                                    cooldown=breaker_cooldown,
                                    clock=clock))
            for index, addr in enumerate(as_address_list(address))]
        self.name = name
        if local is None or isinstance(local, TranslationRepository):
            self.local = local
        else:
            self.local = TranslationRepository(local)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.request_budget = request_budget
        self.jitter_seed = jitter_seed
        self.retry_budget = RetryBudget(capacity=retry_budget_capacity,
                                        earn_rate=retry_budget_earn,
                                        initial=retry_budget_initial)
        self.remote_stats = RemoteStats()
        self.tracer = tracer
        self._clock = clock
        #: distributed-tracing root (:class:`repro.obs.telemetry
        #: .TraceContext`); when bound, every request derives a child
        #: span, stamps it into the frame as ``trace_ctx``, and — with
        #: a tracer also bound — emits the client-side request slice
        self.trace_ctx = None
        self._sleep = sleep
        self._request_seq = 0
        #: flight-recorder dump taken at the last fallback (needs a
        #: bound tracer); forensic context for "why did we go local?"
        self.last_flight: Optional[Dict] = None
        #: the server's response to the most recent successful push
        #: (``written``/``deduped``/``rejected``); None before any push
        #: or when the last push degraded to the local repository.  The
        #: fleet engine reads dedup-amortization curves from this.
        self.last_push: Optional[Dict] = None

    # -- single-endpoint back-compat surface --------------------------------

    @property
    def address(self) -> str:
        """Human-readable address (all endpoints, comma-joined)."""
        return ",".join(ep.address for ep in self.endpoints)

    @property
    def breaker(self) -> CircuitBreaker:
        """The primary endpoint's breaker (single-server callers)."""
        return self.endpoints[0].breaker

    @property
    def kind(self) -> str:
        return self.endpoints[0].kind

    @kind.setter
    def kind(self, value: str) -> None:
        self.endpoints[0].kind = value

    @property
    def endpoint(self):
        return self.endpoints[0].endpoint

    @endpoint.setter
    def endpoint(self, value) -> None:
        # tests repoint a client at a restarted server: drop the dead
        # socket so the next attempt reconnects to the new address
        self.endpoints[0].close()
        self.endpoints[0].endpoint = value

    def bind_tracer(self, tracer) -> None:
        """Attach an event tracer (``CoDesignedVM`` does this for the
        run's tracer so client degradations land in the run's trace)."""
        self.tracer = tracer

    def bind_trace_context(self, context) -> None:
        """Attach the distributed-tracing root context.  Every request
        from then on is stamped with a per-request child span the
        server parents its own span under; give every client its own
        root (distinct lane/rank/group) so span ids cannot collide."""
        self.trace_ctx = context

    def _trace(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, **args)

    # -- connection management ----------------------------------------------

    def _connect(self, ep: Endpoint,
                 timeout: Optional[float] = None) -> socket.socket:
        # the socket timeout always derives from the caller's deadline
        # budget (TMO001); ``self.timeout`` is only its upper bound
        budget = self.timeout if timeout is None else timeout
        if ep.sock is not None:
            ep.sock.settimeout(budget)
            return ep.sock
        fault_point("net.connect", address=ep.address)
        if ep.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(budget)
        try:
            sock.connect(ep.endpoint)
        except BaseException:
            sock.close()
            raise
        ep.sock = sock
        return sock

    def close(self) -> None:
        for ep in self.endpoints:
            ep.close()

    # -- the request engine --------------------------------------------------

    def _backoff(self, op: str, attempt: int,
                 endpoint: str = "") -> float:
        """Exponential backoff with deterministic jitter.

        The jitter is hashed from (jitter seed, endpoint, op, request
        seq, attempt) so concurrent clients decorrelate without any
        global RNG — the same request history always waits the same
        total time, but two clients retrying the same endpoint after
        the same failure never synchronize into lockstep retry waves
        (their seeds differ), and one client's retries against two
        replicas spread out too (the addresses differ).
        """
        spread = zlib.crc32(
            f"{self.jitter_seed}:{endpoint}:{op}:"
            f"{self._request_seq}:{attempt}".encode()) % 1000
        factor = 0.5 + spread / 2000.0      # in [0.5, 1.0)
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** attempt) * factor)

    def _attempt(self, op: str, payload: Dict, ep: Endpoint,
                 deadline: Deadline,
                 timeout_cap: Optional[float] = None) -> Dict:
        """One network round trip on one endpoint; raises on failure.

        The socket timeout is ``min(timeout, remaining deadline)``
        (optionally capped further by ``timeout_cap`` — the cluster
        client's hedge threshold), and the remaining budget is stamped
        into the frame as ``deadline_ms`` on *every* attempt, so the
        server always sees how much of the budget retries have spent.
        """
        if fault_point("cluster.replica", group=self.name,
                       replica=ep.index, address=ep.address):
            raise ConnectionResetError(
                f"injected replica partition from {ep.address}")
        remaining = deadline.remaining()
        if remaining <= 0.0:
            raise _DeadlineExpired(
                f"no budget left before attempting {op}")
        attempt_timeout = min(self.timeout, remaining)
        if timeout_cap is not None:
            attempt_timeout = min(attempt_timeout, timeout_cap)
        sock = self._connect(ep, timeout=attempt_timeout)
        request = {"op": op}
        request.update(payload)
        request["deadline_ms"] = deadline.remaining_ms()
        fault_point("net.send", op=op)
        protocol.send_message(sock, request)
        fault_point("net.recv", op=op)
        response = protocol.recv_message(sock)
        if fault_point("net.payload", op=op):
            raise protocol.ProtocolError(
                "injected payload corruption (checksum mismatch)")
        if fault_point("overload.shed", op=op, endpoint=ep.index):
            raise _Overloaded("injected server shed",
                              retry_after=self.backoff_base)
        if response.get("ok") is True:
            if fault_point("net.lease", op=op):
                raise _LeaseBusy("injected stale writer lease")
            return response
        category = response.get("error")
        detail = response.get("detail", "")
        if category == "overloaded":
            # load shedding: retryable, and the connection stays up —
            # honor the server's retry_after pacing hint if it sent one
            hint = response.get("retry_after")
            raise _Overloaded(
                f"{category}: {detail}",
                retry_after=hint if isinstance(hint, (int, float))
                and hint >= 0 else 0.0)
        if category in protocol.RETRYABLE_ERRORS:
            if category == "busy":
                # admission rejections also drop the connection
                # server-side; reconnect on the retry
                ep.close()
            raise _LeaseBusy(f"{category}: {detail}")
        if category in protocol.CLIENT_FAULT_ERRORS:
            raise RemoteRejected(
                f"server rejected {op}: {category}: {detail}")
        raise RemoteError(f"server refused {op}: {category}: {detail}")

    def _candidates(self, endpoints: Sequence[Endpoint]) -> List[Endpoint]:
        """Failover order for one request: closed breakers first (in
        declared order); open-breaker endpoints join only when no
        healthy one remains, and only if their cooldown grants a
        half-open probe (``allows`` is consumed exactly when the
        endpoint will actually be tried)."""
        closed = [ep for ep in endpoints if not ep.breaker.is_open]
        if closed:
            return closed
        return [ep for ep in endpoints if ep.breaker.allows()]

    def _request(self, op: str, payload: Dict,
                 endpoints: Optional[Sequence[Endpoint]] = None,
                 timeout_cap: Optional[float] = None,
                 deadline: Optional[Deadline] = None,
                 max_attempts: Optional[int] = None) -> Dict:
        """Deadlines, budgets, retries, backoff, failover, breakers —
        or raises.  ``deadline`` lets a caller (the cluster client's
        hedged pull) make several calls spend one shared budget;
        ``max_attempts`` overrides the retry count (the hedge's primary
        probe is a single attempt)."""
        stats = self.remote_stats
        stats.requests += 1
        self._request_seq += 1
        if deadline is None:
            deadline = Deadline.after(self.request_budget, self._clock)
        if fault_point("overload.deadline", op=op):
            # injected budget expiry: the request is born dead
            stats.deadline_exceeded += 1
            self._trace("remote.deadline", op=op, stage="injected")
            raise RemoteUnavailable(
                f"{op} deadline budget expired (injected)")
        pool = self.endpoints if endpoints is None else list(endpoints)
        candidates = self._candidates(pool)
        if not candidates:
            stats.breaker_short_circuits += 1
            raise RemoteUnavailable(
                f"circuit breaker open for {self.address}")
        self._trace("remote.request", op=op, seq=self._request_seq)
        span_ctx = None
        if self.trace_ctx is not None:
            # one child span per request (not per attempt): retries and
            # failovers are delivery details of the same logical call,
            # so the server-side spans they open share one parent
            start = self.tracer.now() if self.tracer is not None else 0.0
            span_ctx = self.trace_ctx.child(self._request_seq, ts=start)
            payload = dict(payload)
            payload["trace_ctx"] = span_ctx.to_wire()
        last_error: Optional[Exception] = None
        tried: List[Endpoint] = []
        attempts = self.retries + 1 if max_attempts is None \
            else max(1, max_attempts)
        for attempt in range(attempts):
            ep = candidates[attempt % len(candidates)]
            if ep not in tried:
                tried.append(ep)
            if attempt:
                # a retry spends from both budgets: the deadline (time)
                # and the retry bucket (amplification) — whichever runs
                # out first ends the request without breaker penalties
                # (the budget is indicted, not the endpoints)
                if deadline.expired:
                    stats.deadline_exceeded += 1
                    self._trace("remote.deadline", op=op,
                                attempt=attempt, stage="retry")
                    raise RemoteUnavailable(
                        f"{op} deadline budget spent after "
                        f"{attempt} attempt(s): "
                        f"{type(last_error).__name__}: {last_error}")
                if not self.retry_budget.spend():
                    stats.budget_exhausted += 1
                    self._trace("remote.budget_exhausted", op=op,
                                attempt=attempt)
                    raise RemoteUnavailable(
                        f"{op} retry budget exhausted after "
                        f"{attempt} attempt(s): "
                        f"{type(last_error).__name__}: {last_error}")
                stats.retries += 1
                self._trace("remote.retry", op=op, attempt=attempt,
                            endpoint=ep.index,
                            error=type(last_error).__name__)
                delay = self._backoff(op, attempt - 1, ep.address)
                if isinstance(last_error, _Overloaded):
                    delay = max(delay, last_error.retry_after)
                self._sleep(min(delay, deadline.remaining()))
            try:
                response = self._attempt(op, payload, ep, deadline,
                                         timeout_cap=timeout_cap)
            except _Overloaded as error:
                stats.sheds += 1
                last_error = error
                self._trace("remote.shed", op=op, endpoint=ep.index,
                            retry_after=error.retry_after)
                continue        # shedding is healthy backpressure:
                #                 the connection stays up
            except _LeaseBusy as error:
                stats.lease_busy += 1
                last_error = error
                continue        # server is healthy, just contended:
                #                 the connection stays up
            except _DeadlineExpired as error:
                stats.deadline_exceeded += 1
                self._trace("remote.deadline", op=op,
                            attempt=attempt, stage="attempt")
                raise RemoteUnavailable(
                    f"{op} deadline budget spent: {error}")
            except protocol.ProtocolError as error:
                stats.protocol_errors += 1
                last_error = error
                ep.close()      # framing is unrecoverable mid-stream
                continue
            except (socket.timeout, TimeoutError) as error:
                stats.timeouts += 1
                last_error = error
                ep.close()
                continue
            except OSError as error:
                stats.conn_errors += 1
                last_error = error
                ep.close()
                continue
            except RemoteRejected:
                # the request is defective, not the endpoint: no retry,
                # no breaker penalty, and the connection stays usable
                stats.rejected_fast += 1
                raise
            except RemoteError:
                ep.close()
                ep.failures += 1
                if ep.breaker.record_failure():
                    stats.breaker_opens += 1
                    self._trace("remote.breaker_open", op=op,
                                endpoint=ep.index)
                raise
            was_open = ep.breaker.is_open
            ep.breaker.record_success()
            ep.successes += 1
            if was_open:
                self._trace("remote.breaker_close", op=op,
                            endpoint=ep.index)
            if deadline.expired:
                # intact but late: the endpoint is healthy (its breaker
                # was credited above) yet the answer is dead — drop it
                # so nothing downstream consumes a post-deadline result
                stats.late_responses += 1
                self._trace("remote.deadline", op=op,
                            attempt=attempt, stage="late")
                raise RemoteUnavailable(
                    f"{op} response from {ep.address} arrived after "
                    f"its deadline; dropped")
            if ep is not pool[0]:
                stats.failovers += 1
            stats.successes += 1
            self.retry_budget.earn()
            if span_ctx is not None and self.tracer is not None:
                self.tracer.complete(
                    _SPAN_NAMES.get(op, "remote.op"),
                    start=span_ctx.ts, op=op,
                    span=span_ctx.span_id, endpoint=ep.index)
            return response
        # exhausted: every endpoint that participated records exactly
        # one failure — per-request, per-endpoint, so a single dead
        # replica trips only its own breaker
        for ep in tried:
            ep.close()
            ep.failures += 1
            if ep.breaker.record_failure():
                stats.breaker_opens += 1
                self._trace("remote.breaker_open", op=op,
                            endpoint=ep.index)
        raise RemoteUnavailable(
            f"{op} to {self.address} failed after "
            f"{attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}")

    def _fall_back(self, op: str, error: Exception) -> None:
        self.remote_stats.fallbacks += 1
        self._trace("remote.fallback", op=op,
                    error=type(error).__name__,
                    target="local" if self.local is not None else "cold")
        if self.tracer is not None:
            self.last_flight = self.tracer.flight_dump(
                "remote-fallback", op=op, address=str(self.address),
                error=f"{type(error).__name__}: {error}")
        log.warning("shared cache unavailable for %s (%s); degrading "
                    "to %s", op, error,
                    "local repository" if self.local is not None
                    else "cold translation")

    # -- cluster-facing surface ----------------------------------------------

    def request(self, op: str, payload: Optional[Dict] = None,
                endpoints: Optional[Sequence[Endpoint]] = None,
                timeout_cap: Optional[float] = None,
                deadline: Optional[Deadline] = None,
                max_attempts: Optional[int] = None) -> Dict:
        """One raw request with the full retry/failover/breaker engine.

        Unlike the repository surface this *raises* on exhaustion — the
        cluster client (``repro.cluster.client``) owns the degradation
        ladder across shard groups and needs to see the failure.  The
        cluster's hedged pulls use ``endpoints`` (try just the primary
        first), ``timeout_cap`` (the hedge latency threshold) and
        ``deadline`` (one budget shared across primary + hedge).
        """
        return self._request(op, payload or {}, endpoints=endpoints,
                             timeout_cap=timeout_cap, deadline=deadline,
                             max_attempts=max_attempts)

    def fan_out(self, op: str,
                payload: Optional[Dict] = None) -> List[Optional[Dict]]:
        """Send one request to *every* endpoint individually.

        Returns one entry per endpoint, ``None`` where that endpoint's
        request exhausted its budget — the cluster's replicated writes
        count quorum from this.  Never raises.
        """
        results: List[Optional[Dict]] = []
        for ep in self.endpoints:
            try:
                results.append(self._request(op, payload or {},
                                             endpoints=[ep]))
            except Exception as error:  # noqa: BLE001 - per-endpoint
                # failures are the data here, not an exception
                log.debug("fan-out %s to %s failed: %s", op,
                          ep.address, error)
                results.append(None)
        return results

    def endpoint_health(self) -> List[Dict]:
        """Per-endpoint health view: breaker state + the server's own
        ``health`` answer (None for unreachable endpoints)."""
        view = []
        for ep in self.endpoints:
            entry = {
                "address": ep.address,
                "index": ep.index,
                "breaker_open": ep.breaker.is_open,
                "consecutive_failures": ep.breaker.failures,
                "failures": ep.failures,
                "successes": ep.successes,
            }
            try:
                response = self._request("health", {}, endpoints=[ep])
            except Exception as error:  # noqa: BLE001 - unreachable is
                # a legal health answer, not an error
                log.debug("health probe to %s failed: %s",
                          ep.address, error)
                entry["health"] = None
            else:
                entry["health"] = {key: value
                                   for key, value in response.items()
                                   if key != "ok"}
            # read *after* the probe so a probe that just tripped or
            # closed the breaker shows its real state
            entry["breaker"] = ep.breaker.state
            view.append(entry)
        return view

    # -- the repository surface ---------------------------------------------

    def load(self, config_fp: str, image_fp: str) -> List[Dict]:
        """Pull records for one (config, image) pair; never raises."""
        try:
            response = self._request("pull", {"config_fp": config_fp,
                                              "image_fp": image_fp})
            records = response.get("records")
            if not isinstance(records, list):
                raise RemoteError("pull response carried no record list")
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            self._fall_back("pull", error)
            if self.local is None:
                return []
            return self.local.load(config_fp, image_fp)
        self.remote_stats.records_pulled += len(records)
        return records

    def save(self, records: List[Dict], config_fp: str, image_fp: str,
             config_name: str = "", merge: bool = False) -> int:
        """Push records to the server; never raises."""
        payload = {"records": [r for r in records if r is not None],
                   "config_fp": config_fp, "image_fp": image_fp,
                   "config_name": config_name}
        if merge:
            payload["merge"] = True
        try:
            response = self._request("push", payload)
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            self.last_push = None
            self._fall_back("push", error)
            if self.local is None:
                return 0
            return self.local.save(records, config_fp, image_fp,
                                   config_name=config_name, merge=merge)
        written = response.get("written")
        written = written if isinstance(written, int) else 0
        self.last_push = {
            "written": written,
            "deduped": response.get("deduped", 0),
            "rejected": response.get("rejected", 0),
        }
        self.remote_stats.records_pushed += len(payload["records"])
        return written

    def manifest_entry_count(self, config_fp: str,
                             image_fp: str) -> Optional[int]:
        try:
            response = self._request("manifest",
                                     {"config_fp": config_fp,
                                      "image_fp": image_fp})
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            self._fall_back("manifest", error)
            if self.local is None:
                return None
            return self.local.manifest_entry_count(config_fp, image_fp)
        entries = response.get("entries")
        return entries if isinstance(entries, int) else None

    def ping(self) -> bool:
        """Liveness probe; False instead of raising."""
        try:
            self._request("ping", {})
            return True
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            log.debug("ping failed: %s", error)
            return False

    def health(self) -> Optional[Dict]:
        """The first healthy endpoint's structured ``health`` answer,
        or None when no endpoint responds."""
        try:
            response = self._request("health", {})
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            log.debug("health request failed: %s", error)
            return None
        return {key: value for key, value in response.items()
                if key != "ok"}

    def server_stats(self) -> Optional[Dict]:
        """The server's repository + request stats, or None."""
        try:
            response = self._request("stats", {})
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            log.debug("stats request failed: %s", error)
            return None
        return {"repository": response.get("repository"),
                "server": response.get("server")}

    def stats(self) -> RemoteStats:
        """Client-side counters (the repository-stats analogue)."""
        return self.remote_stats


class _LeaseBusy(Exception):
    """Internal: retryable server-side contention (stale/held lease)."""


class _Overloaded(_LeaseBusy):
    """Internal: the server shed this request (``overloaded``); carries
    its ``retry_after`` pacing hint (seconds, 0.0 when absent)."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _DeadlineExpired(Exception):
    """Internal: the request's deadline budget ran out mid-flight."""
