"""RemoteRepository — the fault-tolerant shared-cache client.

To the VM this is just another repository (``load`` / ``save`` /
``manifest_entry_count``), but it fronts a
:class:`~repro.cacheserver.server.CacheServer` over a socket, and the
network is allowed to do its worst.  The contract mirrors the rest of
the translation stack: the shared cache is an *optimization*, so **no
server failure may change architected results or kill the run** — every
failure mode degrades, in order, to the local repository and ultimately
to cold BBT translation.

Failure handling, layer by layer:

* **per-request timeouts** — every socket operation is bounded
  (``timeout``), so a hung server costs milliseconds, not a wedged
  boot;
* **bounded retries** — transient failures (refused connection, torn
  frame, timeout, ``lease-busy``) are retried up to ``retries`` times
  with exponential backoff and *deterministic* jitter (hashed from the
  request identity, never the wall clock or a global RNG, so tests and
  chaos runs replay exactly);
* **checksum screening** — frames carry a CRC over the payload; a
  corrupt payload is dropped at the codec, counted, and retried like
  any transient failure;
* **circuit breaker** — after ``breaker_threshold`` consecutive
  request failures the breaker opens and requests short-circuit
  straight to the fallback for ``breaker_cooldown`` seconds (one probe
  is let through afterwards, closing the breaker on success), so a
  dead server is paid for once, not once per block;
* **graceful degradation** — any exhausted request falls back to the
  ``local`` repository when one was given, else behaves like an empty
  store (a load returns no records and the VM translates cold).

Every decision is observable: counters in :class:`RemoteStats`,
``remote.*`` events in a bound tracer, and a flight-recorder dump
(:attr:`RemoteRepository.last_flight`) snapshotting the events leading
up to each fallback.  See ``docs/cache_server.md`` for the failure
matrix.
"""

from __future__ import annotations

import logging
import socket
import time
import zlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.cacheserver import protocol
from repro.faults.plane import fault_point
from repro.persist.repository import TranslationRepository

log = logging.getLogger("repro.persist.remote")


class RemoteError(Exception):
    """A request failed for good (non-retryable or retries exhausted)."""


class RemoteUnavailable(RemoteError):
    """Transport-level failure after exhausting the retry budget."""


def parse_address(address) -> Tuple[str, object]:
    """``unix:<path>`` / ``/abs/path`` / ``host:port`` / ``(host, port)``.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``.
    """
    if isinstance(address, tuple):
        host, port = address
        return "tcp", (host, int(port))
    if not isinstance(address, str) or not address:
        raise ValueError(f"unusable server address {address!r}")
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if address.startswith("/"):
        return "unix", address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"unusable server address {address!r} "
            f"(want unix:<path>, /abs/path or host:port)")
    return "tcp", (host or "127.0.0.1", int(port))


@dataclass
class RemoteStats:
    """Client-side counters — the observable shape of every degradation."""

    requests: int = 0
    successes: int = 0
    retries: int = 0
    timeouts: int = 0
    conn_errors: int = 0
    protocol_errors: int = 0
    lease_busy: int = 0
    server_errors: int = 0
    breaker_opens: int = 0
    breaker_short_circuits: int = 0
    fallbacks: int = 0
    records_pulled: int = 0
    records_pushed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)

    def format(self) -> str:
        fields = self.to_dict()
        width = max(len(name) for name in fields)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in fields.items())


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown-then-probe reopen."""

    def __init__(self, threshold: int = 4, cooldown: float = 1.0,
                 clock=time.monotonic) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def allows(self) -> bool:
        """Whether a request may hit the network right now."""
        if self.opened_at is None:
            return True
        if self._clock() - self.opened_at < self.cooldown:
            return False
        # cooled down: let exactly one probe through (half-open)
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> bool:
        """Returns True when this failure newly opened the breaker."""
        self.failures += 1
        self._probing = False
        if self.opened_at is not None:
            self.opened_at = self._clock()   # failed probe: re-open
            return False
        if self.failures >= self.threshold:
            self.opened_at = self._clock()
            return True
        return False


class RemoteRepository:
    """Translation repository served by a cache server, with fallback.

    ``address`` is anything :func:`parse_address` accepts.  ``local``
    (a path or :class:`TranslationRepository`, optional) is the
    degradation target; without one, failed loads act like an empty
    store.  ``sleep`` is injectable so tests and chaos runs never
    actually wait out a backoff.
    """

    def __init__(self, address, local=None, timeout: float = 2.0,
                 retries: int = 3, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 breaker_threshold: int = 4,
                 breaker_cooldown: float = 1.0,
                 tracer=None, sleep=time.sleep,
                 clock=time.monotonic) -> None:
        self.kind, self.endpoint = parse_address(address)
        self.address = address if isinstance(address, str) \
            else f"{self.endpoint[0]}:{self.endpoint[1]}"
        if local is None or isinstance(local, TranslationRepository):
            self.local = local
        else:
            self.local = TranslationRepository(local)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.remote_stats = RemoteStats()
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      cooldown=breaker_cooldown,
                                      clock=clock)
        self.tracer = tracer
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._request_seq = 0
        #: flight-recorder dump taken at the last fallback (needs a
        #: bound tracer); forensic context for "why did we go local?"
        self.last_flight: Optional[Dict] = None
        #: the server's response to the most recent successful push
        #: (``written``/``deduped``/``rejected``); None before any push
        #: or when the last push degraded to the local repository.  The
        #: fleet engine reads dedup-amortization curves from this.
        self.last_push: Optional[Dict] = None

    def bind_tracer(self, tracer) -> None:
        """Attach an event tracer (``CoDesignedVM`` does this for the
        run's tracer so client degradations land in the run's trace)."""
        self.tracer = tracer

    def _trace(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, **args)

    # -- connection management ----------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        fault_point("net.connect", address=self.address)
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.endpoint)
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        return sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- the request engine --------------------------------------------------

    def _backoff(self, op: str, attempt: int) -> float:
        """Exponential backoff with deterministic jitter.

        The jitter is hashed from (op, request seq, attempt) so
        concurrent clients decorrelate without any global RNG — the
        same request history always waits the same total time.
        """
        spread = zlib.crc32(
            f"{op}:{self._request_seq}:{attempt}".encode()) % 1000
        factor = 0.5 + spread / 2000.0      # in [0.5, 1.0)
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** attempt) * factor)

    def _attempt(self, op: str, payload: Dict) -> Dict:
        """One network round trip; raises on any failure."""
        sock = self._connect()
        request = {"op": op}
        request.update(payload)
        fault_point("net.send", op=op)
        protocol.send_message(sock, request)
        fault_point("net.recv", op=op)
        response = protocol.recv_message(sock)
        if fault_point("net.payload", op=op):
            raise protocol.ProtocolError(
                "injected payload corruption (checksum mismatch)")
        if response.get("ok") is True:
            if fault_point("net.lease", op=op):
                raise _LeaseBusy("injected stale writer lease")
            return response
        category = response.get("error")
        detail = response.get("detail", "")
        if category in protocol.RETRYABLE_ERRORS:
            if category == "busy":
                # admission rejections also drop the connection
                # server-side; reconnect on the retry
                self.close()
            raise _LeaseBusy(f"{category}: {detail}")
        raise RemoteError(f"server refused {op}: {category}: {detail}")

    def _request(self, op: str, payload: Dict) -> Dict:
        """Timeouts, retries, backoff, breaker — or an exception."""
        stats = self.remote_stats
        stats.requests += 1
        self._request_seq += 1
        if not self.breaker.allows():
            stats.breaker_short_circuits += 1
            raise RemoteUnavailable(
                f"circuit breaker open for {self.address}")
        self._trace("remote.request", op=op, seq=self._request_seq)
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                stats.retries += 1
                self._trace("remote.retry", op=op, attempt=attempt,
                            error=type(last_error).__name__)
                self._sleep(self._backoff(op, attempt - 1))
            try:
                response = self._attempt(op, payload)
            except _LeaseBusy as error:
                stats.lease_busy += 1
                last_error = error
                continue        # server is healthy, just contended:
                #                 the connection stays up
            except protocol.ProtocolError as error:
                stats.protocol_errors += 1
                last_error = error
                self.close()    # framing is unrecoverable mid-stream
                continue
            except (socket.timeout, TimeoutError) as error:
                stats.timeouts += 1
                last_error = error
                self.close()
                continue
            except OSError as error:
                stats.conn_errors += 1
                last_error = error
                self.close()
                continue
            except RemoteError:
                self.close()
                if self.breaker.record_failure():
                    stats.breaker_opens += 1
                    self._trace("remote.breaker_open", op=op)
                raise
            was_open = self.breaker.is_open
            self.breaker.record_success()
            if was_open:
                self._trace("remote.breaker_close", op=op)
            stats.successes += 1
            return response
        self.close()
        if self.breaker.record_failure():
            stats.breaker_opens += 1
            self._trace("remote.breaker_open", op=op)
        raise RemoteUnavailable(
            f"{op} to {self.address} failed after "
            f"{self.retries + 1} attempt(s): "
            f"{type(last_error).__name__}: {last_error}")

    def _fall_back(self, op: str, error: Exception) -> None:
        self.remote_stats.fallbacks += 1
        self._trace("remote.fallback", op=op,
                    error=type(error).__name__,
                    target="local" if self.local is not None else "cold")
        if self.tracer is not None:
            self.last_flight = self.tracer.flight_dump(
                "remote-fallback", op=op, address=str(self.address),
                error=f"{type(error).__name__}: {error}")
        log.warning("shared cache unavailable for %s (%s); degrading "
                    "to %s", op, error,
                    "local repository" if self.local is not None
                    else "cold translation")

    # -- the repository surface ---------------------------------------------

    def load(self, config_fp: str, image_fp: str) -> List[Dict]:
        """Pull records for one (config, image) pair; never raises."""
        try:
            response = self._request("pull", {"config_fp": config_fp,
                                              "image_fp": image_fp})
            records = response.get("records")
            if not isinstance(records, list):
                raise RemoteError("pull response carried no record list")
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            self._fall_back("pull", error)
            if self.local is None:
                return []
            return self.local.load(config_fp, image_fp)
        self.remote_stats.records_pulled += len(records)
        return records

    def save(self, records: List[Dict], config_fp: str, image_fp: str,
             config_name: str = "") -> int:
        """Push records to the server; never raises."""
        payload = {"records": [r for r in records if r is not None],
                   "config_fp": config_fp, "image_fp": image_fp,
                   "config_name": config_name}
        try:
            response = self._request("push", payload)
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            self.last_push = None
            self._fall_back("push", error)
            if self.local is None:
                return 0
            return self.local.save(records, config_fp, image_fp,
                                   config_name=config_name)
        written = response.get("written")
        written = written if isinstance(written, int) else 0
        self.last_push = {
            "written": written,
            "deduped": response.get("deduped", 0),
            "rejected": response.get("rejected", 0),
        }
        self.remote_stats.records_pushed += len(payload["records"])
        return written

    def manifest_entry_count(self, config_fp: str,
                             image_fp: str) -> Optional[int]:
        try:
            response = self._request("manifest",
                                     {"config_fp": config_fp,
                                      "image_fp": image_fp})
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            self._fall_back("manifest", error)
            if self.local is None:
                return None
            return self.local.manifest_entry_count(config_fp, image_fp)
        entries = response.get("entries")
        return entries if isinstance(entries, int) else None

    def ping(self) -> bool:
        """Liveness probe; False instead of raising."""
        try:
            self._request("ping", {})
            return True
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            log.debug("ping failed: %s", error)
            return False

    def server_stats(self) -> Optional[Dict]:
        """The server's repository + request stats, or None."""
        try:
            response = self._request("stats", {})
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            log.debug("stats request failed: %s", error)
            return None
        return {"repository": response.get("repository"),
                "server": response.get("server")}

    def stats(self) -> RemoteStats:
        """Client-side counters (the repository-stats analogue)."""
        return self.remote_stats


class _LeaseBusy(Exception):
    """Internal: retryable server-side contention (stale/held lease)."""
