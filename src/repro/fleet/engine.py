"""Fleet engine — boot herds of CoDesignedVM instances against one
shared translation-cache server.

One :meth:`FleetEngine.run` call executes one
:class:`~repro.fleet.grid.FleetScenario`: it hosts a private
:class:`~repro.cacheserver.server.CacheServer` over a scratch
repository, boots ``scenario.n`` instances through a worker pool
(threads by default, spawn-based processes on request), and collects
per-instance startup ledgers, tracer events, warm-start reports and
client degradation counters into a :class:`FleetResult`.  Every
instance warm-starts *through* the server with its own fault-tolerant
:class:`~repro.persist.remote.RemoteRepository` client, so the herd
exercises the exact pull/validate/degrade path a real consolidation
host would.

Determinism contract (the acceptance bar is byte-identical reports at
the same seed, under real thread concurrency):

* **pulls only ever see a static store.**  Under ``all_at_once`` the
  whole herd boots against the initial store state; under
  ``one_then_others`` rank 0 boots alone, the engine publishes its
  translations, and only then does the rest of the herd start.  No
  instance's pull races another instance's push.
* **pushes are performed by the engine**, sequentially in boot-rank
  order, through one client — workers only *capture* their
  translations and hand the records back.  Dedup counts are therefore
  a pure function of the scenario, not of thread scheduling.
* **per-instance measurements are simulated-cycle**, never wall-clock:
  time-to-steady-state comes from the instance's own tracer stream on
  the :class:`~repro.obs.ledger.CycleLedger` clock.  Wall-clock lives
  only in the non-canonical ``ops`` section of the result.
* **fault cocktails serialize the pool** (the fault plane is a process
  global) and use per-rank seeded injectors, so chaos fleets replay
  bit-for-bit too.

The per-instance invariant is the same as everywhere else in the
stack: no server behaviour — cold store, contended lease, injected
network faults — may change an instance's architected results.  The
engine checks every instance against a fault-free local baseline and
records the diff in :attr:`InstanceResult.problems`.
"""

from __future__ import annotations

import concurrent.futures
import logging
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.cacheserver.server import CacheServer
from repro.core import ALL_CONFIGS
from repro.core.vm import CoDesignedVM
from repro.faults.classes import make_fault
from repro.faults.injector import FaultInjector
from repro.faults.plane import injecting
from repro.fleet.grid import FleetScenario
from repro.isa.x86lite.assembler import assemble
from repro.obs.telemetry import TraceContext
from repro.obs.tracer import EventTracer
from repro.persist import (TranslationRepository, capture_translations,
                           config_fingerprint, image_fingerprint)
from repro.persist.remote import RemoteRepository
from repro.workloads.programs import PROGRAMS

log = logging.getLogger("repro.fleet")

#: Forgiving config aliases (mirrors the CLI's spelling).
CONFIG_ALIASES = {"ref": "Ref: superscalar", "soft": "VM.soft",
                  "be": "VM.be", "fe": "VM.fe",
                  "interp": "VM: Interp & SBT"}

#: Tracer events that mark startup-transient work still happening.
#: Steady state is reached when the last of these ends.
_TRANSIENT_PREFIXES = ("translate.", "warmstart.", "chain.", "hotspot.")


def resolve_config(name: str):
    configs = ALL_CONFIGS()
    key = CONFIG_ALIASES.get(name, name)
    if key not in configs:
        raise ValueError(f"unknown configuration {name!r}; choose from "
                         f"{sorted(configs) + sorted(CONFIG_ALIASES)}")
    return configs[key]


def perturb_source(source: str, rank: int, seed: int) -> str:
    """Give one instance a unique image (``one_per_vm`` policy).

    Appends an unreachable padding block *after* the program's final
    byte — a labeled ``mov`` the program never jumps to — so the image
    bytes (and therefore the content fingerprint every cache key hangs
    off) are unique per rank while the architected outcome is
    bit-identical to the gold image's.
    """
    marker = (seed * 100003 + rank * 257 + 0x1000) & 0x7FFFFFFF
    return (f"{source.rstrip()}\n"
            f"fleet_pad_{rank}:\n"
            f"    mov eax, {marker}\n")


def steady_state_cycle(trace_events: List[Dict]) -> float:
    """Simulated cycle at which the startup transient ended.

    The last moment any translation-stack work happened: BBT/SBT
    slices count until ``ts + dur``; warm-start loads, chain edges and
    hotspot promotions are instants.  A run that never translated
    (fully warm and pre-chained, or pure interpretation) is steady from
    cycle 0.
    """
    steady = 0.0
    for event in trace_events:
        if not event.get("name", "").startswith(_TRANSIENT_PREFIXES):
            continue
        end = event.get("ts", 0.0) + event.get("dur", 0.0)
        if end > steady:
            steady = end
    return steady


def _boot_instance(spec: Dict) -> Dict:
    """Boot one fleet instance; top-level and dict-in/dict-out so the
    spawn-based process pool can pickle it.

    The instance pulls from the shared server (warm start through a
    :class:`RemoteRepository` with **no** local fallback — degradation
    goes straight to cold translation), runs the workload, then
    captures its translations for the engine to publish later.  It
    never pushes: see the module determinism contract.  Cluster
    scenarios hand a spec string in ``spec["cluster"]`` and boot
    through the cluster-aware client instead.
    """
    config = resolve_config(spec["config"]).with_(trace=True)
    vm = CoDesignedVM(config, hot_threshold=spec["hot_threshold"])
    vm.load(assemble(spec["source"]))
    if spec.get("cluster"):
        from repro.cluster import ClusterRepository
        remote = ClusterRepository(
            spec["cluster"], local=None,
            timeout=spec["timeout"], retries=spec["retries"],
            request_budget=spec["request_budget"],
            jitter_seed=spec["instance_seed"])
    else:
        remote = RemoteRepository(
            spec["address"], local=None,
            timeout=spec["timeout"], retries=spec["retries"],
            request_budget=spec["request_budget"],
            jitter_seed=spec["instance_seed"])
    remote.bind_trace_context(
        TraceContext.for_boot(spec["instance_seed"], spec["rank"]))
    injector = None
    if spec["faults"]:
        injector = FaultInjector(spec["instance_seed"], spec["faults"])
    try:
        if injector is not None:
            with injecting(injector):
                load_report = vm.warm_start(remote)
                vm.run(max_instructions=spec["max_instructions"])
        else:
            load_report = vm.warm_start(remote)
            vm.run(max_instructions=spec["max_instructions"])
    finally:
        remote.close()
    records = capture_translations(vm.runtime.directory, vm.state.memory)
    stats = vm.stats()
    state = vm.state
    return {
        "rank": spec["rank"],
        "exit_code": state.exit_code,
        "output": list(state.output),
        "regs": list(state.regs),
        "flags": [state.cf, state.zf, state.sf, state.of],
        "records": records,
        "config_fp": config_fingerprint(vm.config),
        "image_fp": image_fingerprint(vm._image),
        "records_loaded": load_report.loaded,
        "records_pulled":
            remote.remote_stats.to_dict().get("records_pulled", 0),
        "total_cycles": stats["total_cycles"],
        "blocks_translated": stats["blocks_translated"],
        "superblocks_translated": stats["superblocks_translated"],
        "remote": remote.remote_stats.to_dict(),
        "injected": dict(injector.injected) if injector else {},
        "trace_events": [event.to_trace_event()
                         for event in vm.tracer.events],
    }


@dataclass
class InstanceResult:
    """One instance's boot, reduced to deterministic measurements."""

    rank: int
    image_fp: str
    exit_code: Optional[int]
    output: List[object]
    tts_cycles: float            # time-to-steady-state (simulated)
    total_cycles: float
    records_loaded: int          # warm-start records materialized
    records_pulled: int          # records the pull returned
    push_written: int = 0        # engine-published new objects
    push_deduped: int = 0        # engine-published already-present
    blocks_translated: int = 0
    superblocks_translated: int = 0
    remote: Dict = field(default_factory=dict)
    injected: Dict = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)
    #: raw per-instance trace events (export-only; never in reports)
    trace_events: List[Dict] = field(default_factory=list)

    @property
    def arch_ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict:
        return {
            "rank": self.rank,
            "image_fp": self.image_fp[:12],
            "exit_code": self.exit_code,
            "tts_cycles": self.tts_cycles,
            "total_cycles": self.total_cycles,
            "records_loaded": self.records_loaded,
            "records_pulled": self.records_pulled,
            "push_written": self.push_written,
            "push_deduped": self.push_deduped,
            "blocks_translated": self.blocks_translated,
            "superblocks_translated": self.superblocks_translated,
            "remote": dict(self.remote),
            "injected": dict(sorted(self.injected.items())),
            "arch_ok": self.arch_ok,
            "problems": list(self.problems),
        }


@dataclass
class FleetResult:
    """One scenario's fleet, fully booted and checked."""

    scenario: FleetScenario
    instances: List[InstanceResult]
    server: Dict                  # ServerStats.to_dict() snapshot
    baseline: Dict                # fault-free architected reference
    wall_ms: float = 0.0          # non-canonical (ops section only)
    #: --collect artifacts (None on plain runs).  ``telemetry`` holds
    #: the collector's {"canonical", "ops"} snapshot pair; the spans
    #: and publish events feed the trace export only, never reports.
    telemetry: Optional[Dict] = None
    server_spans: Optional[List[Dict]] = None
    publish_events: Optional[List[Dict]] = None

    @property
    def arch_ok(self) -> bool:
        return all(instance.arch_ok for instance in self.instances)

    def to_dict(self, canonical: bool = True) -> Dict:
        doc = {
            "scenario": self.scenario.to_dict(),
            "baseline": dict(self.baseline),
            "arch_ok": self.arch_ok,
            "instances": [i.to_dict() for i in self.instances],
            "server": _strip_latency(self.server)
            if canonical else dict(self.server),
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry[
                "canonical" if canonical else "ops"]
        if not canonical:
            doc["ops"] = {"wall_ms": self.wall_ms}
        return doc


def _merge_server_stats(stats_list: List[Dict]) -> Dict:
    """Aggregate many servers' stats into one cluster-wide summary:
    numbers sum, nested dicts (the per-op request counters) merge
    recursively, and the wall-clock ``latency`` section is dropped —
    summing percentiles across servers would be meaningless, and
    canonical reports strip it anyway."""
    merged: Dict = {}
    for stats in stats_list:
        _merge_counters(merged,
                        {key: value for key, value in stats.items()
                         if key != "latency"})
    return merged


def _merge_counters(target: Dict, source: Dict) -> None:
    for key, value in source.items():
        if isinstance(value, dict):
            node = target.setdefault(key, {})
            if isinstance(node, dict):
                _merge_counters(node, value)
        elif isinstance(value, bool):
            target[key] = target.get(key, False) or value
        elif isinstance(value, (int, float)):
            target[key] = target.get(key, 0) + value
        else:
            target.setdefault(key, value)


def _strip_latency(server: Dict) -> Dict:
    """Server stats minus the wall-clock latency section (canonical
    reports must be byte-stable across hosts)."""
    return {key: value for key, value in server.items()
            if key != "latency"}


class _CycleClock:
    """Settable simulated-cycle clock for the engine's publish lane.

    The engine publishes each instance's translations *after* its boot
    finished, so the natural cycle stamp for a publish span is that
    instance's time-to-steady-state — set by :class:`_Publisher` right
    before each push.  Wall clocks never enter the trace.
    """

    def __init__(self) -> None:
        self.value = 0.0

    def __call__(self) -> float:
        return self.value


class _Publisher:
    """Trace instrumentation for the engine's publish loop (--collect).

    Binds a cycle-clocked :class:`EventTracer` plus a per-rank
    ``publish`` trace lane to the push client, so every engine-side
    ``push`` emits a ``remote.push`` slice carrying the propagated span
    id the server's span buffer will name as its parent.
    """

    def __init__(self, scenario: FleetScenario, push_client) -> None:
        self.scenario = scenario
        self.client = push_client
        self.clock = _CycleClock()
        self.tracer = EventTracer(clock=self.clock)
        push_client.bind_tracer(self.tracer)

    def before(self, result: Dict) -> None:
        """Stamp the next publish with its instance's steady cycle and
        a fresh per-rank publish lane."""
        rank = result["rank"]
        self.clock.value = steady_state_cycle(result["trace_events"])
        self.client.bind_trace_context(TraceContext.for_boot(
            self.scenario.seed * 100003 + rank, rank, lane="publish"))

    def events(self) -> List[Dict]:
        return [event.to_trace_event() for event in self.tracer.events]


class FleetEngine:
    """Boots fleets.  ``workdir`` (optional) hosts the scratch server
    repositories; without one each run uses a private temp dir."""

    def __init__(self, workdir=None, host: str = "127.0.0.1") -> None:
        self.workdir = str(workdir) if workdir is not None else None
        self.host = host

    # -- scenario pieces ----------------------------------------------------

    @staticmethod
    def _sources(scenario: FleetScenario) -> List[str]:
        if scenario.workload not in PROGRAMS:
            raise ValueError(
                f"unknown workload {scenario.workload!r}; choose from "
                f"{sorted(PROGRAMS)}")
        gold = PROGRAMS[scenario.workload]
        if scenario.image_policy == "one":
            return [gold] * scenario.n
        return [perturb_source(gold, rank, scenario.seed)
                for rank in range(scenario.n)]

    @staticmethod
    def _baseline(scenario: FleetScenario, gold: str) -> Dict:
        """Fault-free local cold run: the architected reference every
        instance (any rank, any image perturbation) must match."""
        config = resolve_config(scenario.config)
        vm = CoDesignedVM(config, hot_threshold=scenario.hot_threshold)
        vm.load(assemble(gold))
        vm.run(max_instructions=scenario.max_instructions)
        state = vm.state
        return {
            "exit_code": state.exit_code,
            "output": list(state.output),
            "regs": list(state.regs),
            "flags": [state.cf, state.zf, state.sf, state.of],
        }

    @staticmethod
    def _check_instance(result: Dict, baseline: Dict) -> List[str]:
        problems = []
        for key in ("exit_code", "output", "regs", "flags"):
            if result[key] != baseline[key]:
                problems.append(
                    f"{key} {result[key]!r} != baseline {baseline[key]!r}")
        return problems

    def _prime(self, scenario: FleetScenario, repo_root: Path,
               sources: List[str]) -> None:
        """Warm-repository policy: pre-populate the server store with
        each distinct image's translations via direct local saves
        (before the server starts, so priming never contends with the
        fleet).  ``one_per_vm`` priming costs one cold run per rank."""
        repo = TranslationRepository(repo_root)
        config = resolve_config(scenario.config)
        for source in dict.fromkeys(sources):   # distinct, rank order
            vm = CoDesignedVM(config,
                              hot_threshold=scenario.hot_threshold)
            vm.load(assemble(source))
            vm.run(max_instructions=scenario.max_instructions)
            vm.save_translations(repo)

    # -- the run ------------------------------------------------------------

    def run(self, scenario: FleetScenario) -> FleetResult:
        started = time.perf_counter()
        cleanup = self.workdir is None
        workdir = self.workdir or tempfile.mkdtemp(prefix="repro-fleet-")
        repo_root = Path(workdir) / f"fleet-repo-{scenario.seed}"
        if repo_root.exists():
            shutil.rmtree(repo_root)
        try:
            result = self._run_in(scenario, repo_root)
        finally:
            if cleanup:
                shutil.rmtree(workdir, ignore_errors=True)
        result.wall_ms = (time.perf_counter() - started) * 1000.0
        log.info("fleet %s: %d instance(s), arch_ok=%s",
                 scenario.label(), scenario.n, result.arch_ok)
        return result

    def _run_in(self, scenario: FleetScenario,
                repo_root: Path) -> FleetResult:
        sources = self._sources(scenario)
        baseline = self._baseline(scenario, PROGRAMS[scenario.workload])
        if scenario.cluster:
            return self._run_cluster(scenario, repo_root, sources,
                                     baseline)
        if scenario.warm:
            self._prime(scenario, repo_root, sources)
        disk_faults = [name for name in scenario.faults
                       if make_fault(name).disk]
        if disk_faults:
            FaultInjector(scenario.seed,
                          disk_faults).mangle_repository(repo_root)

        server = CacheServer(repo_root, host=self.host, port=0,
                             max_queue_depth=scenario.max_queue_depth)
        address = server.start()
        push_client = RemoteRepository(
            address, local=None, timeout=scenario.timeout,
            retries=scenario.retries)
        collector, publisher = self._attach_collector(
            scenario, f"shard0={address}", push_client)
        try:
            raw = self._boot_fleet(scenario, sources, address,
                                   push_client, publisher=publisher)
            telemetry = self._collect(collector, publisher, raw,
                                      push_client)
        finally:
            push_client.close()
            server.stop()
            if collector is not None:
                collector.close()

        instances = self._instances(raw, baseline)
        return FleetResult(scenario=scenario, instances=instances,
                           server=server.stats.to_dict(),
                           baseline=baseline, **telemetry)

    def _run_cluster(self, scenario: FleetScenario, repo_root: Path,
                     sources: List[str], baseline: Dict) -> FleetResult:
        """Cluster variant of :meth:`_run_in`: hosts a live
        shards x replicas :class:`LocalCluster` under ``repo_root``,
        primes it *through* the cluster client (so warm stores carry
        replicated, merged manifests), rots each replica store
        independently under disk fault cocktails, and boots every
        instance through a :class:`ClusterRepository`.  The
        determinism contract is unchanged — priming and publishing
        happen outside the herd's pull window, in rank order."""
        from repro.cluster import ClusterRepository, LocalCluster
        grid = LocalCluster(repo_root, shards=scenario.shards,
                            replicas=scenario.replicas,
                            max_queue_depth=scenario.max_queue_depth)
        spec = grid.start()
        push_client = ClusterRepository(
            spec, local=None, timeout=scenario.timeout,
            retries=scenario.retries)
        collector, publisher = self._attach_collector(
            scenario, spec, push_client)
        try:
            if scenario.warm:
                staging = repo_root.parent / f"{repo_root.name}-prime"
                if staging.exists():
                    shutil.rmtree(staging)
                self._prime(scenario, staging, sources)
                source_repo = TranslationRepository(staging)
                manifests = Path(staging) / "manifests"
                for path in sorted(manifests.glob("*.json")):
                    config_fp, sep, image_fp = path.stem.partition("__")
                    if sep:
                        push_client.save(
                            source_repo.load(config_fp, image_fp),
                            config_fp, image_fp)
            disk_faults = [name for name in scenario.faults
                           if make_fault(name).disk]
            if disk_faults:
                injector = FaultInjector(scenario.seed, disk_faults)
                for key in sorted(grid.servers):
                    injector.mangle_repository(grid.repo_dir(*key))
            raw = self._boot_fleet(scenario, sources,
                                   spec.to_string(), push_client,
                                   cluster=True, publisher=publisher)
            telemetry = self._collect(collector, publisher, raw,
                                      push_client)
            server_stats = _merge_server_stats(
                [grid.servers[key].stats.to_dict()
                 for key in sorted(grid.servers)])
        finally:
            push_client.close()
            grid.stop()
            if collector is not None:
                collector.close()
        instances = self._instances(raw, baseline)
        return FleetResult(scenario=scenario, instances=instances,
                           server=server_stats, baseline=baseline,
                           **telemetry)

    # -- telemetry (--collect) ----------------------------------------------

    @staticmethod
    def _attach_collector(scenario: FleetScenario, spec, push_client):
        """Build the run's :class:`ClusterCollector` + publish-lane
        instrumentation (both ``None`` on plain runs).  The baseline
        scrape happens before any instance boots so the first real
        scrape's deltas describe the fleet, not server startup."""
        if not scenario.collect:
            return None, None
        from repro.obs.collector import ClusterCollector
        collector = ClusterCollector(spec, timeout=scenario.timeout,
                                     retries=scenario.retries)
        collector.scrape()
        return collector, _Publisher(scenario, push_client)

    @staticmethod
    def _collect(collector, publisher, raw: List[Dict],
                 push_client) -> Dict:
        """Final scrape + client-stat fold; returns the FleetResult
        telemetry kwargs (empty on plain runs)."""
        if collector is None:
            return {}
        for result in raw:
            collector.observe_client_stats(result["remote"])
        collector.observe_client_stats(
            push_client.remote_stats.to_dict())
        collector.scrape()
        return {
            "telemetry": {
                "canonical": collector.snapshot(canonical=True),
                "ops": collector.snapshot(canonical=False),
            },
            "server_spans": collector.span_entries(),
            "publish_events": publisher.events(),
        }

    def _instances(self, raw: List[Dict],
                   baseline: Dict) -> List[InstanceResult]:
        instances = []
        for rank, result in enumerate(raw):
            instances.append(InstanceResult(
                rank=rank,
                image_fp=result["image_fp"],
                exit_code=result["exit_code"],
                output=result["output"],
                tts_cycles=steady_state_cycle(result["trace_events"]),
                total_cycles=result["total_cycles"],
                records_loaded=result["records_loaded"],
                records_pulled=result["records_pulled"],
                push_written=result["push_written"],
                push_deduped=result["push_deduped"],
                blocks_translated=result["blocks_translated"],
                superblocks_translated=result["superblocks_translated"],
                remote=result["remote"],
                injected=result["injected"],
                problems=self._check_instance(result, baseline),
                trace_events=result["trace_events"]))
        return instances

    def _boot_fleet(self, scenario: FleetScenario, sources: List[str],
                    address: str, push_client,
                    cluster: bool = False,
                    publisher: Optional[_Publisher] = None
                    ) -> List[Dict]:
        specs = [{
            "rank": rank,
            "source": sources[rank],
            "config": scenario.config,
            "hot_threshold": scenario.hot_threshold,
            "max_instructions": scenario.max_instructions,
            "address": address,
            "cluster": address if cluster else "",
            "timeout": scenario.timeout,
            "retries": scenario.retries,
            "request_budget": scenario.request_budget,
            "faults": [name for name in scenario.faults
                       if not make_fault(name).disk],
            "instance_seed": scenario.seed * 100003 + rank,
        } for rank in range(scenario.n)]

        if scenario.boot_policy == "one_then_others":
            first = _boot_instance(specs[0])
            self._publish(first, push_client, publisher)
            rest = self._pool_boot(scenario, specs[1:])
            results = [first] + rest
            for result in rest:
                self._publish(result, push_client, publisher)
        else:
            results = self._pool_boot(scenario, specs)
            for result in results:
                self._publish(result, push_client, publisher)
        return results

    @staticmethod
    def _publish(result: Dict, push_client,
                 publisher: Optional[_Publisher] = None) -> None:
        """Push one instance's captured translations (engine-side, in
        rank order — see the determinism contract)."""
        if publisher is not None:
            publisher.before(result)
        push_client.save(result["records"], result["config_fp"],
                         result["image_fp"])
        push = push_client.last_push or {}
        result["push_written"] = push.get("written", 0)
        result["push_deduped"] = push.get("deduped", 0)
        result["remote"]["records_pushed"] = \
            len([r for r in result["records"] if r is not None])

    def _pool_boot(self, scenario: FleetScenario,
                   specs: List[Dict]) -> List[Dict]:
        if not specs:
            return []
        workers = scenario.effective_workers
        if workers == 1:
            return [_boot_instance(spec) for spec in specs]
        if scenario.pool == "process":
            import multiprocessing
            context = multiprocessing.get_context("spawn")
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=context)
        else:
            executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="fleet-boot")
        with executor:
            return list(executor.map(_boot_instance, specs))


def run_sweep(scenarios, workdir=None, progress=None) -> List[FleetResult]:
    """Run every scenario in order; ``progress`` (optional callable)
    sees each :class:`FleetResult` as it completes."""
    engine = FleetEngine(workdir=workdir)
    results = []
    for scenario in scenarios:
        result = engine.run(scenario)
        results.append(result)
        if progress is not None:
            progress(result)
    return results
