"""Per-fleet Perfetto export — the whole herd in one trace.

Merges every instance's tracer stream into a single Chrome/Perfetto
``trace_event`` document:

* each instance becomes its own process lane (``pid = rank + 1``, so
  the per-event-family ``tid`` tracks from :mod:`repro.obs.tracer`
  keep their meaning within each lane);
* a synthesized **fleet summary lane** (``pid = 0``, the ``fleet``
  track) carries one ``fleet.boot`` slice per rank spanning cycle 0 to
  that instance's steady-state cycle, plus a ``fleet.steady`` instant
  at the moment the transient ended — open the trace and the
  amortization curve is literally visible as the slices shortening
  with rank.

Timestamps stay on the simulated-cycle clock (every instance starts at
cycle 0, which is exactly the mass-boot story: N machines powering on
together).  Events are globally sorted by ``ts`` so the export passes
the same structural monotonicity check as single-run traces
(:func:`repro.obs.export.validate_trace` accepts the result).
"""

from __future__ import annotations

import logging
from typing import Dict, Optional

from repro.obs.tracer import event_track

log = logging.getLogger("repro.fleet")


def export_fleet_trace(result, metadata: Optional[Dict] = None) -> Dict:
    """Render a :class:`~repro.fleet.engine.FleetResult` as one
    Perfetto-loadable JSON object."""
    events = []
    fleet_track = event_track("fleet.boot")
    for instance in result.instances:
        events.append({
            "name": "fleet.boot",
            "ph": "X",
            "ts": 0.0,
            "dur": instance.tts_cycles,
            "pid": 0,
            "tid": fleet_track,
            "args": {"rank": instance.rank,
                     "records_loaded": instance.records_loaded},
        })
        events.append({
            "name": "fleet.steady",
            "ph": "i",
            "ts": instance.tts_cycles,
            "s": "t",
            "pid": 0,
            "tid": fleet_track,
            "args": {"rank": instance.rank},
        })
        for event in instance.trace_events:
            entry = dict(event)
            entry["pid"] = instance.rank + 1
            events.append(entry)
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"],
                               e["name"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": {
            "clock": "simulated-cycles",
            "events_emitted": len(events),
            "events_dropped": 0,
            "fleet": result.scenario.label(),
            **(metadata or {}),
        },
    }
