"""Per-fleet Perfetto export — the whole herd in one trace.

Merges every instance's tracer stream into a single Chrome/Perfetto
``trace_event`` document:

* each instance becomes its own process lane (``pid = rank + 1``, so
  the per-event-family ``tid`` tracks from :mod:`repro.obs.tracer`
  keep their meaning within each lane);
* a synthesized **fleet summary lane** (``pid = 0``, the ``fleet``
  track) carries one ``fleet.boot`` slice per rank spanning cycle 0 to
  that instance's steady-state cycle, plus a ``fleet.steady`` instant
  at the moment the transient ended — open the trace and the
  amortization curve is literally visible as the slices shortening
  with rank;
* a ``--collect`` fleet additionally gets the **distributed half**:
  the engine's publish lane (``pid = n + 1``), one lane per scraped
  server replica (``pid = n + 2 + i`` in sorted target order) showing
  the ``server.op`` child spans from each replica's span buffer, and
  Perfetto **flow arrows** (``ph: "s"/"f"``) linking every client
  ``remote.pull``/``remote.push`` slice to the server span that
  served it — the cross-process causality the trace-context
  propagation exists to recover (docs/observability.md).

Timestamps stay on the simulated-cycle clock (every instance starts at
cycle 0, which is exactly the mass-boot story: N machines powering on
together).  Events are globally sorted by ``ts`` so the export passes
the same structural monotonicity check as single-run traces
(:func:`repro.obs.export.validate_trace` accepts the result).
"""

from __future__ import annotations

import logging
from typing import Dict, Optional

from repro.obs.tracer import event_track

log = logging.getLogger("repro.fleet")


def _distributed_events(events, server_spans, ranks):
    """Server lanes + flow arrows for a ``--collect`` fleet.

    ``server_spans`` are the collector's span-buffer records (already
    tagged with their ``target`` key).  Each scraped replica gets a
    process lane after the publish lane, every record becomes a
    ``server.op`` slice on the server track, and whenever a record's
    ``parent`` matches the ``span`` argument of an already-rendered
    client slice we emit a Perfetto flow pair (``ph: "s"`` at the
    client slice, ``ph: "f"`` at the server slice) with the server
    span id as the flow id.
    """
    lanes = {target: ranks + 2 + index for index, target
             in enumerate(sorted({span.get("target", "")
                                  for span in server_spans}))}
    client_slices = {}
    for event in events:
        span_id = (event.get("args") or {}).get("span")
        if span_id and event.get("ph") == "X":
            client_slices[span_id] = (event["ts"], event["pid"],
                                      event["tid"])
    server_track = event_track("server.op")
    extra = []
    for span in server_spans:
        lane = lanes[span.get("target", "")]
        args = {key: span[key] for key in sorted(span)
                if key not in ("name", "ts")}
        extra.append({
            "name": span.get("name", "server.op"),
            "ph": "X",
            "ts": float(span.get("ts", 0.0)),
            "dur": 0.0,
            "pid": lane,
            "tid": server_track,
            "args": args,
        })
        origin = client_slices.get(span.get("parent"))
        if origin is None:
            continue
        ts, pid, tid = origin
        flow_id = span.get("span", "")
        extra.append({"name": "remote.flow", "cat": "flow",
                      "ph": "s", "id": flow_id, "ts": ts,
                      "pid": pid, "tid": tid, "args": {}})
        extra.append({"name": "remote.flow", "cat": "flow",
                      "ph": "f", "bp": "e", "id": flow_id,
                      "ts": float(span.get("ts", 0.0)),
                      "pid": lane, "tid": server_track, "args": {}})
    return extra


def export_fleet_trace(result, metadata: Optional[Dict] = None) -> Dict:
    """Render a :class:`~repro.fleet.engine.FleetResult` as one
    Perfetto-loadable JSON object."""
    events = []
    fleet_track = event_track("fleet.boot")
    for instance in result.instances:
        events.append({
            "name": "fleet.boot",
            "ph": "X",
            "ts": 0.0,
            "dur": instance.tts_cycles,
            "pid": 0,
            "tid": fleet_track,
            "args": {"rank": instance.rank,
                     "records_loaded": instance.records_loaded},
        })
        events.append({
            "name": "fleet.steady",
            "ph": "i",
            "ts": instance.tts_cycles,
            "s": "t",
            "pid": 0,
            "tid": fleet_track,
            "args": {"rank": instance.rank},
        })
        for event in instance.trace_events:
            entry = dict(event)
            entry["pid"] = instance.rank + 1
            events.append(entry)
    ranks = len(result.instances)
    for event in getattr(result, "publish_events", None) or ():
        entry = dict(event)
        entry["pid"] = ranks + 1
        events.append(entry)
    server_spans = getattr(result, "server_spans", None) or ()
    if server_spans:
        events.extend(_distributed_events(events, server_spans, ranks))
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"],
                               e["name"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": {
            "clock": "simulated-cycles",
            "events_emitted": len(events),
            "events_dropped": 0,
            "fleet": result.scenario.label(),
            **(metadata or {}),
        },
    }
