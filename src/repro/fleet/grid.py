"""Declarative parameter grids for fleet-boot scenarios.

The two band0 mass-boot benchmarks define the axes this module makes
first-class: xenrt's ``TCTimeVMStarts`` times a herd of clones of one
gold image, and vm5k's ``VMBootTime`` sweeps boot policy
(``all_at_once`` vs ``one_then_others``) and image policy (``one`` vs
``one_per_vm``).  A :class:`FleetScenario` is one point in that space —
everything the engine needs to boot N instances reproducibly — and
:func:`expand_grid` turns an axis mapping into the deterministic list
of scenarios a sweep runs.

Axes:

* ``n`` — fleet size (instances booted);
* ``boot_policy`` — ``all_at_once`` (the whole herd boots against the
  initial store state) or ``one_then_others`` (rank 0 boots alone and
  publishes its translations before the rest of the herd starts);
* ``image_policy`` — ``one`` (every instance boots the same gold
  image, so translations are shared through the cache server) or
  ``one_per_vm`` (each instance's image is uniquely perturbed with
  unreachable padding, so fingerprints — and therefore cache entries —
  never collide);
* ``config`` — VM configuration (``soft``/``be``/``fe`` aliases or
  full Table 2 names);
* ``warm`` — whether the server's repository is pre-populated with the
  workload's translations before the herd boots;
* ``workload`` — a seed program name (:data:`repro.workloads.programs
  .PROGRAMS`);
* ``faults`` — an optional cocktail of registered fault-class names
  (``tools/chaos.py`` classes); faulted scenarios serialize the pool
  (``workers=1``) so injection stays seed-deterministic;
* ``seed`` — the scenario seed (image perturbation, fault injectors);
* ``shards`` / ``replicas`` — cluster topology: ``1x1`` (default)
  hosts the classic single cache server, anything larger hosts a
  sharded/replicated :class:`~repro.cluster.manager.LocalCluster` and
  boots every instance through the cluster-aware client (see
  ``docs/cluster.md``).  The axes only appear in the canonical
  scenario dict when a cluster is in play, so single-server reports
  are byte-identical to earlier releases.

Scenario expansion order is fixed by :data:`AXIS_ORDER`, never by dict
iteration order of the caller's mapping, so a sweep's report is
byte-stable across runs and hosts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Sequence, Tuple

BOOT_POLICIES = ("all_at_once", "one_then_others")
IMAGE_POLICIES = ("one", "one_per_vm")
POOLS = ("thread", "process")

#: Canonical axis expansion order (outermost first).  `expand_grid`
#: iterates the cartesian product in exactly this order regardless of
#: how the caller's mapping is ordered.
AXIS_ORDER = ("n", "boot_policy", "image_policy", "config", "warm",
              "workload", "faults", "seed", "shards", "replicas")


@dataclass(frozen=True)
class FleetScenario:
    """One point in the fleet-boot design space."""

    n: int = 8
    boot_policy: str = "all_at_once"
    image_policy: str = "one"
    config: str = "soft"
    warm: bool = False
    workload: str = "fibonacci"
    faults: Tuple[str, ...] = ()
    seed: int = 0
    shards: int = 1
    replicas: int = 1
    # execution knobs (not grid axes; excluded from the canonical dict)
    hot_threshold: int = 20
    max_instructions: int = 2_000_000
    workers: int = 8
    pool: str = "thread"
    timeout: float = 5.0
    retries: int = 3
    #: per-request deadline budget (seconds) each instance's client
    #: spends across attempts/retries/failovers (docs/overload.md)
    request_budget: float = 8.0
    #: server-side admission bound on concurrently dispatching store
    #: ops (None = unlimited); the overload gate undersizes this
    max_queue_depth: object = None
    #: attach a ClusterCollector to the hosted server(s): scrape
    #: telemetry, embed SLO verdicts, export the distributed trace
    #: lanes (``repro fleet --collect``; docs/observability.md)
    collect: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"fleet size must be >= 1, got {self.n}")
        if self.boot_policy not in BOOT_POLICIES:
            raise ValueError(
                f"unknown boot policy {self.boot_policy!r}; "
                f"choose from {BOOT_POLICIES}")
        if self.image_policy not in IMAGE_POLICIES:
            raise ValueError(
                f"unknown image policy {self.image_policy!r}; "
                f"choose from {IMAGE_POLICIES}")
        if self.pool not in POOLS:
            raise ValueError(f"unknown pool {self.pool!r}; "
                             f"choose from {POOLS}")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if self.shards < 1 or self.replicas < 1:
            raise ValueError(
                f"cluster topology must be >= 1x1, got "
                f"{self.shards}x{self.replicas}")

    @property
    def cluster(self) -> bool:
        """Whether this scenario hosts a sharded cluster (anything
        beyond the classic 1x1 single cache server)."""
        return self.shards > 1 or self.replicas > 1

    @property
    def effective_workers(self) -> int:
        """Pool width actually used: faulted scenarios serialize so the
        per-rank seeded injectors replay deterministically (the fault
        plane is process-global)."""
        if self.faults:
            return 1
        return max(1, min(self.workers, self.n))

    def label(self) -> str:
        parts = [f"n={self.n}", self.boot_policy, self.image_policy,
                 self.config, "warm" if self.warm else "cold",
                 self.workload, f"seed={self.seed}"]
        if self.faults:
            parts.append("faults=" + "+".join(self.faults))
        if self.cluster:
            parts.append(f"cluster={self.shards}x{self.replicas}")
        return " ".join(parts)

    def to_dict(self) -> Dict:
        """Canonical axis dict (what the fleet report embeds).  The
        cluster axes appear only for cluster scenarios, so 1x1 reports
        serialize byte-identically to pre-cluster releases."""
        doc = {
            "n": self.n,
            "boot_policy": self.boot_policy,
            "image_policy": self.image_policy,
            "config": self.config,
            "warm": self.warm,
            "workload": self.workload,
            "faults": list(self.faults),
            "seed": self.seed,
        }
        if self.cluster:
            doc["shards"] = self.shards
            doc["replicas"] = self.replicas
        return doc


_SCENARIO_FIELDS = {f.name for f in fields(FleetScenario)}


def expand_grid(axes: Mapping[str, Sequence],
                **fixed) -> List[FleetScenario]:
    """Cartesian product of ``axes`` in :data:`AXIS_ORDER`.

    ``axes`` maps axis names to value sequences; axes not given take
    the :class:`FleetScenario` default.  ``fixed`` keyword values apply
    to every scenario (execution knobs like ``workers`` or
    ``max_instructions``).  Unknown names raise so a typo'd sweep axis
    cannot silently collapse into a single default scenario.
    """
    for name in axes:
        if name not in AXIS_ORDER:
            raise ValueError(
                f"unknown grid axis {name!r}; axes are {AXIS_ORDER}")
    for name in fixed:
        if name not in _SCENARIO_FIELDS:
            raise ValueError(f"unknown scenario field {name!r}")
    ordered = [name for name in AXIS_ORDER if name in axes]
    value_lists = [list(axes[name]) for name in ordered]
    for name, values in zip(ordered, value_lists):
        if not values:
            raise ValueError(f"grid axis {name!r} has no values")
    scenarios = []
    for combo in itertools.product(*value_lists):
        params = dict(zip(ordered, combo))
        params.update(fixed)
        scenarios.append(FleetScenario(**params))
    return scenarios


#: The acceptance sweep: both boot policies x both image policies at
#: two herd sizes (``repro fleet sweep`` defaults; the
#: ``bench_fleet_boot`` benchmark runs the same grid).
DEFAULT_GRID: Dict[str, Sequence] = {
    "n": (8, 64),
    "boot_policy": BOOT_POLICIES,
    "image_policy": IMAGE_POLICIES,
}
