"""Mass-boot fleet harness — herds of VMs against one shared cache.

The paper's consolidation claim is about *many* co-designed VMs
starting at once; this package is the scenario harness that makes the
claim measurable.  See ``docs/fleet.md`` and the ``repro fleet``
CLI verbs.

* :mod:`repro.fleet.grid` — declarative scenarios + grid expansion;
* :mod:`repro.fleet.engine` — boots the herd through a worker pool
  against a self-hosted cache server, deterministically;
* :mod:`repro.fleet.report` — percentile distributions, amortization
  curves, server load, degradation sums;
* :mod:`repro.fleet.export` — the whole fleet as one Perfetto trace.
"""

from repro.fleet.engine import (
    FleetEngine,
    FleetResult,
    InstanceResult,
    perturb_source,
    run_sweep,
    steady_state_cycle,
)
from repro.fleet.export import export_fleet_trace
from repro.fleet.grid import (
    AXIS_ORDER,
    BOOT_POLICIES,
    DEFAULT_GRID,
    IMAGE_POLICIES,
    FleetScenario,
    expand_grid,
)
from repro.fleet.report import (
    SCHEMA,
    FleetReport,
    amortization_gain,
    build_report,
    fleet_entry,
    serialize_report,
    validate_report,
)

__all__ = [
    "AXIS_ORDER",
    "BOOT_POLICIES",
    "DEFAULT_GRID",
    "IMAGE_POLICIES",
    "SCHEMA",
    "FleetEngine",
    "FleetReport",
    "FleetResult",
    "FleetScenario",
    "InstanceResult",
    "amortization_gain",
    "build_report",
    "expand_grid",
    "export_fleet_trace",
    "fleet_entry",
    "perturb_source",
    "run_sweep",
    "serialize_report",
    "steady_state_cycle",
    "validate_report",
]
