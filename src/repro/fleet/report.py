"""Fleet reports — percentile distributions and amortization curves.

A report reduces one or more :class:`~repro.fleet.engine.FleetResult`
herds to the questions the paper's consolidation scenario asks:

* **How long until the herd is steady?**  Per-fleet
  time-to-steady-state distribution (p50/p95/p99 plus min/mean/max),
  estimated through the same power-of-two
  :class:`~repro.obs.metrics.Histogram` machinery every other
  distribution in this repo uses — coarse but deterministic and
  monotone in the quantile.
* **How does the shared cache amortize?**  A per-boot-rank curve of
  steady-state time, warm-start loads and push dedup: in the
  shared-image configuration later ranks pull what rank 0 translated,
  so their startup transient collapses and their pushes dedup to
  zero new objects.
* **What did the server pay?**  The hosted server's request counters
  (and, in non-canonical reports, its wall-clock per-op latency).
* **Did anything degrade?**  Client-side retry/fallback/breaker sums
  across the herd — all zero in a healthy fleet.

Reports are canonical by default: every value is a pure function of
the scenario (simulated cycles, record counts), so the same seed
serializes byte-identically across runs and hosts
(:func:`serialize_report` pins key order and separators exactly like
the benchmark and trace emitters).  :func:`validate_report` is the
schema-and-invariants gate ``tools/fleet_smoke.py`` and the tests run.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

log = logging.getLogger("repro.fleet")

SCHEMA = "repro.fleet/v1"

#: RemoteStats counters summed across the herd for the degradation
#: section (zero across the board in a healthy fleet).  The cluster
#: tier's ladder counters ride along; instances booted through a
#: single server simply report 0 for them (``dict.get`` below).
DEGRADATION_COUNTERS = ("retries", "timeouts", "conn_errors",
                        "protocol_errors", "lease_busy",
                        "server_errors", "breaker_opens",
                        "breaker_short_circuits", "fallbacks",
                        "failovers", "stale_replicas",
                        "group_degradations", "local_fallbacks",
                        "cold_degradations", "quorum_misses",
                        "push_group_failures")

_PERCENTILES = (50, 95, 99)


def distribution(values: List[float], name: str) -> Dict:
    """Percentile summary of ``values`` via one pow2 histogram."""
    histogram = MetricsRegistry().histogram(name)
    for value in values:
        histogram.observe(value)
    summary: Dict = {
        "count": histogram.count,
        "min": histogram.min if histogram.count else None,
        "mean": histogram.mean,
        "max": histogram.max if histogram.count else None,
    }
    for q in _PERCENTILES:
        summary[f"p{q}"] = histogram.percentile(q)
    return summary


def amortization_curve(instances: List[Dict]) -> List[Dict]:
    """Per-boot-rank cost curve (instances are canonical dicts)."""
    return [{
        "rank": instance["rank"],
        "tts_cycles": instance["tts_cycles"],
        "total_cycles": instance["total_cycles"],
        "records_loaded": instance["records_loaded"],
        "push_written": instance["push_written"],
        "push_deduped": instance["push_deduped"],
    } for instance in instances]


def degradation_summary(instances: List[Dict]) -> Dict:
    summary = {name: 0 for name in DEGRADATION_COUNTERS}
    for instance in instances:
        remote = instance.get("remote", {})
        for name in DEGRADATION_COUNTERS:
            summary[name] += remote.get(name, 0)
    return summary


def fleet_entry(result, canonical: bool = True) -> Dict:
    """One fleet's report section, from a FleetResult."""
    doc = result.to_dict(canonical=canonical)
    instances = doc["instances"]
    entry = {
        "scenario": doc["scenario"],
        "label": result.scenario.label(),
        "arch_ok": doc["arch_ok"],
        "tts": distribution([i["tts_cycles"] for i in instances],
                            "fleet_tts_cycles"),
        "total": distribution([i["total_cycles"] for i in instances],
                              "fleet_total_cycles"),
        "amortization": amortization_curve(instances),
        "degraded": degradation_summary(instances),
        "server": doc["server"],
        "instances": instances,
    }
    if "telemetry" in doc:
        entry["telemetry"] = doc["telemetry"]
    return entry


def build_report(results, canonical: bool = True) -> Dict:
    """The full report document for a list of FleetResults."""
    return {
        "schema": SCHEMA,
        "fleets": [fleet_entry(result, canonical=canonical)
                   for result in results],
    }


def amortization_gain(entry: Dict) -> Optional[float]:
    """Rank-0 steady-state cycles divided by the later ranks' mean —
    the headline "later boots are cheaper" number (> 1.0 means the
    shared cache amortized).  None for single-instance fleets."""
    curve = entry["amortization"]
    if len(curve) < 2:
        return None
    rank0 = curve[0]["tts_cycles"]
    later = [point["tts_cycles"] for point in curve[1:]]
    mean_later = sum(later) / len(later)
    if mean_later == 0:
        return float("inf") if rank0 > 0 else 1.0
    return rank0 / mean_later


class FleetReport:
    """Thin wrapper: build from results or rehydrate from a dict."""

    def __init__(self, doc: Dict) -> None:
        self.doc = doc

    @classmethod
    def from_results(cls, results,
                     canonical: bool = True) -> "FleetReport":
        return cls(build_report(results, canonical=canonical))

    def to_dict(self) -> Dict:
        return self.doc

    def write(self, path) -> None:
        Path(path).write_text(serialize_report(self.doc))
        log.info("fleet report written to %s", path)

    def format(self) -> str:
        lines = []
        for entry in self.doc.get("fleets", []):
            tts = entry["tts"]
            lines.append(entry.get("label") or
                         json.dumps(entry["scenario"], sort_keys=True))
            lines.append(
                f"  steady-state cycles: p50={tts['p50']} "
                f"p95={tts['p95']} p99={tts['p99']} "
                f"(mean {tts['mean']:.1f}, n={tts['count']})")
            gain = amortization_gain(entry)
            if gain is not None:
                lines.append(f"  amortization gain vs rank 0: "
                             f"{'inf' if gain == float('inf') else f'{gain:.2f}'}x")
            degraded = {name: count for name, count
                        in entry["degraded"].items() if count}
            lines.append(f"  degradations: {degraded or 'none'}")
            server = entry["server"]
            lines.append(
                f"  server: requests={server.get('requests', {})} "
                f"served={server.get('records_served', 0)} "
                f"deduped={server.get('objects_deduped', 0)} "
                f"lease_busy={server.get('lease_busy', 0)}")
            lines.append(f"  arch_ok: {entry['arch_ok']}")
        return "\n".join(lines)


def serialize_report(doc: Dict) -> str:
    """Deterministic serialization (same contract as the benchmark
    and trace emitters: sorted keys, fixed separators, one trailing
    newline)."""
    return json.dumps(doc, sort_keys=True, indent=1,
                      separators=(",", ": ")) + "\n"


def validate_report(doc: Dict) -> List[str]:
    """Schema + invariant check; returns problems (empty = valid)."""
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema: {doc.get('schema')!r} != {SCHEMA!r}")
    fleets = doc.get("fleets")
    if not isinstance(fleets, list):
        return problems + ["fleets: missing or not a list"]
    for index, entry in enumerate(fleets):
        where = f"fleets/{index}"
        scenario = entry.get("scenario")
        if not isinstance(scenario, dict) or "n" not in scenario:
            problems.append(f"{where}/scenario: malformed")
            continue
        for section in ("tts", "total", "amortization", "degraded",
                        "server", "instances"):
            if section not in entry:
                problems.append(f"{where}: missing {section!r}")
        tts = entry.get("tts", {})
        quantiles = [tts.get(f"p{q}") for q in _PERCENTILES]
        if all(isinstance(v, (int, float)) for v in quantiles):
            if not (quantiles[0] <= quantiles[1] <= quantiles[2]):
                problems.append(
                    f"{where}/tts: percentiles not monotone {quantiles}")
        elif tts.get("count"):
            problems.append(f"{where}/tts: missing percentiles")
        curve = entry.get("amortization", [])
        if len(curve) != scenario["n"]:
            problems.append(
                f"{where}/amortization: {len(curve)} point(s) for "
                f"n={scenario['n']}")
        if [point.get("rank") for point in curve] != \
                list(range(len(curve))):
            problems.append(f"{where}/amortization: ranks not 0..n-1")
        if entry.get("arch_ok") is not True:
            problems.append(
                f"{where}: architected divergence across the fleet")
    return problems
