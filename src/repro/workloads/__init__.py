"""Workload models and programs.

* :mod:`~repro.workloads.winstone` — synthetic statistical models of the
  ten Winstone2004 Business applications (the paper's benchmark suite is
  proprietary; DESIGN.md §2 documents the substitution).
* :mod:`~repro.workloads.trace` — block-level episode traces realized
  from an application model, consumed by the startup simulator.
* :mod:`~repro.workloads.programs` — real, runnable x86lite programs for
  the functional VM (examples and differential tests).
* :mod:`~repro.workloads.spec` — a SPECint-like model used for the
  steady-state fusion-rate contrast (Section 2 of the paper).
"""

from repro.workloads.winstone import (
    AppProfile,
    WINSTONE_APPS,
    winstone_app,
    winstone_suite,
)
from repro.workloads.trace import Block, Episode, Region, Workload, \
    generate_workload
from repro.workloads.spec import spec_like_profile
from repro.workloads.programs import EXPECTED_OUTPUT, PROGRAMS

__all__ = [
    "AppProfile", "Block", "EXPECTED_OUTPUT", "Episode", "PROGRAMS",
    "Region", "WINSTONE_APPS", "Workload", "generate_workload",
    "spec_like_profile", "winstone_app", "winstone_suite",
]
