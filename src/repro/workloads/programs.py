"""Real, runnable x86lite programs.

These exercise the functional VM end to end (assembler → staged
translation → native micro-op execution) in examples and tests.  Each
entry is assembly source; assemble with
:func:`repro.isa.x86lite.assemble`.
"""

from __future__ import annotations

from typing import Dict

#: Iterative Fibonacci; prints fib(n) for n = 40.
FIBONACCI = """
start:
    mov eax, 0
    mov ebx, 1
    mov ecx, 40
fib_loop:
    mov edx, eax
    add edx, ebx
    mov eax, ebx
    mov ebx, edx
    dec ecx
    jnz fib_loop
    mov ebx, eax
    mov eax, 1
    int 0x80            ; print fib(40)
    mov eax, 0
    mov ebx, 0
    int 0x80            ; exit(0)
"""

#: Bubble sort over a 24-element array; prints the min and max.
BUBBLE_SORT = """
start:
    mov esi, data
    mov edi, 24         ; element count
outer:
    mov ecx, edi
    dec ecx
    jz done_sort
    mov esi, data
    mov edx, 0          ; swapped flag
pass:
    mov eax, [esi]
    mov ebx, [esi+4]
    cmp eax, ebx
    jle no_swap
    mov [esi], ebx
    mov [esi+4], eax
    mov edx, 1
no_swap:
    add esi, 4
    dec ecx
    jnz pass
    test edx, edx
    jnz outer
done_sort:
    mov eax, 1
    mov ebx, [data]
    int 0x80            ; print min
    mov eax, 1
    mov ebx, [data+92]
    int 0x80            ; print max
    mov eax, 0
    mov ebx, 0
    int 0x80
data:
    .dd 170, 45, 75, 90, 802, 24, 2, 66, 15, 1000, 3, 999
    .dd 501, 42, 7, 320, 111, 89, 640, 256, 12, 77, 8, 450
"""

#: Sieve of Eratosthenes up to 200; prints the prime count.
SIEVE = """
start:
    mov edi, 0x600000   ; flags array (byte per candidate)
    mov ecx, 200
    mov eax, 0
clear:
    mov [edi], eax      ; clear 4 flags at a time (slots are dwords)
    add edi, 4
    dec ecx
    jnz clear
    mov esi, 2          ; candidate
    mov edi, 0          ; prime count
sieve_loop:
    cmp esi, 200
    jge report
    mov eax, esi
    shl eax, 2
    mov ebx, [0x600000+eax]     ; composite flag (dword slots)
    test ebx, ebx
    jnz next_candidate
    inc edi                      ; found a prime
    mov edx, esi
mark:
    add edx, esi
    cmp edx, 200
    jge next_candidate
    mov eax, edx
    shl eax, 2
    mov dword [0x600000+eax], 1
    jmp mark
next_candidate:
    inc esi
    jmp sieve_loop
report:
    mov eax, 1
    mov ebx, edi
    int 0x80            ; print prime count (46)
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

#: 8x8 integer matrix multiply; prints the trace of the product.
MATMUL = """
start:
    ; A at 0x600000, B at 0x601000, C at 0x602000; A[i][j] = i+j,
    ; B[i][j] = i*j (built on the fly)
    mov esi, 0          ; i
build_i:
    mov edi, 0          ; j
build_j:
    mov eax, esi
    shl eax, 5          ; i*32 (8 cols * 4 bytes)
    mov ebx, edi
    shl ebx, 2
    add eax, ebx        ; offset
    mov ecx, esi
    add ecx, edi
    mov [0x600000+eax], ecx      ; A[i][j] = i+j
    mov ecx, esi
    imul ecx, edi
    mov [0x601000+eax], ecx      ; B[i][j] = i*j
    inc edi
    cmp edi, 8
    jl build_j
    inc esi
    cmp esi, 8
    jl build_i

    mov esi, 0          ; i
mul_i:
    mov edi, 0          ; j
mul_j:
    mov ecx, 0          ; k
    mov edx, 0          ; acc
mul_k:
    mov eax, esi
    shl eax, 5
    mov ebx, ecx
    shl ebx, 2
    add eax, ebx
    mov eax, [0x600000+eax]      ; A[i][k]
    mov ebx, ecx
    shl ebx, 5
    push ecx
    mov ecx, edi
    shl ecx, 2
    add ebx, ecx
    pop ecx
    mov ebx, [0x601000+ebx]      ; B[k][j]
    imul eax, ebx
    add edx, eax
    inc ecx
    cmp ecx, 8
    jl mul_k
    mov eax, esi
    shl eax, 5
    mov ebx, edi
    shl ebx, 2
    add eax, ebx
    mov [0x602000+eax], edx      ; C[i][j]
    inc edi
    cmp edi, 8
    jl mul_j
    inc esi
    cmp esi, 8
    jl mul_i

    ; trace of C
    mov esi, 0
    mov edi, 0
trace_loop:
    mov eax, esi
    shl eax, 5
    mov ebx, esi
    shl ebx, 2
    add eax, ebx
    add edi, [0x602000+eax]
    inc esi
    cmp esi, 8
    jl trace_loop
    mov eax, 1
    mov ebx, edi
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

#: Checksum over a copied buffer, exercising REP string instructions.
CHECKSUM = """
start:
    mov edi, 0x600000
    mov eax, 0x1234
    mov ecx, 64
    rep stosd           ; fill source buffer
    mov esi, 0x600000
    mov edi, 0x601000
    mov ecx, 64
    rep movsd           ; copy
    mov esi, 0x601000
    mov ecx, 64
    mov ebx, 0
sum:
    lodsd
    add ebx, eax
    rol_skip:
    dec ecx
    jnz sum
    mov eax, 1
    int 0x80            ; print 64 * 0x1234
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

#: Recursive Fibonacci (exponential), a call-heavy workload.
FIB_RECURSIVE = """
start:
    push 14
    call fib
    mov ebx, eax
    mov eax, 1
    int 0x80            ; print fib(14) = 377
    mov eax, 0
    mov ebx, 0
    int 0x80
fib:
    mov eax, [esp+4]
    cmp eax, 2
    jge recurse
    ret 4
recurse:
    dec eax
    push eax
    push eax
    call fib
    pop ebx             ; n-1
    dec ebx
    push eax            ; save fib(n-1)
    push ebx
    call fib
    pop ebx             ; fib(n-1)
    add eax, ebx
    ret 4
"""

#: Quicksort over 16 elements (recursive, Hoare-ish partition); prints
#: the median pair sum as a checksum of correct ordering.
QUICKSORT = """
start:
    push 60             ; high offset (15 * 4)
    push 0              ; low offset
    call qsort
    mov eax, 1
    mov ebx, [data+28]  ; element 7 after sorting
    int 0x80
    mov eax, 1
    mov ebx, [data+32]  ; element 8
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80

qsort:                  ; qsort(low at [esp+4], high at [esp+8])
    mov esi, [esp+4]    ; low
    mov edi, [esp+8]    ; high
    cmp esi, edi
    jge qdone
    ; partition around the pivot at [data+high]
    mov edx, [data+edi] ; pivot value
    mov ecx, esi        ; i = low
    mov ebx, esi        ; j = low
part:
    cmp ebx, edi
    jge swap_pivot
    mov eax, [data+ebx]
    cmp eax, edx
    jge next_j
    push eax            ; swap data[i] <-> data[j]
    mov eax, [data+ecx]
    push eax
    mov eax, [data+ebx]
    mov [data+ecx], eax
    pop eax
    mov [data+ebx], eax
    pop eax
    add ecx, 4          ; i++
next_j:
    add ebx, 4
    jmp part
swap_pivot:
    mov eax, [data+ecx]
    mov ebx, [data+edi]
    mov [data+ecx], ebx
    mov [data+edi], eax
    ; recurse left: qsort(low, i-4); callees clobber esi/edi/ecx
    push edi            ; save high
    push ecx            ; save pivot index
    mov eax, ecx
    sub eax, 4
    push eax
    push esi
    call qsort_shim
    pop ecx             ; pivot index back
    pop edi             ; high back
    ; recurse right: qsort(i+4, high)
    push edi
    mov eax, ecx
    add eax, 4
    push eax
    call qsort_shim2
qdone:
    ret 8

qsort_shim:             ; args already pushed as (high, low) -> reorder
    mov eax, [esp+4]    ; low
    mov ebx, [esp+8]    ; high
    push ebx
    push eax
    call qsort
    ret 8
qsort_shim2:
    mov eax, [esp+4]    ; low
    mov ebx, [esp+8]    ; high
    push ebx
    push eax
    call qsort
    ret 8

data:
    .dd 830, 12, 407, 99, 650, 3, 512, 78
    .dd 231, 945, 66, 309, 150, 721, 48, 888
"""

#: Byte-wise checksum in the style of CRC (shift/xor mixing) over a
#: generated buffer, exercising MOVZX, shifts and byte loads.
MIXHASH = """
start:
    mov edi, 0x600000
    mov ecx, 64
    mov eax, 7
fill:
    imul eax, eax, 13
    add eax, 11
    mov [edi], eax
    add edi, 4
    dec ecx
    jnz fill
    mov esi, 0x600000
    mov ecx, 256        ; bytes
    mov ebx, 0
hash:
    movzx eax, byte [esi]
    xor ebx, eax
    mov edx, ebx
    shl ebx, 5
    shr edx, 27
    or ebx, edx         ; rotate left 5
    inc esi
    dec ecx
    jnz hash
    mov eax, 1
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

PROGRAMS: Dict[str, str] = {
    "fibonacci": FIBONACCI,
    "bubble_sort": BUBBLE_SORT,
    "sieve": SIEVE,
    "matmul": MATMUL,
    "checksum": CHECKSUM,
    "fib_recursive": FIB_RECURSIVE,
    "quicksort": QUICKSORT,
    "mixhash": MIXHASH,
}

#: Expected program outputs (for tests and examples).
EXPECTED_OUTPUT: Dict[str, list] = {
    "fibonacci": [102334155],
    "bubble_sort": [2, 1000],
    "sieve": [46],
    "fib_recursive": [377],
    "checksum": [64 * 0x1234],
    "quicksort": [231, 309],   # median pair of the sorted array
}
