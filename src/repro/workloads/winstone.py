"""Synthetic models of the Winstone2004 Business applications.

The paper evaluates on full-system traces of ten Windows applications,
which are proprietary.  Each :class:`AppProfile` below is a statistical
stand-in calibrated to everything the paper reports about the suite:

* static working sets around M_BBT ≈ 150K instructions on 100M-instruction
  traces, with roughly 3K instructions (M_SBT) above the 8000-execution
  hot threshold (Section 3.2);
* the execution-frequency mixture of Fig. 3 — most static code executes
  tens of times, while a warm tail carries the dynamic weight, peaking in
  the 10K–100K bucket;
* hotspot coverage ≈ 63% of dynamic instructions at 100M, rising past 75%
  at 500M (Section 5.3);
* reference-superscalar aggregate IPCs spanning the paper's reported
  simulation lengths (333M–923M cycles for 500M instructions);
* per-application steady-state VM speedups averaging +8%, with *Project*
  at +3% (the paper singles it out as the app whose VM configurations
  cannot break even within 500M instructions).

The execution-frequency model is a two-component lognormal mixture over
*regions* (loops): a ``cold`` component holding most static code and a
``warm`` component carrying the dynamic weight.  Component parameters are
quoted at the 100M-instruction reference length and scale linearly with
trace length, which reproduces the paper's observation that longer runs
shift Fig. 3's dynamic curve rightward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class AppProfile:
    """Statistical model of one benchmark application."""

    name: str
    #: static x86 instructions touched on the reference (100M) trace
    static_instrs: int
    #: mean basic-block size in architected instructions
    avg_block_size: float = 5.5
    #: average encoded bytes per architected instruction
    bytes_per_instr: float = 3.7
    #: average micro-op bytes emitted per architected instruction
    uop_bytes_per_instr: float = 4.8
    #: reference superscalar aggregate IPC (steady state)
    ipc_ref: float = 1.0
    #: steady-state VM speedup over the reference (Section 2: avg +8%)
    vm_speedup: float = 1.08
    #: BBT-code IPC relative to SBT code (Section 5.3: 82-85%), on the
    #: compute (non-stall) portion of execution
    bbt_relative_ipc: float = 0.84
    #: fraction of steady-state cycles that are memory stalls; stalls are
    #: independent of translation quality, so they dilute the BBT-code
    #: penalty during the transient (Section 5.3: "for program startup
    #: transient, cache misses dilute CPU IPC performance")
    stall_fraction: float = 0.35
    #: dynamic fraction of micro-ops fused in hotspot code (Section 2)
    fused_fraction: float = 0.49
    # frequency mixture (region execution counts @ 100M instructions)
    cold_fraction: float = 0.85
    cold_median: float = 30.0
    cold_sigma: float = 1.5
    warm_median: float = 210.0
    warm_sigma: float = 2.6
    #: data-side cold misses per instruction during first-touch execution
    data_cold_misses_per_instr: float = 0.03
    #: code-discovery shape: region first-use positions are
    #: Beta(discovery_alpha, discovery_beta) — small alpha front-loads
    #: discovery (lots of once-run startup code), large beta thins the
    #: late tail
    discovery_alpha: float = 0.35
    discovery_beta: float = 2.5
    #: how strongly hot regions start earlier than cold ones (0..1);
    #: real applications enter their dominant loops early
    hot_early_pull: float = 0.5

    @property
    def ipc_vm_steady(self) -> float:
        return self.ipc_ref * self.vm_speedup

    @property
    def x86_bytes(self) -> int:
        """Approximate text footprint of the working set."""
        return int(self.static_instrs * self.bytes_per_instr)


#: The ten Winstone2004 Business applications (Fig. 9's x-axis), with
#: per-app parameters spread to produce the suite-level aggregates above.
#: Working-set sizes and IPCs are our modeling choices (the paper reports
#: only suite-level numbers plus Project's +3% speedup).
WINSTONE_APPS: List[AppProfile] = [
    AppProfile("Access", static_instrs=175_000, ipc_ref=0.85,
               vm_speedup=1.09, warm_median=200.0),
    AppProfile("Excel", static_instrs=205_000, ipc_ref=1.15,
               vm_speedup=1.07, warm_median=170.0, cold_median=35.0,
               discovery_alpha=0.45),
    AppProfile("FrontPage", static_instrs=130_000, ipc_ref=0.95,
               vm_speedup=1.10, warm_median=220.0),
    AppProfile("IE", static_instrs=120_000, ipc_ref=1.05,
               vm_speedup=1.08, warm_median=240.0),
    AppProfile("Norton", static_instrs=250_000, ipc_ref=1.45,
               vm_speedup=1.06, warm_median=150.0, cold_median=40.0,
               discovery_alpha=0.5, hot_early_pull=0.3),
    AppProfile("Outlook", static_instrs=185_000, ipc_ref=0.80,
               vm_speedup=1.09, warm_median=190.0),
    AppProfile("PowerPoint", static_instrs=160_000, ipc_ref=1.00,
               vm_speedup=1.08, warm_median=210.0, hot_early_pull=0.35),
    AppProfile("Project", static_instrs=150_000, ipc_ref=0.70,
               vm_speedup=1.03, warm_median=215.0),
    AppProfile("Winzip", static_instrs=90_000, ipc_ref=1.35,
               vm_speedup=1.12, warm_median=360.0, cold_fraction=0.80,
               hot_early_pull=0.7),
    AppProfile("Word", static_instrs=140_000, ipc_ref=0.90,
               vm_speedup=1.08, warm_median=205.0),
]

_BY_NAME: Dict[str, AppProfile] = {app.name: app for app in WINSTONE_APPS}


def winstone_app(name: str) -> AppProfile:
    """Look up one application model by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown Winstone app {name!r}; have "
                       f"{sorted(_BY_NAME)}") from None


def winstone_suite() -> List[AppProfile]:
    """All ten application models, in Fig. 9 order."""
    return list(WINSTONE_APPS)


def suite_average_static_instrs() -> float:
    return sum(app.static_instrs for app in WINSTONE_APPS) / \
        len(WINSTONE_APPS)
