"""Block-level episode traces realized from an application model.

A *workload* is the dynamic execution of an application expressed at
basic-block granularity:

* static structure — regions (loops) of a few basic blocks each, laid out
  in a synthetic address space;
* dynamics — a time-ordered list of *episodes*; each episode executes one
  region for some number of iterations (every block in the region runs
  once per iteration).

Episodes capture the two properties the startup study depends on:
**discovery** (a region's first episode position determines when its code
is first touched, and hence when the VM must translate it) and
**recurrence** (later episodes accumulate execution counts toward the hot
threshold).  Region first-use positions are front-loaded with a long tail
(Beta(0.5, 2)), matching the code-discovery behaviour that makes early VM
time translation-bound (the paper's "one fourth of the instructions at
one million cycles" observation).

Everything is generated from a seeded NumPy generator, so workloads are
exactly reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.workloads.winstone import AppProfile

#: Synthetic text base for workload block addresses.
TEXT_BASE = 0x0040_0000


@dataclass
class Block:
    """One static basic block."""

    addr: int
    size: int          # architected instructions
    nbytes: int        # encoded architected bytes


@dataclass
class Region:
    """A loop-like group of blocks that execute together."""

    index: int
    blocks: List[Block]
    total_iterations: int

    @property
    def instr_count(self) -> int:
        return sum(block.size for block in self.blocks)

    @property
    def byte_count(self) -> int:
        return sum(block.nbytes for block in self.blocks)

    @property
    def addr(self) -> int:
        return self.blocks[0].addr


@dataclass(frozen=True)
class Episode:
    """One burst of executions of a region."""

    position: float      # ordering key in [0, 1]
    region_index: int
    iterations: int


@dataclass
class Workload:
    """A complete generated workload."""

    app: AppProfile
    dyn_instrs: int
    seed: int
    regions: List[Region] = field(default_factory=list)
    episodes: List[Episode] = field(default_factory=list)

    @property
    def static_instrs(self) -> int:
        return sum(region.instr_count for region in self.regions)

    @property
    def total_dynamic_instrs(self) -> int:
        return sum(region.instr_count * region.total_iterations
                   for region in self.regions)

    def region_execution_counts(self) -> np.ndarray:
        return np.array([region.total_iterations
                         for region in self.regions])


#: Reference dynamic length the frequency mixture is calibrated at.
REFERENCE_DYN_INSTRS = 100_000_000


def generate_workload(app: AppProfile, dyn_instrs: int = 100_000_000,
                      seed: int = 0,
                      mean_blocks_per_region: float = 6.0) -> Workload:
    """Generate a deterministic workload for ``app``.

    ``dyn_instrs`` is hit exactly (iteration counts are rescaled after
    sampling, preserving the mixture's shape).
    """
    # zlib.crc32 is stable across processes (unlike hash(), which is
    # salted); workload generation must be exactly reproducible
    rng = np.random.default_rng(
        (seed * 1_000_003 + zlib.crc32(app.name.encode())) & 0xFFFFFFFF)
    workload = Workload(app=app, dyn_instrs=dyn_instrs, seed=seed)

    n_blocks = max(int(app.static_instrs / app.avg_block_size), 4)
    n_regions = max(int(n_blocks / mean_blocks_per_region), 2)

    # --- static structure ---------------------------------------------------
    blocks_per_region = rng.integers(2, 11, size=n_regions)
    addr = TEXT_BASE
    for region_index in range(n_regions):
        blocks = []
        for _ in range(int(blocks_per_region[region_index])):
            size = int(np.clip(rng.geometric(1.0 / app.avg_block_size),
                               1, 20))
            nbytes = max(int(round(size * app.bytes_per_instr)), size)
            blocks.append(Block(addr=addr, size=size, nbytes=nbytes))
            addr += nbytes
        addr += int(rng.integers(0, 32))  # layout gap between regions
        workload.regions.append(Region(index=region_index, blocks=blocks,
                                       total_iterations=0))

    # --- execution-frequency mixture --------------------------------------------
    is_cold = rng.random(n_regions) < app.cold_fraction
    counts = np.where(
        is_cold,
        rng.lognormal(np.log(app.cold_median), app.cold_sigma, n_regions),
        rng.lognormal(np.log(app.warm_median), app.warm_sigma, n_regions))
    counts *= dyn_instrs / REFERENCE_DYN_INSTRS

    instrs_per_region = np.array([region.instr_count
                                  for region in workload.regions])
    raw_total = float(np.dot(counts, instrs_per_region))
    counts *= dyn_instrs / raw_total
    counts = np.maximum(counts.round().astype(np.int64), 1)
    for region, total in zip(workload.regions, counts):
        region.total_iterations = int(total)

    # --- episode schedule ------------------------------------------------------
    # Discovery is front-loaded with a long tail (Beta(0.5, 2)); once a
    # region is discovered, its activity is *bursty* — concentrated in a
    # program phase — so hot loops accumulate their execution counts
    # quickly after first touch (this burstiness is what lets hardware-
    # assisted VMs break even within tens of millions of cycles).
    start_fracs = rng.beta(app.discovery_alpha, app.discovery_beta,
                           size=n_regions)
    if app.hot_early_pull > 0:
        # dominant loops tend to start early: pull hot regions' first
        # use toward the beginning in proportion to their (log) heat
        log_counts = np.log(counts.astype(float) + 1.0)
        pull = log_counts / max(float(log_counts.max()), 1.0)
        start_fracs = start_fracs * (1.0 - app.hot_early_pull * pull)
    episodes: List[Episode] = []
    for region, start in zip(workload.regions, start_fracs):
        total = region.total_iterations
        n_episodes = int(np.clip(np.log2(total + 1), 1, 12))
        # First touch is a short warm-up (discovery); the bulk burst
        # follows within the region's phase, then smaller echoes.  This
        # makes the first million cycles discovery-bound (the paper's
        # "one fourth of the instructions" point) while still letting
        # hot loops cross the threshold within a few million cycles.
        warmup = min(16, total)
        if total > warmup:
            bursts = max(n_episodes - 1, 1)
            weights = 2.0 ** -np.arange(bursts)
            sizes = np.maximum((weights / weights.sum()
                                * (total - warmup)).astype(np.int64), 1)
            sizes = np.concatenate(([warmup], sizes))
            deficit = int(sizes.sum()) - total
            index = len(sizes) - 1
            while deficit > 0 and index > 0:   # trim echo bursts first
                take = min(int(sizes[index]), deficit)
                sizes[index] -= take
                deficit -= take
                index -= 1
            if deficit < 0:
                sizes[1] += -deficit           # grow the bulk burst
            sizes = sizes[sizes > 0]
        else:
            sizes = np.array([total])
        phase_width = float(rng.uniform(0.02, 0.25)) * (1.0 - start)
        offsets = (np.arange(len(sizes)) / max(len(sizes) - 1, 1)) ** 0.7
        positions = start + phase_width * (0.25 + 0.75 * offsets)
        positions[0] = start
        for position, iterations in zip(positions, sizes):
            if iterations > 0:
                episodes.append(Episode(position=float(position),
                                        region_index=region.index,
                                        iterations=int(iterations)))
    episodes.sort(key=lambda episode: episode.position)
    workload.episodes = episodes
    return workload
