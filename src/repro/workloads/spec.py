"""A SPECint-like application model for steady-state contrast.

Section 2 of the paper contrasts the Winstone suite (+8% steady-state
IPC, 49% of dynamic micro-ops fused, larger working sets) with SPEC2000
integer (+18%, 57% fused, small stable working sets).  This profile
captures those properties so the steady-state bench can reproduce the
contrast.
"""

from __future__ import annotations

from repro.workloads.winstone import AppProfile


def spec_like_profile(name: str = "SPECint-like") -> AppProfile:
    """An application model with SPEC2000-integer-like characteristics."""
    return AppProfile(
        name=name,
        static_instrs=40_000,          # small, stable working set
        avg_block_size=6.0,
        ipc_ref=1.10,
        vm_speedup=1.18,               # +18% (Section 2)
        bbt_relative_ipc=0.84,
        fused_fraction=0.57,           # 57% of micro-ops fused
        cold_fraction=0.60,            # most code is reused heavily
        cold_median=200.0,
        warm_median=20_000.0,          # tight hot loops
        warm_sigma=1.6,
    )
