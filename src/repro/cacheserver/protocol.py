"""Wire protocol for the translation-cache server.

One message is one *frame*::

    MAGIC(4 = b"RTC1") | length u32 BE | crc32 u32 BE | payload bytes

The payload is a JSON object (UTF-8).  The CRC covers the payload, so a
torn or bit-flipped frame is detected before JSON parsing ever sees it;
the length field is bounded so a corrupt header cannot make a peer
allocate gigabytes.  Frames are symmetric — requests and responses use
the same envelope.

Requests are ``{"op": <name>, ...}``; responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": <category>,
"detail": <text>}``.  Error categories are machine-matchable (the
client's retry policy keys on them): ``lease-busy``, ``busy`` and
``overloaded`` are retryable, ``bad-request`` / ``internal`` /
``deadline-exceeded`` are not.  An ``overloaded`` response may carry a
``retry_after`` field — seconds the shedding server asks the client to
wait before retrying (docs/overload.md); clients honor it
deterministically.

Operations (see ``docs/cache_server.md`` for the full matrix):

* ``ping`` — liveness probe; echoes the server's repository root.
* ``health`` — structured liveness: shard id, role, object count,
  writer-lease state and drain status.  Smoke tools and the cluster
  client's health view key on this instead of ad-hoc pings.
* ``pull`` — fetch the records for one (config, image) fingerprint
  pair, plus the manifest entry count so the client can report
  missing objects exactly like a local load.
* ``push`` — upload records; the server saves them under its writer
  lease and reports how many objects were newly written vs deduped
  against content-addressed objects other workloads already stored.
  An optional ``"merge": true`` flag unions the pushed keys with the
  manifest's existing entries (sorted, so concurrent writers converge
  on one entry list) instead of replacing the manifest wholesale —
  the cluster tier's replication and anti-entropy push this way.
* ``manifest`` — entry count only (cheap existence probe); with
  ``"keys": true`` the full sorted entry list rides along (the
  anti-entropy repair pass diffs replicas on it).
* ``stats`` — repository stats plus the server's request counters.
* ``telemetry`` — the observability scrape (``docs/observability.md``):
  the server's full metrics-registry snapshot (counters, gauges and
  pow2 latency histograms, exactly re-mergeable downstream) plus its
  bounded buffer of trace spans opened under propagated ``trace_ctx``
  frames.  Versioned (``"v"``); unknown versions get ``bad-request``.

Any request may carry a ``"trace_ctx"`` field — a
:class:`repro.obs.telemetry.TraceContext` wire dict.  The server opens
a child span under it for the duration of the handler; malformed or
unknown-version contexts are ignored (the request still runs).

Any request may also carry a ``"deadline_ms"`` field — the whole
milliseconds of request budget the client has left
(:class:`repro.persist.deadline.Deadline`).  It is *relative*, so no
cross-host clock comparison is involved.  A server receiving
``deadline_ms <= 0``, or estimating (from its own latency histograms)
that serving would outlive the budget, answers ``deadline-exceeded``
instead of doing dead work; malformed values are ignored.

This module is socket-free on purpose: everything here is pure
bytes <-> dict, so the client, the server and the tests share one
codec and the fault plane can corrupt payloads in a type-safe way.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, Tuple

MAGIC = b"RTC1"
_HEADER = struct.Struct("!4sII")
HEADER_SIZE = _HEADER.size

#: Hard bound on one frame's payload.  A full manifest of records for a
#: seed workload is ~100 KB; 64 MiB leaves room for real programs while
#: keeping a corrupt length field from looking like an allocation bomb.
MAX_PAYLOAD = 64 * 1024 * 1024

#: Error categories a server may return; the client retries only these.
#: ``lease-busy`` is writer-lease contention; ``busy`` is the
#: connection-admission guard (``--max-conns`` backpressure or a
#: draining server); ``overloaded`` is load shedding (queue-depth /
#: service-time admission control, docs/overload.md) — all three clear
#: on their own, so backing off and retrying is correct where any
#: other error is final.  ``bad-request`` means the *request* is
#: defective and ``deadline-exceeded`` means its budget is already
#: spent — retrying either only amplifies load.
RETRYABLE_ERRORS = frozenset({"lease-busy", "busy", "overloaded"})

#: Categories that indict the request, not the server: fail fast, do
#: not penalize the endpoint's circuit breaker, keep the connection.
CLIENT_FAULT_ERRORS = frozenset({"bad-request", "deadline-exceeded"})


class ProtocolError(Exception):
    """A frame failed structural validation (magic/length/CRC/JSON)."""


def encode_frame(message: Dict) -> bytes:
    """dict -> one framed message (header + JSON payload)."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode()
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame bound")
    return _HEADER.pack(MAGIC, len(payload),
                        zlib.crc32(payload)) + payload


def decode_header(header: bytes) -> Tuple[int, int]:
    """Validated (length, crc) from one raw header."""
    if len(header) != HEADER_SIZE:
        raise ProtocolError(f"short header ({len(header)} bytes)")
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame length {length} exceeds bound")
    return length, crc


def decode_payload(payload: bytes, crc: int) -> Dict:
    """Validated payload bytes -> message dict."""
    if zlib.crc32(payload) != crc:
        raise ProtocolError("payload checksum mismatch")
    try:
        message = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"payload is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError("message is not an object")
    return message


def decode_frame(frame: bytes) -> Dict:
    """One complete in-memory frame -> message dict (tests/tools)."""
    length, crc = decode_header(frame[:HEADER_SIZE])
    payload = frame[HEADER_SIZE:]
    if len(payload) != length:
        raise ProtocolError(
            f"payload length {len(payload)} != header {length}")
    return decode_payload(payload, crc)


# -- socket helpers ----------------------------------------------------------

def recv_exactly(sock, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on a mid-frame EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock, message: Dict) -> None:
    sock.sendall(encode_frame(message))


def recv_message(sock) -> Dict:
    length, crc = decode_header(recv_exactly(sock, HEADER_SIZE))
    return decode_payload(recv_exactly(sock, length), crc)


# -- response envelopes ------------------------------------------------------

def ok(**fields) -> Dict:
    response = {"ok": True}
    response.update(fields)
    return response


def error(category: str, detail: str = "") -> Dict:
    return {"ok": False, "error": category, "detail": detail}
